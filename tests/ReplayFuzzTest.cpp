//===-- tests/ReplayFuzzTest.cpp - Randomized end-to-end consistency -------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Property: every log the runtime produces — under any thread schedule,
// any mix of synchronization primitives, and any sampler decisions — can
// be replayed to completion (no missing/duplicated timestamps), its
// sampled views are subsets of the full view, and the online detector
// agrees with the offline one. Exercised with randomized multi-threaded
// programs.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "detector/OnlineDetector.h"
#include "detector/ShardedDetector.h"
#include "support/SplitMix64.h"
#include "sync/MonitoredAllocator.h"
#include "sync/Primitives.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

/// Shared playground for the random programs. Only non-blocking
/// operations are used, so no random program can deadlock.
struct Playground {
  Mutex Locks[3];
  AtomicU64 Atomics[2];
  ManualResetEvent Flags[2];
  MonitoredAllocator Allocator;
  uint64_t Cells[16] = {};
};

/// One thread's random op sequence.
void randomThread(ThreadContext &TC, Playground &P, FunctionId F,
                  uint64_t Seed, unsigned Ops) {
  SplitMix64 Rng(Seed);
  int Held = -1;
  uint64_t Sink = 0;
  for (unsigned I = 0; I != Ops; ++I) {
    switch (Rng.nextBelow(8)) {
    case 0: // Memory write through the dispatch check.
    case 1:
      TC.run(F, [&](auto &T) {
        T.store(&P.Cells[Rng.nextBelow(16)], Rng.next(),
                static_cast<uint32_t>(I));
      });
      break;
    case 2: // Memory read.
      TC.run(F, [&](auto &T) {
        Sink ^= T.load(&P.Cells[Rng.nextBelow(16)],
                       static_cast<uint32_t>(I));
      });
      break;
    case 3: // Balanced lock/unlock.
      if (Held < 0) {
        Held = static_cast<int>(Rng.nextBelow(3));
        P.Locks[Held].lock(TC);
      } else {
        P.Locks[Held].unlock(TC);
        Held = -1;
      }
      break;
    case 4: // Atomics (the §4.2 critical-section path).
      Sink ^= P.Atomics[Rng.nextBelow(2)].fetchAdd(TC, 1);
      break;
    case 5: {
      uint64_t Expected = Sink & 3;
      P.Atomics[Rng.nextBelow(2)].compareExchange(TC, Expected, I);
      break;
    }
    case 6: // Event set (never wait: waits could deadlock).
      P.Flags[Rng.nextBelow(2)].set(TC);
      break;
    case 7: { // Allocation churn (§4.3 page events).
      size_t Bytes = 48 + Rng.nextBelow(100);
      void *Mem = P.Allocator.allocate(TC, Bytes);
      TC.run(F, [&](auto &T) {
        T.store(static_cast<uint8_t *>(Mem), uint8_t{1},
                static_cast<uint32_t>(I));
      });
      P.Allocator.deallocate(TC, Mem, Bytes);
      break;
    }
    }
  }
  if (Held >= 0)
    P.Locks[Held].unlock(TC);
  (void)Sink;
}

class ReplayFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayFuzzTest, RuntimeLogsAlwaysReplayConsistently) {
  SplitMix64 Rng(GetParam());
  MemorySink Sink(32);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Config.TimestampCounters = 32;
  Config.Seed = GetParam();
  Config.ThreadBufferRecords = 64; // Many small chunks.
  Runtime RT(Config, &Sink);
  RT.addStandardSamplers();
  FunctionId F = RT.registry().registerFunction("fuzz.op");

  Playground P;
  {
    ThreadContext Main(RT);
    const unsigned NumThreads = 2 + Rng.nextBelow(3);
    const unsigned Ops = 200 + Rng.nextBelow(400);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != NumThreads; ++I)
      Threads.push_back(std::make_unique<Thread>(
          RT, Main, [&, I](ThreadContext &TC) {
            randomThread(TC, P, F, GetParam() * 131 + I, Ops);
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }

  Trace T = Sink.takeTrace();
  RaceReport Full;
  ASSERT_TRUE(detectRaces(T, Full)) << "inconsistent log, seed "
                                    << GetParam();

  // Sampled views replay consistently and never add racy ADDRESSES.
  // (Witness pc pairs can differ: an event missing from the sampled view
  // cannot evict shadow entries, so the race may be reported against an
  // older access of the same variable — still a true race.)
  for (int Slot = 0; Slot != 7; ++Slot) {
    RaceReport Sampled;
    ReplayOptions Options;
    Options.SamplerSlot = Slot;
    ASSERT_TRUE(detectRaces(T, Sampled, Options));
    for (uint64_t Addr : Sampled.racyAddresses())
      EXPECT_TRUE(Full.racyAddresses().count(Addr))
          << "slot " << Slot << " fabricated a racy address";
  }

  // The online detector, fed the same chunks in arbitrary thread order,
  // agrees with the offline result.
  RaceReport Online;
  OnlineDetector D(32, Online);
  for (ThreadId Tid = T.PerThread.size(); Tid-- > 0;)
    D.writeChunk(Tid, T.PerThread[Tid].data(), T.PerThread[Tid].size());
  ASSERT_TRUE(D.finish());
  EXPECT_EQ(Online.keys(), Full.keys());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

/// Builds one seeded random trace: 2-4 threads forked from thread 0 (and
/// joined at the end), interleaved mutex lock/unlock, and memory reads and
/// writes over a small address pool. The LogBuilder draws timestamps in
/// call order, so the generation order IS the recorded interleaving and
/// every trace is replay-consistent by construction. No real threads run,
/// so this generator is sanitizer-safe.
Trace randomBuiltTrace(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  LogBuilder B(16);
  const unsigned NumThreads = 2 + static_cast<unsigned>(Rng.nextBelow(3));
  const unsigned Steps = 200 + static_cast<unsigned>(Rng.nextBelow(300));
  const SyncVar Mutexes[3] = {makeSyncVar(SyncObjectKind::Mutex, 0x10),
                              makeSyncVar(SyncObjectKind::Mutex, 0x20),
                              makeSyncVar(SyncObjectKind::Mutex, 0x30)};

  // Fork edges: parent releases a per-child fork var, child acquires it.
  B.onThread(0).threadStart();
  for (ThreadId Child = 1; Child <= NumThreads; ++Child) {
    SyncVar Fork = makeSyncVar(SyncObjectKind::ThreadFork, Child);
    B.onThread(0).release(Fork);
    B.onThread(Child).threadStart().acquire(Fork);
  }

  std::vector<int> Held(NumThreads + 1, -1);
  for (unsigned Step = 0; Step != Steps; ++Step) {
    ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(NumThreads + 1));
    B.onThread(Tid);
    uint64_t Addr = 0x1000 + 8 * Rng.nextBelow(24);
    uint32_t Site = static_cast<uint32_t>(Rng.nextBelow(16));
    switch (Rng.nextBelow(6)) {
    case 0:
    case 1:
      B.write(Addr, makePc(Tid, Site));
      break;
    case 2:
    case 3:
      B.read(Addr, makePc(Tid, Site));
      break;
    case 4: // Balanced lock/unlock per thread.
      if (Held[Tid] < 0) {
        Held[Tid] = static_cast<int>(Rng.nextBelow(3));
        B.lock(Mutexes[Held[Tid]]);
      } else {
        B.unlock(Mutexes[Held[Tid]]);
        Held[Tid] = -1;
      }
      break;
    case 5: // Atomic-style acquire+release edge.
      B.acqRel(makeSyncVar(SyncObjectKind::Atomic, 0x40 + Rng.nextBelow(2)));
      break;
    }
  }
  for (ThreadId Tid = 1; Tid <= NumThreads; ++Tid)
    if (Held[Tid] >= 0)
      B.onThread(Tid).unlock(Mutexes[Held[Tid]]);
  if (Held[0] >= 0)
    B.onThread(0).unlock(Mutexes[Held[0]]);

  // Join edges mirror the forks.
  for (ThreadId Child = 1; Child <= NumThreads; ++Child) {
    SyncVar Join = makeSyncVar(SyncObjectKind::ThreadExit, Child);
    B.onThread(Child).release(Join).threadEnd();
    B.onThread(0).acquire(Join);
  }
  B.onThread(0).threadEnd();
  return B.build();
}

class ShardedTraceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedTraceFuzz, SerialAndShardedReportsAreIdentical) {
  Trace T = randomBuiltTrace(GetParam());
  RaceReport Serial;
  ASSERT_TRUE(detectRaces(T, Serial)) << "seed " << GetParam();
  auto SerialRaces = Serial.staticRaces();
  const std::string SerialText = Serial.describe();

  for (unsigned Shards : {2u, 4u, 8u}) {
    DetectorOptions Options;
    Options.Shards = Shards;
    RaceReport Sharded;
    ASSERT_TRUE(detectRaces(T, Sharded, ReplayOptions(), Options))
        << "seed " << GetParam() << " shards " << Shards;
    EXPECT_EQ(Sharded.numDynamicSightings(), Serial.numDynamicSightings())
        << "seed " << GetParam() << " shards " << Shards;
    auto ShardedRaces = Sharded.staticRaces();
    ASSERT_EQ(ShardedRaces.size(), SerialRaces.size())
        << "seed " << GetParam() << " shards " << Shards;
    for (size_t I = 0; I != SerialRaces.size(); ++I) {
      EXPECT_EQ(ShardedRaces[I].Key, SerialRaces[I].Key);
      EXPECT_EQ(ShardedRaces[I].DynamicCount, SerialRaces[I].DynamicCount);
      EXPECT_EQ(ShardedRaces[I].ExampleAddr, SerialRaces[I].ExampleAddr);
      EXPECT_EQ(ShardedRaces[I].FirstEventIndex,
                SerialRaces[I].FirstEventIndex);
      EXPECT_EQ(ShardedRaces[I].SawWriteWrite, SerialRaces[I].SawWriteWrite);
    }
    EXPECT_EQ(Sharded.describe(), SerialText)
        << "seed " << GetParam() << " shards " << Shards;
  }
}

// 100 seeds: the randomized differential-equivalence property of the
// sharded pipeline (ISSUE 2). Traces are synthetic, so this also runs in
// the TSan detector tier, where it race-checks the queues and workers.
INSTANTIATE_TEST_SUITE_P(Seeds, ShardedTraceFuzz,
                         ::testing::Range<uint64_t>(1, 101));

} // namespace
