//===-- tests/FastTrackTest.cpp - Epoch-optimized detector -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"

#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "harness/DetectionExperiment.h"
#include "support/SplitMix64.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>
#include <set>

using namespace literace;

namespace {

constexpr SyncVar L = makeSyncVar(SyncObjectKind::Mutex, 0x1000);
constexpr uint64_t X = 0xF00d0;
constexpr Pc PcA = makePc(1, 1);
constexpr Pc PcB = makePc(2, 2);
constexpr Pc PcC = makePc(3, 3);

RaceReport fasttrack(const LogBuilder &B) {
  RaceReport Report;
  EXPECT_TRUE(detectRacesFastTrack(B.build(), Report));
  return Report;
}

TEST(FastTrackTest, OrderedWritesAreSilent) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcA).unlock(L);
  B.onThread(1).lock(L).write(X, PcB).unlock(L);
  EXPECT_EQ(fasttrack(B).numStaticRaces(), 0u);
}

TEST(FastTrackTest, UnorderedWritesRace) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcA);
  B.onThread(1).write(X, PcB);
  RaceReport R = fasttrack(B);
  EXPECT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(PcA, PcB));
}

TEST(FastTrackTest, WriteReadRace) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcA);
  B.onThread(1).read(X, PcB);
  EXPECT_TRUE(fasttrack(B).contains(PcA, PcB));
}

TEST(FastTrackTest, ReadWriteRaceFromExclusiveEpoch) {
  LogBuilder B(16);
  B.onThread(0).read(X, PcA);
  B.onThread(1).write(X, PcB);
  EXPECT_TRUE(fasttrack(B).contains(PcA, PcB));
}

TEST(FastTrackTest, ConcurrentReadsPromoteWithoutRacing) {
  LogBuilder B(16);
  B.onThread(0).read(X, PcA);
  B.onThread(1).read(X, PcB);
  B.onThread(2).read(X, PcC);
  RaceReport Report;
  FastTrackDetector D(Report);
  EXPECT_TRUE(replayTrace(B.build(), D));
  EXPECT_EQ(Report.numStaticRaces(), 0u);
  EXPECT_EQ(D.readSharePromotions(), 1u);
}

TEST(FastTrackTest, SharedReadsAllRaceWithLaterWrite) {
  LogBuilder B(16);
  B.onThread(0).read(X, PcA);
  B.onThread(1).read(X, PcB);
  B.onThread(2).write(X, PcC);
  RaceReport R = fasttrack(B);
  EXPECT_TRUE(R.contains(PcA, PcC));
  EXPECT_TRUE(R.contains(PcB, PcC));
}

TEST(FastTrackTest, OrderedReadKeepsExclusiveEpoch) {
  LogBuilder B(16);
  // T0 reads, publishes via L; T1's read is ordered after — the epoch
  // just moves, no promotion.
  B.onThread(0).read(X, PcA).release(L);
  B.onThread(1).acquire(L).read(X, PcB);
  RaceReport Report;
  FastTrackDetector D(Report);
  EXPECT_TRUE(replayTrace(B.build(), D));
  EXPECT_EQ(Report.numStaticRaces(), 0u);
  EXPECT_EQ(D.readSharePromotions(), 0u);
}

TEST(FastTrackTest, WriteDemotesReadSharedState) {
  LogBuilder B(16);
  // Shared reads, then an ordered write, then an ordered read: silent.
  B.onThread(0).read(X, PcA).release(L);
  B.onThread(1).read(X, PcB).release(L);
  B.onThread(2).acquire(L).write(X, PcC).release(L);
  B.onThread(0).acquire(L).read(X, PcA);
  EXPECT_EQ(fasttrack(B).numStaticRaces(), 0u);
}

TEST(FastTrackTest, DemotionAccountingOnPromoteWriteReread) {
  // promote → totally-ordering write → re-read, with the counters
  // checked at each transition: promotions − demotions must equal the
  // number of addresses currently read shared.
  LogBuilder B(16);
  // Two unordered reads: promotion #1.
  B.onThread(0).read(X, PcA).release(L);
  B.onThread(1).read(X, PcB).release(L);
  // A write ordered after both readers: W_x := E_t, demotion #1.
  B.onThread(2).acquire(L).write(X, PcC).release(L);
  // Ordered re-reads restart on the exclusive-epoch fast path; the two
  // reads are again concurrent with each other, so they promote anew.
  B.onThread(0).acquire(L).read(X, PcA);
  B.onThread(1).acquire(L).read(X, PcB);

  RaceReport Report;
  FastTrackDetector D(Report);
  ASSERT_TRUE(replayTrace(B.build(), D));
  EXPECT_EQ(Report.numStaticRaces(), 0u) << Report.describe();
  EXPECT_EQ(D.readSharePromotions(), 2u);
  EXPECT_EQ(D.readShareDemotions(), 1u);
  EXPECT_EQ(D.readSharePromotions() - D.readShareDemotions(), 1u)
      << "one address should be read shared at end of trace";
}

TEST(FastTrackTest, PromoteWriteRereadVerdictsMatchHB) {
  // Verdict equivalence vs the vector-clock detector on the demotion
  // path: identical traces up to the final access, which is ordered in
  // one variant (silent under both detectors) and unordered in the
  // other (racy under both). A demotion bug that dropped or kept stale
  // read epochs would break one of the two variants.
  for (bool FinalReadOrdered : {true, false}) {
    LogBuilder B(16);
    B.onThread(0).read(X, PcA).release(L);
    B.onThread(1).read(X, PcB).release(L);
    B.onThread(2).acquire(L).write(X, PcC).release(L);
    if (FinalReadOrdered)
      B.onThread(0).acquire(L).read(X, PcA);
    else
      B.onThread(0).read(X, PcA); // Concurrent with T2's write.
    const Trace T = B.build();
    RaceReport HB, FT;
    ASSERT_TRUE(detectRaces(T, HB));
    ASSERT_TRUE(detectRacesFastTrack(T, FT));
    EXPECT_EQ(HB.racyAddresses(), FT.racyAddresses())
        << "ordered=" << FinalReadOrdered;
    EXPECT_EQ(HB.numStaticRaces() == 0, FT.numStaticRaces() == 0);
    EXPECT_EQ(FT.numStaticRaces() == 0, FinalReadOrdered);
  }
}

/// The headline property: FastTrack and the vector-clock detector agree
/// on WHICH ADDRESSES race, for randomized traces. (Witness pc pairs may
/// differ; both report at least one per racy address.)
class FastTrackEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

/// Generates a random but well-formed trace: each thread performs random
/// reads/writes over a small address pool, interleaved with balanced
/// lock/unlock of a small mutex pool and occasional event releases.
Trace randomTrace(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  LogBuilder B(8);
  const unsigned Threads = 3 + Rng.nextBelow(3);
  const unsigned OpsPerThread = 40 + Rng.nextBelow(40);
  for (unsigned T = 0; T != Threads; ++T) {
    B.onThread(T);
    int HeldLock = -1;
    for (unsigned I = 0; I != OpsPerThread; ++I) {
      uint64_t Addr = 0x100 + 8 * Rng.nextBelow(6);
      switch (Rng.nextBelow(6)) {
      case 0:
      case 1:
        B.read(Addr, makePc(T, I));
        break;
      case 2:
      case 3:
        B.write(Addr, makePc(T, I));
        break;
      case 4:
        if (HeldLock < 0) {
          HeldLock = static_cast<int>(Rng.nextBelow(3));
          B.lock(makeSyncVar(SyncObjectKind::Mutex, 0x5000 + HeldLock));
        }
        break;
      case 5:
        if (HeldLock >= 0) {
          B.unlock(makeSyncVar(SyncObjectKind::Mutex, 0x5000 + HeldLock));
          HeldLock = -1;
        }
        break;
      }
    }
    if (HeldLock >= 0)
      B.unlock(makeSyncVar(SyncObjectKind::Mutex, 0x5000 + HeldLock));
  }
  return B.build();
}

TEST_P(FastTrackEquivalenceTest, SameRacyAddressesAsVectorClocks) {
  Trace T = randomTrace(GetParam());
  RaceReport HB, FT;
  ASSERT_TRUE(detectRaces(T, HB));
  ASSERT_TRUE(detectRacesFastTrack(T, FT));
  EXPECT_EQ(HB.racyAddresses(), FT.racyAddresses())
      << "seed " << GetParam();
  // Neither fabricates: a trace silent under one must be silent under
  // the other.
  EXPECT_EQ(HB.numStaticRaces() == 0, FT.numStaticRaces() == 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastTrackEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(FastTrackTest, AgreesWithHBOnWorkloadTrace) {
  auto W = makeWorkload(WorkloadKind::Channel);
  WorkloadParams Params;
  Params.Scale = 0.05;
  ExperimentRun Run = executeExperiment(*W, Params);
  RaceReport HB, FT;
  ASSERT_TRUE(detectRaces(Run.TraceData, HB));
  ASSERT_TRUE(detectRacesFastTrack(Run.TraceData, FT));
  EXPECT_EQ(HB.racyAddresses(), FT.racyAddresses());
  // Ground truth holds for FastTrack too.
  auto [Detected, AllWithin] =
      validateAgainstManifest(FT, W->seededRaces());
  EXPECT_EQ(Detected, W->seededRaces().size());
  EXPECT_TRUE(AllWithin);
}

TEST(FastTrackTest, MicroBenchmarkTraceStaysSilent) {
  auto W = makeWorkload(WorkloadKind::LFList);
  WorkloadParams Params;
  Params.Scale = 0.1;
  ExperimentRun Run = executeExperiment(*W, Params);
  RaceReport FT;
  ASSERT_TRUE(detectRacesFastTrack(Run.TraceData, FT));
  EXPECT_EQ(FT.numStaticRaces(), 0u) << FT.describe();
}

} // namespace
