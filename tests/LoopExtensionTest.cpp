//===-- tests/LoopExtensionTest.cpp - §7 loop-granularity sampling ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadContext.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

class LoopExtensionTest : public ::testing::Test {
protected:
  LoopExtensionTest() : Sink(16) {
    RuntimeConfig Config;
    Config.Mode = RunMode::FullLogging;
    Config.TimestampCounters = 16;
    RT = std::make_unique<Runtime>(Config, &Sink);
    F = RT->registry().registerFunction("loopy");
  }

  size_t loggedOpsForIterations(unsigned Iterations,
                                unsigned OpsPerIteration = 1) {
    {
      ThreadContext TC(*RT);
      uint64_t Cell = 0;
      TC.run(F, [&](auto &T) {
        for (unsigned I = 0; I != Iterations; ++I) {
          T.loopIteration();
          for (unsigned K = 0; K != OpsPerIteration; ++K)
            T.store(&Cell, uint64_t{I}, 1);
        }
      });
    }
    return Sink.takeTrace().memoryOps();
  }

  MemorySink Sink;
  std::unique_ptr<Runtime> RT;
  FunctionId F = 0;
};

TEST_F(LoopExtensionTest, ShortLoopsAreFullyLogged) {
  EXPECT_EQ(loggedOpsForIterations(64), 64u);
}

TEST_F(LoopExtensionTest, LongLoopsDecayToStride) {
  // 64 full iterations, then every 16th: 6400 iterations log
  // 64 + 6336/16 = 460.
  EXPECT_EQ(loggedOpsForIterations(6400), 64u + 6336u / 16u);
}

TEST_F(LoopExtensionTest, DecayAppliesToAllOpsOfSquelchedIteration) {
  size_t Logged = loggedOpsForIterations(6400, /*OpsPerIteration=*/3);
  EXPECT_EQ(Logged, 3 * (64u + 6336u / 16u));
}

TEST_F(LoopExtensionTest, FreshActivationResetsTheDecay) {
  // Two activations of 64 iterations each log everything: the decay is
  // per activation, not per function.
  size_t First = loggedOpsForIterations(64);
  size_t Second = loggedOpsForIterations(64);
  EXPECT_EQ(First, 64u);
  EXPECT_EQ(Second, 64u);
}

TEST_F(LoopExtensionTest, NullTracerAcceptsTheHint) {
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime Bare(Config, nullptr);
  FunctionId G = Bare.registry().registerFunction("g");
  ThreadContext TC(Bare);
  uint64_t Cell = 0;
  TC.run(G, [&](auto &T) {
    for (unsigned I = 0; I != 100; ++I) {
      T.loopIteration();
      T.store(&Cell, uint64_t{I}, 1);
    }
  });
  EXPECT_EQ(Cell, 99u);
}

TEST_F(LoopExtensionTest, AccessesOutsideLoopsAreUnaffected) {
  {
    ThreadContext TC(*RT);
    uint64_t Cell = 0;
    TC.run(F, [&](auto &T) {
      for (unsigned I = 0; I != 200; ++I)
        T.store(&Cell, uint64_t{I}, 1); // No loopIteration() hints.
    });
  }
  EXPECT_EQ(Sink.takeTrace().memoryOps(), 200u);
}

} // namespace
