//===-- tests/FaultInjectionTest.cpp - Writer fault injection ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Drives the v2 segment writer through the FaultySink byte-layer
// decorator (docs/ROBUSTNESS.md): transient failures and short writes
// must be retried to completion, hard failures must park the sink with
// exact drop accounting instead of corrupting the stream, and injected
// bit flips must be caught by the reader's checksums — all seeded and
// deterministic.
//
//===----------------------------------------------------------------------===//

#include "runtime/EventLog.h"
#include "support/ByteOutput.h"
#include "telemetry/Metrics.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace literace;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

std::vector<EventRecord> makeStream(ThreadId Tid, size_t Count) {
  std::vector<EventRecord> Records(Count);
  for (size_t I = 0; I != Count; ++I) {
    EventRecord &R = Records[I];
    R.Kind = EventKind::Write;
    R.Tid = Tid;
    R.Addr = 0x1000 + I;
    R.Pc = 7;
    R.Mask = FullLogMaskBit;
  }
  return Records;
}

/// Writes \p Chunks chunks of \p PerChunk events through a faulty byte
/// layer; returns (close-was-clean, events the sink claims it dropped).
struct FaultRun {
  bool CloseClean = false;
  uint64_t Dropped = 0;
  uint64_t Retries = 0;
  uint64_t Segments = 0;
};

FaultRun runThroughFaults(const std::string &Path, const FaultPlan &Plan,
                          size_t Chunks, size_t PerChunk) {
  FileByteOutput File(Path);
  EXPECT_TRUE(File.ok());
  FaultySink Faulty(File, Plan);
  SegmentedFileSink::Options Opts;
  Opts.Output = &Faulty;
  SegmentedFileSink Sink(Path, 16, Opts);
  std::vector<EventRecord> Stream = makeStream(0, PerChunk);
  for (size_t I = 0; I != Chunks; ++I)
    Sink.writeChunk(0, Stream.data(), Stream.size());
  FaultRun Result;
  Result.CloseClean = Sink.close();
  Result.Dropped = Sink.eventsDropped();
  Result.Retries = Sink.retries();
  Result.Segments = Sink.segmentsWritten();
  return Result;
}

TEST(FaultInjectionTest, TransientFailuresAreRetriedWithoutLoss) {
  std::string Path = tempPath("fault_transient.bin");
  FaultPlan Plan;
  Plan.TransientAtWrite = 3; // Writes 3 and 4 fail transiently.
  Plan.TransientCount = 2;
  FaultRun Run = runThroughFaults(Path, Plan, 6, 16);
  EXPECT_TRUE(Run.CloseClean);
  EXPECT_EQ(Run.Dropped, 0u);
  EXPECT_GE(Run.Retries, 2u);
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Ok) << R.Error;
  EXPECT_EQ(R.Stats.EventsRecovered, 6u * 16u);
  std::remove(Path.c_str());
}

TEST(FaultInjectionTest, ShortWriteRegimeCompletesEveryFrame) {
  std::string Path = tempPath("fault_short.bin");
  FaultPlan Plan;
  Plan.MaxWriteBytes = 7; // Every write is short; progress never stops.
  FaultRun Run = runThroughFaults(Path, Plan, 4, 32);
  EXPECT_TRUE(Run.CloseClean);
  EXPECT_EQ(Run.Dropped, 0u);
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Ok) << R.Error;
  EXPECT_EQ(R.Stats.EventsRecovered, 4u * 32u);
  std::remove(Path.c_str());
}

TEST(FaultInjectionTest, HardFailureParksTheSinkWithExactAccounting) {
  std::string Path = tempPath("fault_hard.bin");
  FaultPlan Plan;
  Plan.FailAtWrite = 3; // Header + 1 frame land; the device then dies.
  FaultRun Run = runThroughFaults(Path, Plan, 5, 16);
  EXPECT_FALSE(Run.CloseClean);
  EXPECT_EQ(Run.Segments, 1u);
  EXPECT_EQ(Run.Dropped, 4u * 16u);
  // What made it to disk is a coherent salvageable prefix.
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged);
  EXPECT_EQ(R.Stats.EventsRecovered, 16u);
  EXPECT_FALSE(R.Stats.CleanShutdown);
  std::remove(Path.c_str());
}

TEST(FaultInjectionTest, RetryBudgetExhaustionDropsOnlyTheStuckFrame) {
  std::string Path = tempPath("fault_budget.bin");
  FaultPlan Plan;
  Plan.TransientAtWrite = 2; // Frame 1 stays stuck past any backoff.
  Plan.TransientCount = 1000;
  FaultRun Run = runThroughFaults(Path, Plan, 3, 16);
  EXPECT_FALSE(Run.CloseClean);
  EXPECT_GT(Run.Retries, 0u);
  EXPECT_GT(Run.Dropped, 0u);
  std::remove(Path.c_str());
}

TEST(FaultInjectionTest, BitFlipsAreCaughtByTheReadersChecksums) {
  std::string Path = tempPath("fault_flip.bin");
  FaultPlan Plan;
  // Gaps are drawn uniformly from [1, BitFlipEveryBytes], so the mean
  // spacing (~3 KB) comfortably exceeds a 540-byte frame: a handful of
  // the 40 frames take a flip, the rest must survive intact.
  Plan.BitFlipEveryBytes = 6000;
  Plan.BitFlipSeed = 42;
  FaultRun Run = runThroughFaults(Path, Plan, 40, 16);
  EXPECT_TRUE(Run.CloseClean); // The writer cannot see silent corruption…
  TraceReadResult R = readTrace(Path);
  ASSERT_TRUE(R.readable());
  // …but the reader pins every flip to a frame and drops just those.
  EXPECT_EQ(R.Status, TraceReadStatus::Salvaged);
  EXPECT_GE(R.Stats.SegmentsDropped, 1u);
  EXPECT_GT(R.Stats.EventsRecovered, 0u);
  EXPECT_LT(R.Stats.EventsRecovered, 40u * 16u);
  std::remove(Path.c_str());
}

TEST(FaultInjectionTest, BitFlipScheduleIsDeterministic) {
  std::string PathA = tempPath("fault_det_a.bin");
  std::string PathB = tempPath("fault_det_b.bin");
  FaultPlan Plan;
  Plan.BitFlipEveryBytes = 400;
  Plan.BitFlipSeed = 7;
  runThroughFaults(PathA, Plan, 5, 16);
  runThroughFaults(PathB, Plan, 5, 16);
  TraceReadResult A = readTrace(PathA);
  TraceReadResult B = readTrace(PathB);
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Stats.SegmentsDropped, B.Stats.SegmentsDropped);
  EXPECT_EQ(A.Stats.EventsRecovered, B.Stats.EventsRecovered);
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

TEST(FaultInjectionTest, SinkTelemetryCountsRetriesAndSegments) {
  std::string Path = tempPath("fault_telemetry.bin");
  telemetry::MetricsRegistry Registry;
  {
    FileByteOutput File(Path);
    FaultPlan Plan;
    Plan.TransientAtWrite = 2;
    Plan.TransientCount = 1;
    FaultySink Faulty(File, Plan);
    SegmentedFileSink::Options Opts;
    Opts.Output = &Faulty;
    Opts.Metrics = &Registry;
    SegmentedFileSink Sink(Path, 16, Opts);
    std::vector<EventRecord> Stream = makeStream(0, 16);
    Sink.writeChunk(0, Stream.data(), Stream.size());
    Sink.writeChunk(0, Stream.data(), Stream.size());
    EXPECT_TRUE(Sink.close());
  }
  telemetry::MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_GE(Snap.counter("sink.retries"), 1u);
  EXPECT_EQ(Snap.counter("sink.segments_written"), 2u);
  std::remove(Path.c_str());
}

} // namespace
