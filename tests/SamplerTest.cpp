//===-- tests/SamplerTest.cpp - Sampling strategies ------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Samplers.h"

#include "runtime/EventLog.h"
#include "runtime/Runtime.h"
#include "runtime/ThreadContext.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace literace;

namespace {

TEST(AdaptiveScheduleTest, ThreadLocalDefaultMatchesPaper) {
  AdaptiveSchedule Sched = AdaptiveSchedule::threadLocalDefault();
  ASSERT_EQ(Sched.Rates.size(), 4u);
  EXPECT_DOUBLE_EQ(Sched.Rates[0], 1.0);
  EXPECT_DOUBLE_EQ(Sched.Rates[1], 0.1);
  EXPECT_DOUBLE_EQ(Sched.Rates[2], 0.01);
  EXPECT_DOUBLE_EQ(Sched.Rates[3], 0.001);
  EXPECT_EQ(Sched.BurstLength, 10u);
}

TEST(AdaptiveScheduleTest, GlobalDefaultHalvesToFloor) {
  AdaptiveSchedule Sched = AdaptiveSchedule::globalDefault();
  ASSERT_GE(Sched.Rates.size(), 3u);
  EXPECT_DOUBLE_EQ(Sched.Rates.front(), 1.0);
  EXPECT_DOUBLE_EQ(Sched.Rates.back(), 0.001);
  for (size_t I = 0; I + 2 < Sched.Rates.size(); ++I)
    EXPECT_DOUBLE_EQ(Sched.Rates[I + 1], Sched.Rates[I] / 2.0);
}

TEST(AdaptiveScheduleTest, GapSolvesForLongRunRate) {
  AdaptiveSchedule Sched = AdaptiveSchedule::fixedRate(0.1);
  // rate = L / (L + gap): 10 / (10 + 90) = 10%.
  EXPECT_EQ(Sched.gapAfterBurst(0), 90u);
  Sched = AdaptiveSchedule::fixedRate(1.0);
  EXPECT_EQ(Sched.gapAfterBurst(0), 0u);
  Sched = AdaptiveSchedule::fixedRate(0.5);
  EXPECT_EQ(Sched.gapAfterBurst(0), 10u);
}

TEST(AdaptiveScheduleTest, GapClampsRateIndex) {
  AdaptiveSchedule Sched = AdaptiveSchedule::threadLocalDefault();
  EXPECT_EQ(Sched.gapAfterBurst(200), Sched.gapAfterBurst(3));
}

TEST(BurstySamplerTest, FirstBurstSamplesFirstTenCalls) {
  AdaptiveSchedule Sched = AdaptiveSchedule::threadLocalDefault();
  SamplerFnState State;
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(stepBurstySampler(State, Sched)) << "call " << I;
  // Next call starts the 10% gap.
  EXPECT_FALSE(stepBurstySampler(State, Sched));
}

TEST(BurstySamplerTest, AdaptiveBackoffProgression) {
  AdaptiveSchedule Sched = AdaptiveSchedule::threadLocalDefault();
  SamplerFnState State;
  // Burst 1: calls 1-10 sampled, rate drops to 10% -> gap 90.
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(stepBurstySampler(State, Sched));
  for (unsigned I = 0; I != 90; ++I)
    EXPECT_FALSE(stepBurstySampler(State, Sched)) << "gap call " << I;
  // Burst 2: 10 sampled, rate drops to 1% -> gap 990.
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(stepBurstySampler(State, Sched));
  for (unsigned I = 0; I != 990; ++I)
    EXPECT_FALSE(stepBurstySampler(State, Sched));
  // Burst 3: 10 sampled, rate drops to the 0.1% floor -> gap 9990.
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(stepBurstySampler(State, Sched));
  for (unsigned I = 0; I != 9990; ++I)
    EXPECT_FALSE(stepBurstySampler(State, Sched));
  // Floor: every subsequent cycle keeps the 0.1% rate.
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(stepBurstySampler(State, Sched));
  EXPECT_FALSE(stepBurstySampler(State, Sched));
}

TEST(BurstySamplerTest, CallsCounterTracksEveryEntry) {
  AdaptiveSchedule Sched = AdaptiveSchedule::fixedRate(0.5);
  SamplerFnState State;
  for (unsigned I = 0; I != 57; ++I)
    stepBurstySampler(State, Sched);
  EXPECT_EQ(State.Calls, 57u);
}

TEST(BurstySamplerTest, CallsCounterSaturatesInsteadOfWrapping) {
  AdaptiveSchedule Sched = AdaptiveSchedule::fixedRate(0.5);
  SamplerFnState State;
  State.Calls = ~uint32_t{0} - 2;
  for (unsigned I = 0; I != 10; ++I)
    stepBurstySampler(State, Sched);
  // The frequency counter parks at UINT32_MAX; a wrap to 0 would make a
  // 4-billion-call function look freshly cold.
  EXPECT_EQ(State.Calls, ~uint32_t{0});
}

TEST(BurstySamplerTest, BurstLengthOneDegenerate) {
  AdaptiveSchedule Sched = AdaptiveSchedule::fixedRate(0.5, 1);
  SamplerFnState State;
  unsigned Sampled = 0;
  for (unsigned I = 0; I != 1000; ++I)
    Sampled += stepBurstySampler(State, Sched) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(Sampled) / 1000.0, 0.5, 0.05);
}

/// Long-run effective rate of a fixed-rate bursty sampler converges to
/// the configured rate, for a sweep of rates.
class FixedRateConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(FixedRateConvergenceTest, LongRunRateConverges) {
  const double Rate = GetParam();
  AdaptiveSchedule Sched = AdaptiveSchedule::fixedRate(Rate);
  SamplerFnState State;
  const unsigned Calls = 200000;
  unsigned Sampled = 0;
  for (unsigned I = 0; I != Calls; ++I)
    Sampled += stepBurstySampler(State, Sched) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(Sampled) / Calls, Rate, Rate * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, FixedRateConvergenceTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.25,
                                           0.5, 1.0));

TEST(BurstySamplerTest, AdaptiveLongRunRateApproachesFloor) {
  AdaptiveSchedule Sched = AdaptiveSchedule::threadLocalDefault();
  SamplerFnState State;
  const unsigned Calls = 2000000;
  unsigned Sampled = 0;
  for (unsigned I = 0; I != Calls; ++I)
    Sampled += stepBurstySampler(State, Sched) ? 1 : 0;
  double Esr = static_cast<double>(Sampled) / Calls;
  // Early bursts push it slightly above the 0.1% floor.
  EXPECT_GT(Esr, 0.001);
  EXPECT_LT(Esr, 0.002);
}

/// Fixture driving samplers through real ThreadContexts.
class SamplerRuntimeTest : public ::testing::Test {
protected:
  SamplerRuntimeTest() : Sink(16) {
    RuntimeConfig Config;
    Config.Mode = RunMode::Experiment;
    Config.TimestampCounters = 16;
    RT = std::make_unique<Runtime>(Config, &Sink);
  }

  MemorySink Sink;
  std::unique_ptr<Runtime> RT;
};

TEST_F(SamplerRuntimeTest, ThreadLocalSamplerIsIndependentPerThread) {
  unsigned Slot = RT->addSampler(std::make_unique<ThreadLocalBurstySampler>(
      "TL", "test", AdaptiveSchedule::threadLocalDefault()));
  Sampler &S = RT->sampler(Slot);
  FunctionId F = RT->registry().registerFunction("f");

  ThreadContext TC0(*RT);
  // Make the function hot for thread 0: way past the first burst.
  unsigned SampledT0 = 0;
  for (unsigned I = 0; I != 200; ++I)
    SampledT0 += S.shouldSample(TC0, F) ? 1 : 0;
  EXPECT_LT(SampledT0, 30u);

  // A fresh thread still samples its own first executions at 100%.
  ThreadContext TC1(*RT);
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(S.shouldSample(TC1, F)) << "thread-local first burst";
}

TEST_F(SamplerRuntimeTest, GlobalSamplerSharesHeatAcrossThreads) {
  unsigned Slot = RT->addSampler(std::make_unique<GlobalBurstySampler>(
      "G", "test", AdaptiveSchedule::globalDefault()));
  Sampler &S = RT->sampler(Slot);
  FunctionId F = RT->registry().registerFunction("f");

  ThreadContext TC0(*RT);
  for (unsigned I = 0; I != 100000; ++I)
    (void)S.shouldSample(TC0, F);

  // A new thread's first executions are mostly NOT sampled: the region is
  // globally hot (this is exactly the failure mode §3.4 fixes).
  ThreadContext TC1(*RT);
  unsigned SampledT1 = 0;
  for (unsigned I = 0; I != 10; ++I)
    SampledT1 += S.shouldSample(TC1, F) ? 1 : 0;
  EXPECT_LT(SampledT1, 10u);
}

TEST_F(SamplerRuntimeTest, GlobalSamplerResetClearsState) {
  auto Owned = std::make_unique<GlobalBurstySampler>(
      "G", "test", AdaptiveSchedule::globalDefault());
  GlobalBurstySampler *G = Owned.get();
  RT->addSampler(std::move(Owned));
  FunctionId F = RT->registry().registerFunction("f");
  ThreadContext TC(*RT);
  for (unsigned I = 0; I != 5000; ++I)
    (void)G->shouldSample(TC, F);
  G->reset();
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_TRUE(G->shouldSample(TC, F)) << "fresh burst after reset";
}

TEST_F(SamplerRuntimeTest, RandomSamplerHitsConfiguredRate) {
  unsigned Slot = RT->addSampler(
      std::make_unique<RandomSampler>("Rnd", "test", 0.25));
  Sampler &S = RT->sampler(Slot);
  FunctionId F = RT->registry().registerFunction("f");
  ThreadContext TC(*RT);
  unsigned Sampled = 0;
  const unsigned Calls = 100000;
  for (unsigned I = 0; I != Calls; ++I)
    Sampled += S.shouldSample(TC, F) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(Sampled) / Calls, 0.25, 0.01);
}

TEST_F(SamplerRuntimeTest, UnColdSamplerSkipsFirstTenPerThread) {
  unsigned Slot =
      RT->addSampler(std::make_unique<UnColdRegionSampler>(10));
  Sampler &S = RT->sampler(Slot);
  FunctionId F = RT->registry().registerFunction("f");

  ThreadContext TC0(*RT);
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_FALSE(S.shouldSample(TC0, F)) << "cold call " << I;
  for (unsigned I = 0; I != 100; ++I)
    EXPECT_TRUE(S.shouldSample(TC0, F));

  // Per thread: a new thread's first calls are skipped again even though
  // the function is globally warm.
  ThreadContext TC1(*RT);
  EXPECT_FALSE(S.shouldSample(TC1, F));
}

TEST_F(SamplerRuntimeTest, UnColdSamplerStaysHotAtCounterWrapBoundary) {
  unsigned Slot =
      RT->addSampler(std::make_unique<UnColdRegionSampler>(10));
  Sampler &S = RT->sampler(Slot);
  FunctionId F = RT->registry().registerFunction("f");
  ThreadContext TC(*RT);
  // Simulate a function entered ~2^32 times: without the saturating
  // increment the counter wraps to 0 and the next ColdCalls entries are
  // silently re-classified as cold (unsampled).
  TC.localSamplerState(Slot, F).Calls = ~uint32_t{0} - 2;
  for (unsigned I = 0; I != 100; ++I)
    EXPECT_TRUE(S.shouldSample(TC, F)) << "call " << I << " after 4B";
  EXPECT_EQ(TC.localSamplerState(Slot, F).Calls, ~uint32_t{0});
}

TEST_F(SamplerRuntimeTest, GlobalSamplerMatchesReferenceSequence) {
  // The striped-lock global sampler must make exactly the decisions of
  // the plain shared state machine, function by function, in any
  // single-threaded interleaving of functions.
  AdaptiveSchedule Sched = AdaptiveSchedule::globalDefault();
  unsigned Slot = RT->addSampler(
      std::make_unique<GlobalBurstySampler>("G", "test", Sched));
  Sampler &S = RT->sampler(Slot);
  ThreadContext TC(*RT);
  constexpr unsigned NumFns = 129; // Spans several lock stripes.
  std::vector<FunctionId> Fns;
  std::vector<SamplerFnState> Reference(NumFns);
  for (unsigned I = 0; I != NumFns; ++I)
    Fns.push_back(RT->registry().registerFunction("f" + std::to_string(I)));
  for (unsigned Round = 0; Round != 2000; ++Round)
    for (unsigned I = 0; I != NumFns; ++I)
      EXPECT_EQ(S.shouldSample(TC, Fns[I]),
                stepBurstySampler(Reference[I], Sched))
          << "fn " << I << " round " << Round;
}

TEST_F(SamplerRuntimeTest, GlobalSamplerConcurrentCountIsExact) {
  // Per-function decisions serialize on the function's stripe, so N total
  // entries of one function must sample exactly as many calls as the
  // reference state machine does in N steps — whatever the interleaving.
  AdaptiveSchedule Sched = AdaptiveSchedule::globalDefault();
  unsigned Slot = RT->addSampler(
      std::make_unique<GlobalBurstySampler>("G", "test", Sched));
  Sampler &S = RT->sampler(Slot);
  FunctionId F = RT->registry().registerFunction("hot");
  constexpr unsigned NumThreads = 4;
  constexpr unsigned CallsPerThread = 25000;
  std::atomic<unsigned> Sampled{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&] {
      ThreadContext TC(*RT);
      unsigned Local = 0;
      for (unsigned I = 0; I != CallsPerThread; ++I)
        Local += S.shouldSample(TC, F) ? 1 : 0;
      Sampled.fetch_add(Local);
    });
  for (std::thread &T : Threads)
    T.join();
  SamplerFnState Reference;
  unsigned Expected = 0;
  for (unsigned I = 0; I != NumThreads * CallsPerThread; ++I)
    Expected += stepBurstySampler(Reference, Sched) ? 1 : 0;
  EXPECT_EQ(Sampled.load(), Expected);
}

TEST_F(SamplerRuntimeTest, StandardSamplersConvergeToNominalRates) {
  // Long-run sampled fraction of each standard fixed-rate sampler lands
  // on its nominal rate — the guard for gapAfterBurst arithmetic and for
  // the striped global sampler's bookkeeping.
  struct Case {
    const char *Name;
    double Rate;
    double Tolerance;
  };
  const Case Cases[] = {
      {"TL-Fx", 0.05, 0.05 * 0.05}, // deterministic: 5% relative
      {"G-Fx", 0.10, 0.10 * 0.05},  // deterministic: 5% relative
      {"Rnd10", 0.10, 0.01},        // stochastic: ~18 sd at 300k calls
      {"Rnd25", 0.25, 0.01},
  };
  // All samplers must attach before any ThreadContext exists, so resolve
  // every case's slot first, then drive them through one context.
  auto Standard = makeStandardSamplers();
  std::vector<unsigned> Slots;
  for (const Case &C : Cases) {
    auto It = std::find_if(Standard.begin(), Standard.end(), [&](auto &S) {
      return S && S->shortName() == C.Name;
    });
    ASSERT_NE(It, Standard.end()) << C.Name;
    Slots.push_back(RT->addSampler(std::move(*It)));
  }
  ThreadContext TC(*RT);
  for (size_t I = 0; I != std::size(Cases); ++I) {
    const Case &C = Cases[I];
    Sampler &S = RT->sampler(Slots[I]);
    FunctionId F = RT->registry().registerFunction(C.Name);
    const unsigned Calls = 300000;
    unsigned Sampled = 0;
    for (unsigned K = 0; K != Calls; ++K)
      Sampled += S.shouldSample(TC, F) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(Sampled) / Calls, C.Rate, C.Tolerance)
        << C.Name;
  }
}

TEST_F(SamplerRuntimeTest, AlwaysAndNeverSamplers) {
  unsigned A = RT->addSampler(std::make_unique<AlwaysSampler>());
  unsigned N = RT->addSampler(std::make_unique<NeverSampler>());
  FunctionId F = RT->registry().registerFunction("f");
  ThreadContext TC(*RT);
  for (unsigned I = 0; I != 20; ++I) {
    EXPECT_TRUE(RT->sampler(A).shouldSample(TC, F));
    EXPECT_FALSE(RT->sampler(N).shouldSample(TC, F));
  }
}

TEST(StandardSamplersTest, PaperOrderAndNames) {
  auto Samplers = makeStandardSamplers();
  ASSERT_EQ(Samplers.size(), 7u);
  EXPECT_EQ(Samplers[0]->shortName(), "TL-Ad");
  EXPECT_EQ(Samplers[1]->shortName(), "TL-Fx");
  EXPECT_EQ(Samplers[2]->shortName(), "G-Ad");
  EXPECT_EQ(Samplers[3]->shortName(), "G-Fx");
  EXPECT_EQ(Samplers[4]->shortName(), "Rnd10");
  EXPECT_EQ(Samplers[5]->shortName(), "Rnd25");
  EXPECT_EQ(Samplers[6]->shortName(), "UCP");
}

} // namespace
