//===-- tests/RecoveryTest.cpp - Collection-plane fault tolerance -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Crash-only collection plane (docs/ROBUSTNESS.md): the client-side
// spool-and-reconnect transport (SpoolingSocketOutput), the daemon-side
// write-ahead journals and triage checkpoints, and the recovery proof —
// a daemon killed at a seeded byte offset and restarted must end up
// reporting exactly what an uninterrupted batch run over the same bytes
// would. Everything runs on synthetic LogBuilder traces over real
// AF_UNIX sockets; no instrumented workload threads, so the suite is
// TSan-clean.
//
//===----------------------------------------------------------------------===//

#include "collector/Checkpoint.h"
#include "collector/Collector.h"
#include "telemetry/Metrics.h"
#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "detector/Replay.h"
#include "runtime/EventLog.h"
#include "support/ByteOutput.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace literace;
using namespace literace::collector;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

/// Fresh spool directory for one test (cleared of leftovers).
std::string tempSpoolDir(const std::string &Name) {
  const std::string Dir = tempPath(Name.c_str());
  ::mkdir(Dir.c_str(), 0755);
  for (const std::string &J : listJournalFiles(Dir))
    std::remove((Dir + "/" + J).c_str());
  std::remove((Dir + "/" + checkpointFileName()).c_str());
  return Dir;
}

/// On test failure, copies the spool directory (journals + triage
/// checkpoint) into $LITERACE_COLLECTOR_ARTIFACT_DIR so CI ships the
/// exact on-disk state a restarted daemon would have salvaged, instead
/// of a bare assertion. No-op when the test passes or the env is unset.
class SpoolArtifactGuard {
public:
  explicit SpoolArtifactGuard(std::string Dir) : Dir(std::move(Dir)) {}
  ~SpoolArtifactGuard() {
    const char *Out = std::getenv("LITERACE_COLLECTOR_ARTIFACT_DIR");
    if (!Out || !::testing::Test::HasFailure())
      return;
    const ::testing::TestInfo *Info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string Dest = std::string(Out) + "/" +
                       (Info ? Info->name() : "recovery") + "-spool";
    std::string Cmd = "mkdir -p '" + Dest + "' && cp -r '" + Dir +
                      "'/. '" + Dest + "'";
    if (std::system(Cmd.c_str()) != 0)
      std::fprintf(stderr, "warning: failed to save spool artifact %s\n",
                   Dest.c_str());
  }

private:
  std::string Dir;
};

/// Writes \p T through a SegmentedFileSink in round-robin chunks of
/// \p ChunkSize so the file holds many small frames.
void writeSegmented(const Trace &T, const std::string &Path,
                    size_t ChunkSize) {
  SegmentedFileSink::Options Opts;
  SegmentedFileSink Sink(Path, T.NumTimestampCounters, Opts);
  ASSERT_TRUE(Sink.ok());
  std::vector<size_t> Pos(T.PerThread.size(), 0);
  bool More = true;
  while (More) {
    More = false;
    for (size_t Tid = 0; Tid < T.PerThread.size(); ++Tid) {
      size_t Left = T.PerThread[Tid].size() - Pos[Tid];
      if (Left == 0)
        continue;
      size_t N = std::min(ChunkSize, Left);
      Sink.writeChunk(static_cast<ThreadId>(Tid),
                      T.PerThread[Tid].data() + Pos[Tid], N);
      Pos[Tid] += N;
      More = true;
    }
  }
  EXPECT_TRUE(Sink.close());
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Bytes;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(File);
  return Bytes;
}

/// Two threads racing on fresh addresses every round, no sync edges:
/// exactly two static races — (fn3:9, fn4:11) write/write and
/// (fn3:10, fn4:12) read/write — each with \p Rounds dynamic sightings.
/// Rounds scales the byte size so kill offsets land mid-stream.
Trace racyTrace(unsigned Rounds) {
  LogBuilder B(16);
  B.onThread(0).threadStart();
  B.onThread(1).threadStart();
  for (unsigned I = 0; I < Rounds; ++I) {
    // Two disjoint address families, one fresh address per round each.
    B.onThread(0)
        .write(0x100000 + 16ull * I, makePc(3, 9))
        .read(0x900000 + 16ull * I, makePc(3, 10));
    B.onThread(1)
        .write(0x100000 + 16ull * I, makePc(4, 11))
        .write(0x900000 + 16ull * I, makePc(4, 12));
  }
  B.onThread(0).threadEnd();
  B.onThread(1).threadEnd();
  return B.build();
}

/// Serial ground truth: replays \p T through one HBDetector.
RaceReport detectOffline(const Trace &T) {
  RaceReport Report;
  HBDetector Detector(Report);
  ReplayScheduler Scheduler(T.NumTimestampCounters);
  for (size_t Tid = 0; Tid < T.PerThread.size(); ++Tid)
    Scheduler.addEvents(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                        T.PerThread[Tid].size());
  Scheduler.drain(Detector);
  return Report;
}

/// The server's triaged set must equal the offline report — same races,
/// same dynamic counts.
void expectMatchesOffline(const CollectorServer &Server,
                          const RaceReport &Offline) {
  const std::vector<StaticRace> Expected = Offline.staticRaces();
  const std::vector<TriagedRace> Live = Server.triage().races();
  ASSERT_EQ(Live.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Live[I].Key, Expected[I].Key);
    EXPECT_EQ(Live[I].DynamicCount, Expected[I].DynamicCount)
        << "count drift on race " << I;
    EXPECT_EQ(Live[I].SawWriteWrite, Expected[I].SawWriteWrite);
  }
}

/// An in-memory ByteOutput recording everything it accepts.
class CaptureOutput : public ByteOutput {
public:
  WriteResult write(const void *Data, size_t Size) override {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Bytes.insert(Bytes.end(), P, P + Size);
    return {Size, false};
  }
  void close() override {}
  bool ok() const override { return true; }

  std::vector<uint8_t> Bytes;
};

//===----------------------------------------------------------------------===//
// Fault-plan surface: torn connections at a byte offset
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, FailAtByteTearsTheStreamAtTheExactOffset) {
  CaptureOutput Under;
  FaultPlan Plan;
  Plan.FailAtByte = 100;
  FaultySink Sink(Under, Plan);

  uint8_t Buf[64];
  std::memset(Buf, 0xAB, sizeof(Buf));
  WriteResult R = Sink.write(Buf, 64); // [0, 64): all accepted
  EXPECT_EQ(R.Written, 64u);
  R = Sink.write(Buf, 64); // [64, 128): only up to byte 100 goes through
  EXPECT_EQ(R.Written, 36u);
  EXPECT_FALSE(R.Transient) << "a torn connection is not retryable";
  R = Sink.write(Buf, 64); // dead forever after
  EXPECT_EQ(R.Written, 0u);
  EXPECT_FALSE(R.Transient);
  EXPECT_FALSE(Sink.ok());
  EXPECT_EQ(Under.Bytes.size(), 100u);
}

//===----------------------------------------------------------------------===//
// Checkpoint codec
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, EncodeDecodeRoundTripsEveryField) {
  CollectorCheckpoint C;
  C.NextSessionId = 42;
  C.Sightings = 1000;
  C.SuppressedSightings = 7;
  C.RateLimitedUpdates = 3;
  TriageCheckpointEntry E;
  E.R.Key = makeStaticRaceKey(makePc(3, 9), makePc(4, 11));
  E.R.DynamicCount = 123;
  E.R.ExampleAddr = 0x3000;
  E.R.SawWriteWrite = true;
  E.R.EmittedUpdates = 5;
  E.R.RateLimitedUpdates = 2;
  E.Tokens = 3.25;
  E.SessionIds = {1, 4, 9};
  C.Races.push_back(E);
  C.SuppressionHits.emplace_back("benign-counter", 17);
  CheckpointSessionEntry S;
  S.Id = 4;
  S.RunIdHi = 0xdeadbeefcafef00dull;
  S.RunIdLo = 0x0123456789abcdefull;
  S.Resumable = true;
  S.LogicalPos = 9000;
  S.JournalBytes = 8500;
  S.Published.emplace_back(makeStaticRaceKey(makePc(3, 9), makePc(4, 11)),
                           60);
  C.Sessions.push_back(S);

  CollectorCheckpoint D;
  std::string Error;
  ASSERT_TRUE(decodeCheckpoint(encodeCheckpoint(C), D, &Error)) << Error;
  EXPECT_EQ(D.NextSessionId, 42u);
  EXPECT_EQ(D.Sightings, 1000u);
  EXPECT_EQ(D.SuppressedSightings, 7u);
  EXPECT_EQ(D.RateLimitedUpdates, 3u);
  ASSERT_EQ(D.Races.size(), 1u);
  EXPECT_EQ(D.Races[0].R.Key, E.R.Key);
  EXPECT_EQ(D.Races[0].R.DynamicCount, 123u);
  EXPECT_TRUE(D.Races[0].R.SawWriteWrite);
  EXPECT_EQ(D.Races[0].R.EmittedUpdates, 5u);
  EXPECT_EQ(D.Races[0].R.RateLimitedUpdates, 2u);
  EXPECT_DOUBLE_EQ(D.Races[0].Tokens, 3.25);
  EXPECT_EQ(D.Races[0].SessionIds, E.SessionIds);
  ASSERT_EQ(D.SuppressionHits.size(), 1u);
  EXPECT_EQ(D.SuppressionHits[0].first, "benign-counter");
  EXPECT_EQ(D.SuppressionHits[0].second, 17u);
  ASSERT_EQ(D.Sessions.size(), 1u);
  EXPECT_EQ(D.Sessions[0].Id, 4u);
  EXPECT_EQ(D.Sessions[0].RunIdHi, S.RunIdHi);
  EXPECT_EQ(D.Sessions[0].RunIdLo, S.RunIdLo);
  EXPECT_TRUE(D.Sessions[0].Resumable);
  EXPECT_EQ(D.Sessions[0].LogicalPos, 9000u);
  EXPECT_EQ(D.Sessions[0].JournalBytes, 8500u);
  ASSERT_EQ(D.Sessions[0].Published.size(), 1u);
  EXPECT_EQ(D.Sessions[0].Published[0].first, E.R.Key);
  EXPECT_EQ(D.Sessions[0].Published[0].second, 60u);
}

TEST(CheckpointTest, DecodeRejectsGarbageAndWrongSchema) {
  CollectorCheckpoint C;
  EXPECT_FALSE(decodeCheckpoint("not json", C));
  EXPECT_FALSE(decodeCheckpoint("{\"schema\": \"other.v1\"}", C));
}

TEST(CheckpointTest, JournalFileNameRoundTripsAndRejectsImpostors) {
  const std::string Name =
      journalFileName(7, 0x1111222233334444ull, 0x5555666677778888ull, true);
  uint64_t Id = 0, Hi = 0, Lo = 0;
  bool Resumable = false;
  ASSERT_TRUE(parseJournalFileName(Name, Id, Hi, Lo, Resumable));
  EXPECT_EQ(Id, 7u);
  EXPECT_EQ(Hi, 0x1111222233334444ull);
  EXPECT_EQ(Lo, 0x5555666677778888ull);
  EXPECT_TRUE(Resumable);
  EXPECT_FALSE(
      parseJournalFileName("session-7.journal", Id, Hi, Lo, Resumable));
  EXPECT_FALSE(parseJournalFileName("trace.bin", Id, Hi, Lo, Resumable));
  EXPECT_FALSE(parseJournalFileName(Name + ".bak", Id, Hi, Lo, Resumable));
}

//===----------------------------------------------------------------------===//
// Client transport: spool, reconnect, resume
//===----------------------------------------------------------------------===//

TEST(SpoolingClientTest, RidesThroughSeededTornConnectionsLosslessly) {
  const std::string LogPath = tempPath("spool-torn.bin");
  const std::string SocketPath = tempPath("spool-torn.sock");
  const Trace T = racyTrace(2000);
  writeSegmented(T, LogPath, 16);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  ASSERT_GT(Bytes.size(), 40000u);
  const RaceReport Offline = detectOffline(T);

  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Triage.RatePerSec = 0;
  Config.AckEveryBytes = 2048; // frequent acks keep the spool small
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // Tear the first three connections at seeded byte offsets (relative to
  // each connection's own send stream); the fourth and later run clean.
  // Every reconnect resumes from the daemon's acked durable position.
  SpoolingSocketOutput::Options Opts;
  Opts.SocketPath = SocketPath;
  Opts.SpoolPath = tempPath("spool-torn.spool");
  Opts.RunIdHi = 0x1001;
  Opts.RunIdLo = 0x2002;
  Opts.BackoffInitialMs = 1;
  Opts.BackoffMaxMs = 5;
  FaultPlan Tear;
  Tear.FailAtByte = 10000;
  Opts.SendFaults.push_back(Tear);
  Tear.FailAtByte = 7777;
  Opts.SendFaults.push_back(Tear);
  Tear.FailAtByte = 3000;
  Opts.SendFaults.push_back(Tear);
  Opts.SendFaults.push_back(FaultPlan{}); // clean from here on
  SpoolingSocketOutput Out(std::move(Opts));
  size_t At = 0;
  while (At < Bytes.size()) {
    const size_t N = std::min<size_t>(1024, Bytes.size() - At);
    WriteResult R = Out.write(Bytes.data() + At, N);
    ASSERT_EQ(R.Written, N) << "the spooling transport always accepts";
    ASSERT_TRUE(Out.ok());
    At += N;
  }
  Out.close();
  EXPECT_GE(Out.reconnects(), 3u);
  EXPECT_GT(Out.spooledBytes(), 0u);
  EXPECT_GT(Out.replayedBytes(), 0u);
  EXPECT_EQ(Out.bytesLost(), 0u) << "no cap hit, so no loss";

  Server.waitForSessions(1);
  Server.stop();
  EXPECT_EQ(Server.sessionsCompleted(), 1u);
  const std::vector<SessionStatus> Sessions = Server.sessionStatuses();
  ASSERT_EQ(Sessions.size(), 1u);
  EXPECT_TRUE(Sessions[0].Clean)
      << "the delivered stream must be byte-identical, footer included";
  EXPECT_TRUE(Sessions[0].Resumable);
  EXPECT_EQ(Sessions[0].Bytes, Bytes.size());
  EXPECT_EQ(Sessions[0].SegmentsDropped, 0u);
  expectMatchesOffline(Server, Offline);
  std::remove(LogPath.c_str());
}

TEST(SpoolingClientTest, CapOverflowAccountsEveryShedByte) {
  // No daemon at all: every byte spools, and a tiny cap forces trims.
  SpoolingSocketOutput::Options Opts;
  Opts.SocketPath = tempPath("spool-cap-nowhere.sock");
  Opts.SpoolPath = tempPath("spool-cap.spool");
  Opts.SpoolCapBytes = 4096;
  Opts.BackoffInitialMs = 1;
  Opts.BackoffMaxMs = 2;
  Opts.DrainDeadlineMs = 10; // close() must not hang on a dead daemon
  Opts.RunIdHi = 1;
  Opts.RunIdLo = 2;
  const uint64_t Cap = Opts.SpoolCapBytes;
  SpoolingSocketOutput Out(std::move(Opts));

  uint8_t Buf[512];
  std::memset(Buf, 0x5A, sizeof(Buf));
  const uint64_t Total = 64 * sizeof(Buf);
  for (unsigned I = 0; I < 64; ++I) {
    WriteResult R = Out.write(Buf, sizeof(Buf));
    ASSERT_EQ(R.Written, sizeof(Buf)) << "cap pressure never fails write()";
    ASSERT_TRUE(Out.ok());
  }
  Out.close();
  EXPECT_GT(Out.capHits(), 0u);
  // Conservation: nothing was ever delivered, so the whole stream must
  // be admitted as loss — trims shed the retained extent each time they
  // fire, and the undrained remainder is counted at close.
  EXPECT_GE(Out.trimmedBytes(), Total - Cap - sizeof(Buf));
  EXPECT_EQ(Out.bytesLost(), Total);
  EXPECT_EQ(Out.reconnects(), 0u);
  EXPECT_EQ(Out.spoolErrors(), 0u);
}

TEST(SpoolingClientTest, ReconnectDuringBurstKeepsStreamOrdered) {
  const std::string LogPath = tempPath("spool-burst.bin");
  const std::string SocketPath = tempPath("spool-burst.sock");
  const Trace T = racyTrace(2000);
  writeSegmented(T, LogPath, 8);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);

  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Triage.RatePerSec = 0;
  Config.AckEveryBytes = 1024;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // Many small torn connections while the writer bursts the whole trace
  // in one call — reconnection happens under write pressure, not in a
  // quiet period between writes.
  SpoolingSocketOutput::Options Opts;
  Opts.SocketPath = SocketPath;
  Opts.SpoolPath = tempPath("spool-burst.spool");
  Opts.RunIdHi = 0xBEEF;
  Opts.RunIdLo = 0xF00D;
  Opts.BackoffInitialMs = 1;
  Opts.BackoffMaxMs = 3;
  for (uint64_t TearAt = 3000; TearAt <= 27000; TearAt += 3000) {
    FaultPlan Tear;
    Tear.FailAtByte = TearAt;
    Opts.SendFaults.push_back(Tear);
  }
  Opts.SendFaults.push_back(FaultPlan{});
  SpoolingSocketOutput Out(std::move(Opts));
  WriteResult R = Out.write(Bytes.data(), Bytes.size()); // one giant burst
  ASSERT_EQ(R.Written, Bytes.size());
  Out.close();
  EXPECT_EQ(Out.bytesLost(), 0u);
  EXPECT_GE(Out.reconnects(), 1u);

  Server.waitForSessions(1);
  Server.stop();
  const std::vector<SessionStatus> Sessions = Server.sessionStatuses();
  ASSERT_EQ(Sessions.size(), 1u);
  EXPECT_TRUE(Sessions[0].Clean);
  EXPECT_EQ(Sessions[0].Bytes, Bytes.size());
  EXPECT_EQ(Sessions[0].SegmentsDropped, 0u)
      << "an out-of-order or duplicated replay would corrupt frames";
  std::remove(LogPath.c_str());
}

//===----------------------------------------------------------------------===//
// Declared-gap accounting (spool-cap overflow reaching the daemon)
//===----------------------------------------------------------------------===//

TEST(GapAccountingTest, DeclaredGapFoldsExactlyIntoCoverageStats) {
  const std::string Path = tempPath("gap-exact.bin");
  const Trace T = racyTrace(200);
  writeSegmented(T, Path, 64);
  const std::vector<uint8_t> Bytes = readFileBytes(Path);
  const std::vector<SegmentInfo> Segs = scanSegments(Path);
  ASSERT_GT(Segs.size(), 6u);

  // Shed frames [2, 5) on a frame boundary: resyncing over the seam
  // would count nothing here (the resume point parses immediately), so
  // only the declared gap puts the shed bytes on the books.
  const uint64_t CutA = Segs[2].Offset;
  const uint64_t CutB = Segs[5].Offset;
  SegmentStreamDecoder D;
  D.feed(Bytes.data(), CutA);
  D.noteGap(CutB - CutA);
  D.feed(Bytes.data() + CutB, Bytes.size() - CutB);
  D.finish();
  EXPECT_EQ(D.stats().BytesDropped, CutB - CutA);
  EXPECT_EQ(D.stats().SegmentsDropped, 1u) << "one damage episode";
  EXPECT_TRUE(D.stats().CleanShutdown) << "the footer still arrived last";
  uint64_t Shed = 0;
  for (size_t I = 2; I != 5; ++I)
    Shed += Segs[I].EventCount;
  EXPECT_EQ(D.stats().EventsRecovered + Shed, T.totalEvents());

  // Mid-frame cut on both ends: the buffered partial frame and the
  // resync scan each account their residue, so the books still balance
  // to exactly the undelivered extent.
  SegmentStreamDecoder M;
  M.feed(Bytes.data(), CutA + 7);
  M.noteGap(CutB - CutA - 7 + 9); // hole [CutA + 7, CutB + 9)
  M.feed(Bytes.data() + CutB + 9, Bytes.size() - CutB - 9);
  M.finish();
  const uint64_t Frame5 = Segs[5].Offset;
  const uint64_t Frame6 = Segs[6].Offset;
  // Frame 5's torn remainder is scanned over; frames [2,5) plus the
  // partial head of frame 2 and torn frame 5 are all dropped.
  EXPECT_EQ(M.stats().BytesDropped, (CutB - CutA) + (Frame6 - Frame5));
  EXPECT_TRUE(M.stats().CleanShutdown);
  std::remove(Path.c_str());
}

TEST(GapAccountingTest, CapOverflowGapIsDeclaredToTheDaemonExactly) {
  const std::string LogPath = tempPath("gap-declared.bin");
  const std::string SocketPath = tempPath("gap-declared.sock");
  const Trace T = racyTrace(2000);
  writeSegmented(T, LogPath, 16);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  ASSERT_GT(Bytes.size(), 40000u);

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Triage.RatePerSec = 0;
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // The first connection tears at byte 1000; then the collector is
  // "unreachable" (the gated connector refuses) while writes overflow a
  // tiny spool cap; finally the gate opens and close() drains. The
  // resume handshake must declare the trimmed extent as a gap, and the
  // daemon must put every shed byte on the session's books.
  std::atomic<bool> Gate{false};
  std::atomic<unsigned> Attempts{0};
  SpoolingSocketOutput::Options Opts;
  Opts.SocketPath = SocketPath;
  Opts.SpoolPath = tempPath("gap-declared.spool");
  Opts.SpoolCapBytes = 4096;
  Opts.BackoffInitialMs = 1;
  Opts.BackoffMaxMs = 2;
  Opts.DrainDeadlineMs = 30000;
  Opts.RunIdHi = 0x6A50;
  Opts.RunIdLo = 0x0CA9;
  Opts.ConnectFd = [&]() -> int {
    if (Attempts.fetch_add(1) != 0 && !Gate.load())
      return -1;
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  };
  FaultPlan Tear;
  Tear.FailAtByte = 1000;
  Opts.SendFaults.push_back(Tear);
  Opts.SendFaults.push_back(FaultPlan{});
  SpoolingSocketOutput Out(std::move(Opts));
  size_t At = 0;
  while (At < Bytes.size()) {
    const size_t N = std::min<size_t>(512, Bytes.size() - At);
    WriteResult R = Out.write(Bytes.data() + At, N);
    ASSERT_EQ(R.Written, N);
    At += N;
  }
  EXPECT_GT(Out.capHits(), 0u) << "the cap must have fired while gated";
  Gate.store(true);
  Out.close();

  EXPECT_GE(Out.reconnects(), 1u);
  EXPECT_GT(Out.gapBytes(), 0u);
  EXPECT_LE(Out.gapBytes(), Out.trimmedBytes());
  EXPECT_EQ(Out.bytesLost(), Out.gapBytes())
      << "after the drain, all loss is realized gap, nothing undelivered";

  Server.waitForSessions(1);
  Server.stop();
  const std::vector<SessionStatus> Sessions = Server.sessionStatuses();
  ASSERT_EQ(Sessions.size(), 1u);
  const SessionStatus &S = Sessions[0];
  // Stream-position conservation: delivered bytes plus the declared hole
  // span the client's whole logical stream.
  EXPECT_EQ(S.Bytes + Out.gapBytes(), Bytes.size());
  EXPECT_EQ(S.LogicalPos, Bytes.size());
  EXPECT_GE(S.BytesDropped, Out.gapBytes())
      << "the hole plus seam residue must be on the session's books";
  EXPECT_GT(S.SegmentsDropped, 0u);
  const telemetry::MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Snap.counter("collector.ingest.gap_bytes"), Out.gapBytes());
  std::remove(LogPath.c_str());
}

//===----------------------------------------------------------------------===//
// Daemon crash recovery
//===----------------------------------------------------------------------===//

TEST(DaemonRecoveryTest, KillAtSeededOffsetsThenRestartMatchesBatch) {
  const std::string LogPath = tempPath("recovery-kill.bin");
  const Trace T = racyTrace(3000);
  writeSegmented(T, LogPath, 16);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  const RaceReport Offline = detectOffline(T);
  ASSERT_GT(Bytes.size(), 60000u);

  // Seeded kill offsets across the stream: early (little detected yet),
  // middle, late (most already journaled and detected).
  const uint64_t KillAt[] = {2000, Bytes.size() / 3, Bytes.size() - 20000};
  int Round = 0;
  for (const uint64_t Offset : KillAt) {
    SCOPED_TRACE("kill at byte " + std::to_string(Offset));
    const std::string SocketPath =
        tempPath(("recovery-kill" + std::to_string(Round) + ".sock").c_str());
    const std::string SpoolDir =
        tempSpoolDir("recovery-spool" + std::to_string(Round));
    SpoolArtifactGuard Guard(SpoolDir);
    ++Round;

    // Life 1: crash once ingestion passes the offset. The client only
    // sends up to just past the offset before the crash, and holds the
    // tail (footer included) until the second life is up — so the kill
    // deterministically lands mid-session, as in a real deployment where
    // the client outlives the daemon.
    CollectorConfig Config1;
    Config1.IngestSocketPath = SocketPath;
    Config1.SpoolDir = SpoolDir;
    Config1.Triage.RatePerSec = 0;
    Config1.AckEveryBytes = 2048;
    Config1.CheckpointEveryUpdates = 8;
    auto Server1 = std::make_unique<CollectorServer>(std::move(Config1));
    std::string Error;
    ASSERT_TRUE(Server1->start(&Error)) << Error;

    std::atomic<bool> Restarted{false};
    const size_t CutAt = std::min<size_t>(
        static_cast<size_t>(Offset) + 8192, Bytes.size() - 64);
    uint64_t ClientLost = ~0ull;
    uint64_t ClientReconnects = 0;
    std::thread Client([&] {
      SpoolingSocketOutput::Options Opts;
      Opts.SocketPath = SocketPath;
      Opts.SpoolPath = SocketPath + ".spool";
      Opts.RunIdHi = 0xAAAA;
      Opts.RunIdLo = 0x1000u + static_cast<uint64_t>(Offset);
      Opts.BackoffInitialMs = 2;
      Opts.BackoffMaxMs = 20;
      Opts.DrainDeadlineMs = 30000;
      SpoolingSocketOutput Out(std::move(Opts));
      auto Send = [&](size_t From, size_t To) {
        while (From < To) {
          const size_t N = std::min<size_t>(512, To - From);
          Out.write(Bytes.data() + From, N);
          From += N;
        }
      };
      Send(0, CutAt);
      while (!Restarted.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Send(CutAt, Bytes.size());
      Out.close(); // keeps reconnecting until the second life drains it
      ClientLost = Out.bytesLost();
      ClientReconnects = Out.reconnects();
    });

    while (Server1->bytesIngested() < Offset)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Server1->crashForTest(); // SIGKILL semantics: no settling, no unlinks
    Server1.reset();

    // Life 2: recover the spool, let the client resume and finish.
    CollectorConfig Config2;
    Config2.IngestSocketPath = SocketPath;
    Config2.SpoolDir = SpoolDir;
    Config2.Triage.RatePerSec = 0;
    Config2.AckEveryBytes = 2048;
    CollectorServer Server2(std::move(Config2));
    ASSERT_TRUE(Server2.start(&Error)) << Error;
    Restarted.store(true);
    Client.join();
    EXPECT_EQ(ClientLost, 0u);
    EXPECT_GE(ClientReconnects, 1u);
    Server2.waitForSessions(1);
    Server2.stop();

    // The recovered-and-resumed live set must equal the uninterrupted
    // batch run over the same bytes — same races, same counts.
    expectMatchesOffline(Server2, Offline);
    const std::vector<SessionStatus> Sessions = Server2.sessionStatuses();
    ASSERT_EQ(Sessions.size(), 1u);
    EXPECT_TRUE(Sessions[0].Clean);
    EXPECT_TRUE(Sessions[0].Recovered);
    EXPECT_TRUE(Sessions[0].Resumable);
    EXPECT_EQ(Sessions[0].LogicalPos, Bytes.size())
        << "resume must account every stream byte exactly once";
    EXPECT_GT(Server2.checkpointsWritten(), 0u);
  }
  std::remove(LogPath.c_str());
}

TEST(DaemonRecoveryTest, CleanRestartCarriesTriageTotalsForward) {
  const std::string LogPath = tempPath("recovery-carry.bin");
  const std::string SocketPath = tempPath("recovery-carry.sock");
  const std::string SpoolDir = tempSpoolDir("recovery-carry-spool");
  SpoolArtifactGuard Guard(SpoolDir);
  const Trace T = racyTrace(300);
  writeSegmented(T, LogPath, 32);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  const RaceReport Offline = detectOffline(T);

  // Life 1: one complete legacy (fire-and-forget) session, graceful
  // shutdown. The final checkpoint is the hand-off.
  uint64_t FirstSightings = 0;
  {
    CollectorConfig Config;
    Config.IngestSocketPath = SocketPath;
    Config.SpoolDir = SpoolDir;
    Config.Triage.RatePerSec = 0;
    CollectorServer Server(std::move(Config));
    std::string Error;
    ASSERT_TRUE(Server.start(&Error)) << Error;
    SocketByteOutput Out(SocketPath);
    ASSERT_TRUE(Out.ok());
    ASSERT_EQ(Out.write(Bytes.data(), Bytes.size()).Written, Bytes.size());
    Out.close();
    Server.waitForSessions(1);
    Server.stop();
    FirstSightings = Server.triage().totalSightings();
    EXPECT_GT(FirstSightings, 0u);
    EXPECT_GT(Server.checkpointsWritten(), 0u);
  }

  // Life 2: the totals and the race table survive the restart, and a
  // second session doubles the counts on the recovered base.
  {
    CollectorConfig Config;
    Config.IngestSocketPath = SocketPath;
    Config.SpoolDir = SpoolDir;
    Config.Triage.RatePerSec = 0;
    CollectorServer Server(std::move(Config));
    std::string Error;
    ASSERT_TRUE(Server.start(&Error)) << Error;
    EXPECT_EQ(Server.triage().totalSightings(), FirstSightings)
        << "restored from the checkpoint before accepting clients";
    SocketByteOutput Out(SocketPath);
    ASSERT_TRUE(Out.ok());
    ASSERT_EQ(Out.write(Bytes.data(), Bytes.size()).Written, Bytes.size());
    Out.close();
    Server.waitForSessions(1);
    Server.stop();
    EXPECT_EQ(Server.triage().totalSightings(), 2 * FirstSightings);
    const std::vector<TriagedRace> Live = Server.triage().races();
    const std::vector<StaticRace> Expected = Offline.staticRaces();
    ASSERT_EQ(Live.size(), Expected.size());
    for (size_t I = 0; I < Expected.size(); ++I)
      EXPECT_EQ(Live[I].DynamicCount, 2 * Expected[I].DynamicCount);
  }
  std::remove(LogPath.c_str());
}

//===----------------------------------------------------------------------===//
// Overload spill
//===----------------------------------------------------------------------===//

TEST(OverloadSpillTest, ForcedSpillReplaysTheJournalExactly) {
  const std::string LogPath = tempPath("spill-force.bin");
  const std::string SocketPath = tempPath("spill-force.sock");
  const std::string SpoolDir = tempSpoolDir("spill-force-spool");
  SpoolArtifactGuard Guard(SpoolDir);
  const Trace T = racyTrace(1000);
  writeSegmented(T, LogPath, 16);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  const RaceReport Offline = detectOffline(T);

  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.SpoolDir = SpoolDir;
  Config.Triage.RatePerSec = 0;
  Config.TestForceSpill = true; // every chunk defers to the journal
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  SocketByteOutput Out(SocketPath);
  ASSERT_TRUE(Out.ok());
  size_t At = 0;
  while (At < Bytes.size()) {
    const size_t N = std::min<size_t>(4096, Bytes.size() - At);
    WriteResult R = Out.write(Bytes.data() + At, N);
    ASSERT_EQ(R.Written, N);
    At += N;
  }
  // While the session is live and spilling, the daemon must say so.
  bool SawDegraded = false;
  for (int I = 0; I < 2000 && !SawDegraded; ++I) {
    SawDegraded = Server.degraded();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(SawDegraded) << "a spilling session must surface as degraded";
  Out.close();
  Server.waitForSessions(1);
  Server.stop();

  // Detection ran entirely from the journal replay at session end; the
  // result must still be exact.
  expectMatchesOffline(Server, Offline);
  const std::vector<SessionStatus> Sessions = Server.sessionStatuses();
  ASSERT_EQ(Sessions.size(), 1u);
  EXPECT_TRUE(Sessions[0].Clean);
  EXPECT_TRUE(Sessions[0].Spilling);
  EXPECT_GT(Sessions[0].SpilledEvents, 0u);
  EXPECT_FALSE(Server.degraded()) << "spill clears once sessions settle";
  std::remove(LogPath.c_str());
}

//===----------------------------------------------------------------------===//
// HTTP deadline
//===----------------------------------------------------------------------===//

TEST(HttpDeadlineTest, StalledScraperIsCutOffAndServiceContinues) {
  const std::string SocketPath = tempPath("http-deadline.sock");
  const std::string HttpPath = tempPath("http-deadline-http.sock");
  std::remove(HttpPath.c_str());
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.HttpIoTimeoutMs = 150;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ASSERT_TRUE(Server.serveHttpUnix(HttpPath, &Error)) << Error;

  // A connection that sends nothing: the server must hang up on its own.
  int Stall = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Stall, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                HttpPath.c_str());
  ASSERT_EQ(
      ::connect(Stall, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
      0);
  uint8_t Byte;
  const ssize_t N = ::recv(Stall, &Byte, 1, 0); // blocks until the cutoff
  EXPECT_EQ(N, 0) << "expected EOF from the server's deadline";
  ::close(Stall);

  // The serving thread survived: a well-behaved request still works and
  // the cutoff is visible in the status document.
  int Good = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Good, 0);
  ASSERT_EQ(
      ::connect(Good, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
      0);
  const char Req[] = "GET /status HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(sendAllDeadline(Good, Req, sizeof(Req) - 1, 2000));
  std::string Response;
  char Buf[1024];
  ssize_t Got;
  while ((Got = ::recv(Good, Buf, sizeof(Buf), 0)) > 0)
    Response.append(Buf, static_cast<size_t>(Got));
  ::close(Good);
  EXPECT_NE(Response.find("200 OK"), std::string::npos) << Response;
  EXPECT_NE(Response.find("literace.status.v1"), std::string::npos)
      << Response;
  EXPECT_NE(Response.find("\"io_timeouts\": 1"), std::string::npos)
      << "the cutoff must be accounted: " << Response;
  Server.stop();
}

} // namespace
