//===-- tests/SyncSemanticsTest.cpp - HB semantics edge matrix -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Edge cases of the happens-before semantics that the workload and
// scenario tests do not isolate: barrier generation independence,
// semaphore permit chains, notify-before-wait orderings drawn from real
// primitive executions (not hand-built logs), and the §4.2 timestamp
// placements under contention.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "sync/Primitives.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

class SyncSemanticsTest : public ::testing::Test {
protected:
  SyncSemanticsTest() : Sink(64) {
    RuntimeConfig Config;
    Config.Mode = RunMode::FullLogging;
    Config.TimestampCounters = 64;
    RT = std::make_unique<Runtime>(Config, &Sink);
    F = RT->registry().registerFunction("body");
  }

  RaceReport detect() {
    RaceReport Report;
    EXPECT_TRUE(detectRaces(Sink.takeTrace(), Report));
    return Report;
  }

  MemorySink Sink;
  std::unique_ptr<Runtime> RT;
  FunctionId F = 0;
};

// A racing pair on either side of a barrier is still a race: the barrier
// orders ACROSS generations, not accesses within one phase.
TEST_F(SyncSemanticsTest, BarrierDoesNotOrderWithinAPhase) {
  Barrier Phase(2);
  uint64_t Cell = 0;
  {
    ThreadContext Main(*RT);
    Thread A(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Cell, uint64_t{1}, 10); });
      Phase.arriveAndWait(TC);
    });
    Thread B(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Cell, uint64_t{2}, 20); });
      Phase.arriveAndWait(TC);
    });
    A.join(Main);
    B.join(Main);
  }
  RaceReport R = detect();
  EXPECT_TRUE(R.contains(makePc(F, 10), makePc(F, 20)));
}

// Per-generation barrier variables: generation g+1's releases must not
// leak backwards into generation g's acquires (the bug class fixed by
// Barrier::generationVar — a late-waking thread used to absorb the next
// generation's knowledge and hide races).
TEST_F(SyncSemanticsTest, BarrierGenerationsAreIndependentVars) {
  Barrier Phase(2);
  ASSERT_NE(Phase.generationVar(0), Phase.generationVar(1));
  ASSERT_NE(Phase.generationVar(1), Phase.generationVar(2));
}

TEST_F(SyncSemanticsTest, SemaphorePermitChainPublishesInOrder) {
  // Producer releases N permits, each after writing one cell; consumer
  // acquires N times and reads all cells: every read is ordered.
  Semaphore Items(0);
  uint64_t Cells[8] = {};
  {
    ThreadContext Main(*RT);
    Thread Producer(*RT, Main, [&](ThreadContext &TC) {
      for (unsigned I = 0; I != 8; ++I) {
        TC.run(F, [&](auto &T) { T.store(&Cells[I], uint64_t{I + 1}, 1); });
        Items.release(TC);
      }
    });
    Thread Consumer(*RT, Main, [&](ThreadContext &TC) {
      for (unsigned I = 0; I != 8; ++I) {
        Items.acquire(TC);
        TC.run(F, [&](auto &T) {
          // Conservatively ordered: the I-th acquire sees at least the
          // first I+1 releases' knowledge.
          EXPECT_GE(T.load(&Cells[I], 2), 1u);
        });
      }
    });
    Producer.join(Main);
    Consumer.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncSemanticsTest, EventSetBeforeAnyWaiterStillOrders) {
  ManualResetEvent Ready;
  uint64_t Cell = 0;
  {
    ThreadContext Main(*RT);
    Main.run(F, [&](auto &T) { T.store(&Cell, uint64_t{1}, 1); });
    Ready.set(Main); // Set long before the waiter exists.
    Thread Waiter(*RT, Main, [&](ThreadContext &TC) {
      Ready.wait(TC);
      TC.run(F, [&](auto &T) { EXPECT_EQ(T.load(&Cell, 2), 1u); });
    });
    Waiter.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncSemanticsTest, MultipleNotifiersAllPublish) {
  ManualResetEvent Ready;
  uint64_t CellA = 0, CellB = 0;
  Semaphore BothSet(0);
  {
    ThreadContext Main(*RT);
    Thread A(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&CellA, uint64_t{1}, 1); });
      Ready.set(TC);
      BothSet.release(TC);
    });
    Thread B(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&CellB, uint64_t{2}, 2); });
      Ready.set(TC);
      BothSet.release(TC);
    });
    Thread Waiter(*RT, Main, [&](ThreadContext &TC) {
      // Wait until both notifiers really signalled, then wait on the
      // event: the waiter's acquire joins BOTH releases.
      BothSet.acquire(TC);
      BothSet.acquire(TC);
      Ready.wait(TC);
      TC.run(F, [&](auto &T) {
        EXPECT_EQ(T.load(&CellA, 3), 1u);
        EXPECT_EQ(T.load(&CellB, 4), 2u);
      });
    });
    A.join(Main);
    B.join(Main);
    Waiter.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

// §4.2 contention check: two threads hammering one atomic produce a
// strictly serialized timestamp chain, and data published "through" the
// atomic is never falsely reported. Each thread writes its own cell many
// times, announces completion with one fetchAdd, spins until it observes
// both announcements (every load is an acquire on the same chain), then
// reads the other thread's cell — ordered, on every schedule, purely
// through the atomic's timestamp chain.
TEST_F(SyncSemanticsTest, ContendedAtomicTimestampsStaySerialized) {
  AtomicU64 Turnstile(0);
  uint64_t Cells[2] = {};
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != 2; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&, I](ThreadContext &TC) {
            for (unsigned K = 0; K != 500; ++K)
              TC.run(F, [&](auto &T) {
                T.store(&Cells[I], uint64_t{K}, 1 + I);
              });
            Turnstile.fetchAdd(TC, 1); // Publish everything above.
            while (Turnstile.load(TC) < 2)
              std::this_thread::yield();
            TC.run(F, [&](auto &T) {
              EXPECT_EQ(T.load(&Cells[1 - I], 10 + I), 499u);
            });
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  // Fails if §4.2 timestamping ever lets a fetchAdd/load log out of
  // execution order.
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

// LogBuilder-level check of the same §4.2 placement rule the runtime
// enforces: an unlock logged before a lock of another thread must order
// intervening accesses, regardless of which thread the replay visits
// first.
TEST(SyncSemanticsLogTest, ReplayOrderIndependence) {
  for (bool SwapThreads : {false, true}) {
    LogBuilder B(16);
    SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x77);
    uint64_t X = 0x4242;
    if (!SwapThreads) {
      B.onThread(0).lock(M).write(X, 1).unlock(M);
      B.onThread(1).lock(M).write(X, 2).unlock(M);
    } else {
      // Same HB structure, but thread ids swapped so the scheduler's
      // round-robin visits them in the other order.
      B.onThread(1).lock(M).write(X, 1).unlock(M);
      B.onThread(0).lock(M).write(X, 2).unlock(M);
    }
    RaceReport Report;
    EXPECT_TRUE(detectRaces(B.build(), Report));
    EXPECT_EQ(Report.numStaticRaces(), 0u);
  }
}

} // namespace
