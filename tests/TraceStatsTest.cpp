//===-- tests/TraceStatsTest.cpp - Trace statistics -------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TraceStats.h"

#include "detector/LogBuilder.h"
#include "harness/DetectionExperiment.h"
#include "runtime/FunctionRegistry.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

TEST(TraceStatsTest, CountsByKind) {
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x100);
  SyncVar Page = makeSyncVar(SyncObjectKind::Page, 7);
  B.onThread(0)
      .threadStart()
      .write(0x10, makePc(1, 1))
      .read(0x10, makePc(1, 2))
      .read(0x18, makePc(2, 3))
      .acquire(M)
      .release(M)
      .alloc(Page)
      .free(Page)
      .threadEnd();
  B.onThread(1).write(0x20, makePc(1, 4));

  TraceStats Stats = TraceStats::compute(B.build());
  EXPECT_EQ(Stats.TotalEvents, 10u);
  EXPECT_EQ(Stats.Reads, 2u);
  EXPECT_EQ(Stats.Writes, 2u);
  EXPECT_EQ(Stats.SyncOps, 4u); // acquire, release, alloc, free
  EXPECT_EQ(Stats.Allocations, 1u);
  EXPECT_EQ(Stats.Frees, 1u);
  EXPECT_EQ(Stats.NumThreads, 2u);
  EXPECT_EQ(Stats.DistinctAddresses, 3u);
  EXPECT_EQ(Stats.DistinctSyncVars, 2u);
  ASSERT_EQ(Stats.EventsPerThread.size(), 2u);
  EXPECT_EQ(Stats.EventsPerThread[0], 9u);
  EXPECT_EQ(Stats.EventsPerThread[1], 1u);
}

TEST(TraceStatsTest, PerFunctionCountsAndHotness) {
  LogBuilder B(16);
  B.onThread(0);
  for (int I = 0; I != 10; ++I)
    B.write(0x100 + I, makePc(7, 1));
  for (int I = 0; I != 3; ++I)
    B.read(0x200 + I, makePc(3, 2));
  TraceStats Stats = TraceStats::compute(B.build());
  EXPECT_EQ(Stats.MemOpsPerFunction.at(7), 10u);
  EXPECT_EQ(Stats.MemOpsPerFunction.at(3), 3u);
  auto Hot = Stats.hottestFunctions();
  ASSERT_EQ(Hot.size(), 2u);
  EXPECT_EQ(Hot[0].first, 7u);
  EXPECT_EQ(Hot[1].first, 3u);
}

TEST(TraceStatsTest, SlotCoverageFromMasks) {
  LogBuilder B(16);
  B.onThread(0)
      .write(0x10, 1, FullLogMaskBit | 0x1)
      .write(0x18, 2, FullLogMaskBit | 0x3)
      .write(0x20, 3, FullLogMaskBit);
  TraceStats Stats = TraceStats::compute(B.build());
  EXPECT_EQ(Stats.MemOpsPerSlot[0], 2u);
  EXPECT_EQ(Stats.MemOpsPerSlot[1], 1u);
  EXPECT_EQ(Stats.MemOpsPerSlot[2], 0u);
}

TEST(TraceStatsTest, DescribeRendersNames) {
  FunctionRegistry Registry;
  FunctionId F = Registry.registerFunction("hot.path");
  LogBuilder B(16);
  B.onThread(0).write(0x10, makePc(F, 1));
  TraceStats Stats = TraceStats::compute(B.build());
  std::string Text = Stats.describe(&Registry);
  EXPECT_NE(Text.find("hot.path"), std::string::npos);
  EXPECT_NE(Text.find("1 writes"), std::string::npos);
}

// Golden output (mirrors the RaceReport golden test from PR 2): the full
// describe() rendering of a small fixed trace, including the slot-coverage
// percentages. Deliberately brittle — update it when the format changes on
// purpose, and let it catch accidental drift otherwise.
TEST(TraceStatsTest, DescribeGoldenOutput) {
  LogBuilder B(16);
  B.onThread(0)
      .write(0x10, makePc(1, 1), FullLogMaskBit | 0x1)
      .write(0x18, makePc(1, 2), FullLogMaskBit | 0x1)
      .read(0x10, makePc(2, 3), FullLogMaskBit | 0x3)
      .write(0x20, makePc(2, 4), FullLogMaskBit);
  TraceStats Stats = TraceStats::compute(B.build());
  const char *Golden =
      "events: 4 (1 reads, 3 writes, 0 sync, 0 alloc, 0 free)\n"
      "threads: 1; distinct addresses: 3; distinct sync vars: 0\n"
      "hottest functions by memory ops:\n"
      "  fn1                                     2  (50.0%)\n"
      "  fn2                                     2  (50.0%)\n"
      "sampler mask coverage:\n"
      "  any slot           3  (75.00%)\n"
      "  slot 0             3  (75.00%)\n"
      "  slot 1             1  (25.00%)\n";
  EXPECT_EQ(Stats.describe(), Golden);
}

TEST(TraceStatsTest, MatchesRuntimeStatsOnAWorkload) {
  auto W = makeWorkload(WorkloadKind::ConcRTMessaging);
  WorkloadParams Params;
  Params.Scale = 0.05;
  ExperimentRun Run = executeExperiment(*W, Params);
  TraceStats Stats = TraceStats::compute(Run.TraceData);
  EXPECT_EQ(Stats.Reads + Stats.Writes, Run.Stats.MemOpsLogged);
  EXPECT_EQ(Stats.SyncOps, Run.Stats.SyncOps);
  for (unsigned Slot = 0; Slot != 7; ++Slot)
    EXPECT_EQ(Stats.MemOpsPerSlot[Slot], Run.Stats.MemOpsPerSlot[Slot]);
  // The hottest function should account for a meaningful share.
  auto Hot = Stats.hottestFunctions();
  ASSERT_FALSE(Hot.empty());
  EXPECT_GT(Hot[0].second, 0u);
}

TEST(TraceStatsTest, EmptyTrace) {
  Trace T;
  TraceStats Stats = TraceStats::compute(T);
  EXPECT_EQ(Stats.TotalEvents, 0u);
  EXPECT_EQ(Stats.NumThreads, 0u);
  EXPECT_TRUE(Stats.hottestFunctions().empty());
  EXPECT_FALSE(Stats.describe().empty());
}

} // namespace
