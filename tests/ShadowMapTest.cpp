//===-- tests/ShadowMapTest.cpp - Flat shadow memory -----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests of ShadowMap (the flat two-level shadow-memory
/// table, docs/DETECTOR.md) against std::unordered_map as the reference
/// model, over the address distributions detectors actually see: dense
/// page-local clusters, sparse wide spreads, and adversarial patterns
/// (cache-line-aligned strides, high-bit-only entropy) chosen to stress
/// the directory hash.
///
//===----------------------------------------------------------------------===//

#include "support/ShadowMap.h"

#include "support/SplitMix64.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

using namespace literace;

namespace {

TEST(ShadowMapTest, EmptyMap) {
  ShadowMap<int> Map;
  EXPECT_EQ(Map.size(), 0u);
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.pageCount(), 0u);
  EXPECT_EQ(Map.find(0), nullptr);
  EXPECT_EQ(Map.find(~uint64_t(0)), nullptr);
  bool Visited = false;
  Map.forEach([&](uint64_t, const int &) { Visited = true; });
  EXPECT_FALSE(Visited);
}

TEST(ShadowMapTest, RefDefaultConstructsAndPersists) {
  ShadowMap<int> Map;
  int &Slot = Map.ref(0x1234);
  EXPECT_EQ(Slot, 0); // Value-initialized on first touch.
  Slot = 42;
  EXPECT_EQ(Map.size(), 1u);
  ASSERT_NE(Map.find(0x1234), nullptr);
  EXPECT_EQ(*Map.find(0x1234), 42);
  // ref() again returns the same slot, not a fresh one.
  EXPECT_EQ(&Map.ref(0x1234), &Slot);
}

TEST(ShadowMapTest, DistinguishesDefaultValueFromAbsent) {
  // The presence bitmap — not a sentinel value of T — decides
  // membership: an explicitly stored zero is present, its neighbors in
  // the same page are not.
  ShadowMap<int> Map;
  Map.ref(100) = 0;
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_NE(Map.find(100), nullptr);
  EXPECT_EQ(Map.find(101), nullptr); // Same page, never touched.
  EXPECT_EQ(Map.find(99), nullptr);
}

TEST(ShadowMapTest, AddressZeroAndMaxAddress) {
  ShadowMap<int> Map;
  Map.ref(0) = 7;
  Map.ref(~uint64_t(0)) = 9;
  EXPECT_EQ(Map.size(), 2u);
  ASSERT_NE(Map.find(0), nullptr);
  EXPECT_EQ(*Map.find(0), 7);
  ASSERT_NE(Map.find(~uint64_t(0)), nullptr);
  EXPECT_EQ(*Map.find(~uint64_t(0)), 9);
}

TEST(ShadowMapTest, ReferencesStableAcrossGrowth) {
  // Pages never move: a slot reference taken early must survive enough
  // insertions to force several directory rehashes.
  ShadowMap<uint64_t> Map;
  uint64_t &First = Map.ref(0x42);
  First = 0xabcd;
  for (uint64_t I = 0; I != 1000; ++I)
    Map.ref(I << 20) = I; // One page each: forces directory growth.
  EXPECT_EQ(First, 0xabcdu);
  EXPECT_EQ(&Map.ref(0x42), &First);
}

TEST(ShadowMapTest, ForEachAscendingAddressOrder) {
  ShadowMap<int> Map;
  // Insert out of order, across pages, including page-interior slots.
  const uint64_t Addrs[] = {0x5000, 0x10, 0x5001, 0xffff0000, 0x11, 0x200};
  for (uint64_t A : Addrs)
    Map.ref(A) = static_cast<int>(A & 0xff);
  std::vector<uint64_t> Seen;
  Map.forEach([&](uint64_t Addr, const int &) { Seen.push_back(Addr); });
  ASSERT_EQ(Seen.size(), 6u);
  for (size_t I = 1; I != Seen.size(); ++I)
    EXPECT_LT(Seen[I - 1], Seen[I]);
}

TEST(ShadowMapTest, ClearDropsEverythingAndRepopulates) {
  ShadowMap<int> Map;
  for (uint64_t I = 0; I != 64; ++I)
    Map.ref(I * 0x1000) = 1;
  ASSERT_GT(Map.pageCount(), 0u);
  Map.clear();
  EXPECT_EQ(Map.size(), 0u);
  EXPECT_EQ(Map.pageCount(), 0u);
  EXPECT_EQ(Map.find(0), nullptr);
  // A cleared map must be fully usable again.
  Map.ref(0x1000) = 5;
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_EQ(*Map.find(0x1000), 5);
}

/// Address generators for the three distributions named in the issue.
/// Each returns a deterministic pseudo-random address stream.
enum class Distribution { Clustered, Sparse, AdversarialHighBits };

uint64_t drawAddress(Distribution D, SplitMix64 &Rng) {
  switch (D) {
  case Distribution::Clustered:
    // A few hot pages with dense interiors — the detector common case.
    return (Rng.nextBelow(4) << 16) | Rng.nextBelow(2048);
  case Distribution::Sparse:
    // Anywhere in the full 64-bit space.
    return Rng.next();
  case Distribution::AdversarialHighBits:
    // Cache-line-aligned stride with entropy only in the high bits:
    // identity-hash directories would collapse these to a handful of
    // probe chains.
    return (Rng.nextBelow(1u << 20) << 38) | (Rng.nextBelow(256) * 64);
  }
  return 0;
}

class ShadowMapDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Distribution, uint64_t>> {};

TEST_P(ShadowMapDifferentialTest, MatchesUnorderedMap) {
  auto [Dist, Seed] = GetParam();
  SplitMix64 Rng(Seed);
  ShadowMap<uint64_t> Map;
  std::unordered_map<uint64_t, uint64_t> Model;

  for (int Op = 0; Op != 20000; ++Op) {
    const uint64_t Addr = drawAddress(Dist, Rng);
    switch (Rng.nextBelow(4)) {
    case 0:
    case 1: { // Insert/update through ref(), like the detector hot path.
      const uint64_t Value = Rng.next();
      Map.ref(Addr) = Value;
      Model[Addr] = Value;
      break;
    }
    case 2: { // Lookup, hit or miss.
      const uint64_t *Found = Map.find(Addr);
      auto It = Model.find(Addr);
      if (It == Model.end()) {
        EXPECT_EQ(Found, nullptr) << "phantom at " << Addr;
      } else {
        ASSERT_NE(Found, nullptr) << "lost " << Addr;
        EXPECT_EQ(*Found, It->second);
      }
      break;
    }
    case 3: { // Mutate through find().
      uint64_t *Found = Map.find(Addr);
      auto It = Model.find(Addr);
      ASSERT_EQ(Found != nullptr, It != Model.end());
      if (Found) {
        *Found += 1;
        It->second += 1;
      }
      break;
    }
    }
  }

  // Full-content sweep: same size, same key set, same values, ascending
  // iteration order.
  EXPECT_EQ(Map.size(), Model.size());
  std::map<uint64_t, uint64_t> Ordered(Model.begin(), Model.end());
  auto Expected = Ordered.begin();
  Map.forEach([&](uint64_t Addr, const uint64_t &Value) {
    ASSERT_NE(Expected, Ordered.end());
    EXPECT_EQ(Addr, Expected->first);
    EXPECT_EQ(Value, Expected->second);
    ++Expected;
  });
  EXPECT_EQ(Expected, Ordered.end());

  // clear() then replay a prefix: the map must not remember ghosts.
  Map.clear();
  EXPECT_EQ(Map.size(), 0u);
  for (const auto &[Addr, Value] : Ordered)
    EXPECT_EQ(Map.find(Addr), nullptr);
}

std::string distributionName(
    const ::testing::TestParamInfo<std::tuple<Distribution, uint64_t>>
        &Info) {
  static const char *const Name[] = {"Clustered", "Sparse",
                                     "AdversarialHighBits"};
  return std::string(Name[static_cast<int>(std::get<0>(Info.param))]) +
         "_seed" + std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, ShadowMapDifferentialTest,
    ::testing::Combine(::testing::Values(Distribution::Clustered,
                                         Distribution::Sparse,
                                         Distribution::AdversarialHighBits),
                       ::testing::Values(1, 17, 4242)),
    distributionName);

} // namespace
