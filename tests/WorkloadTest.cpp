//===-- tests/WorkloadTest.cpp - Benchmark workload ground truth -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Every workload carries a manifest of intentionally seeded races. These
// tests assert, per workload:
//   1. the produced log replays consistently,
//   2. every seeded race family is detected on the full log (no false
//      negatives at full logging),
//   3. every detected race lies inside some seeded family (no false
//      positives — the properly synchronized machinery stays silent),
//   4. the micro-benchmarks, which seed nothing, are completely silent.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "analysis/AccessModel.h"
#include "detector/HBDetector.h"
#include "harness/DetectionExperiment.h"
#include "workloads/LFList.h"
#include "workloads/LKRHash.h"

#include <gtest/gtest.h>
#include <set>

using namespace literace;

namespace {

struct WorkloadCase {
  WorkloadKind Kind;
  const char *Name;
  size_t MinSeededFamilies;
};

class WorkloadGroundTruthTest
    : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadGroundTruthTest, SeededRacesExactlyDetected) {
  const WorkloadCase &Case = GetParam();
  auto W = makeWorkload(Case.Kind);
  EXPECT_EQ(W->name(), Case.Name);

  WorkloadParams Params;
  Params.Scale = 0.1;
  ExperimentRun Run = executeExperiment(*W, Params);

  RaceReport Full;
  ASSERT_TRUE(detectRaces(Run.TraceData, Full)) << "inconsistent log";

  auto Manifest = W->seededRaces();
  EXPECT_GE(Manifest.size(), Case.MinSeededFamilies);
  auto [Detected, AllWithin] = validateAgainstManifest(Full, Manifest);
  EXPECT_EQ(Detected, Manifest.size())
      << "some seeded race was not found on the FULL log:\n"
      << Full.describe();
  EXPECT_TRUE(AllWithin)
      << "the detector reported a race outside every seeded family — a "
         "false positive in the properly synchronized machinery:\n"
      << Full.describe();
}

TEST_P(WorkloadGroundTruthTest, SampledViewsAreSubsetsOfFull) {
  const WorkloadCase &Case = GetParam();
  auto W = makeWorkload(Case.Kind);
  WorkloadParams Params;
  Params.Scale = 0.05;
  ExperimentRun Run = executeExperiment(*W, Params);

  RaceReport Full;
  ASSERT_TRUE(detectRaces(Run.TraceData, Full));
  for (int Slot = 0; Slot != 7; ++Slot) {
    RaceReport Sampled;
    ReplayOptions Options;
    Options.SamplerSlot = Slot;
    ASSERT_TRUE(detectRaces(Run.TraceData, Sampled, Options));
    // Witness pairs may differ between views (unsampled events cannot
    // evict shadow entries), but racy addresses never appear out of
    // thin air.
    for (uint64_t Addr : Sampled.racyAddresses())
      EXPECT_TRUE(Full.racyAddresses().count(Addr))
          << "sampler slot " << Slot << " fabricated a racy address";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadGroundTruthTest,
    ::testing::Values(
        WorkloadCase{WorkloadKind::ChannelWithStdLib,
                     "Dryad Channel + stdlib", 19},
        WorkloadCase{WorkloadKind::Channel, "Dryad Channel", 8},
        WorkloadCase{WorkloadKind::ConcRTMessaging, "ConcRT Messaging", 6},
        WorkloadCase{WorkloadKind::ConcRTScheduling,
                     "ConcRT Explicit Scheduling", 10},
        WorkloadCase{WorkloadKind::Httpd1, "Apache-1", 12},
        WorkloadCase{WorkloadKind::Httpd2, "Apache-2", 12},
        WorkloadCase{WorkloadKind::BrowserStart, "Firefox Start", 11},
        WorkloadCase{WorkloadKind::BrowserRender, "Firefox Render", 7},
        WorkloadCase{WorkloadKind::SciComputeFn,
                     "SciCompute (function granularity)", 2},
        WorkloadCase{WorkloadKind::SciComputeLoop,
                     "SciCompute (loop hints)", 2}),
    [](const ::testing::TestParamInfo<WorkloadCase> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

/// Micro-benchmarks are properly synchronized end to end: the detector
/// must be completely silent on them (our hardest no-false-positive test,
/// covering lock-free CAS protocols and deferred reclamation).
class MicroBenchmarkSilenceTest
    : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(MicroBenchmarkSilenceTest, NoRacesReported) {
  auto W = makeWorkload(GetParam());
  WorkloadParams Params;
  Params.Scale = 0.2;
  ExperimentRun Run = executeExperiment(*W, Params);
  RaceReport Full;
  ASSERT_TRUE(detectRaces(Run.TraceData, Full));
  EXPECT_EQ(Full.numStaticRaces(), 0u) << Full.describe();
  EXPECT_TRUE(W->seededRaces().empty());
}

INSTANTIATE_TEST_SUITE_P(Micro, MicroBenchmarkSilenceTest,
                         ::testing::Values(WorkloadKind::LKRHash,
                                           WorkloadKind::LFList),
                         [](const ::testing::TestParamInfo<WorkloadKind> &I) {
                           return I.param == WorkloadKind::LKRHash
                                      ? "LKRHash"
                                      : "LFList";
                         });

/// Binds a workload on a throwaway runtime and hands its access model plus
/// registry to \p Check.
template <typename CheckT>
void withBoundModel(WorkloadKind Kind, CheckT Check) {
  auto W = makeWorkload(Kind);
  MemorySink Sink(128);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Runtime RT(Config, &Sink);
  W->bind(RT);
  Check(RT.accessModel(), RT);
}

/// The micro-benchmark models must carry the same structural facts the
/// application workloads do: a fork/join phase skeleton with every site
/// tagged, and a declared sync-free recheck region the redundancy pass
/// can act on.
TEST(MicroBenchmarkModelTest, LKRHashDeclaresPhasesAndSlotRegion) {
  withBoundModel(WorkloadKind::LKRHash, [](const AccessModel &M,
                                           Runtime &RT) {
    ASSERT_EQ(M.numPhases(), 3u);
    EXPECT_EQ(M.phaseName(0), "init");
    EXPECT_EQ(M.phaseName(1), "steady");
    EXPECT_EQ(M.phaseName(2), "teardown");
    ASSERT_EQ(M.phaseOrders().size(), 2u);
    for (const PhaseOrder &O : M.phaseOrders())
      EXPECT_EQ(O.Kind, PhaseOrderKind::ForkJoin);
    for (const SiteDecl &D : M.declarations())
      EXPECT_NE(D.Phase, kNoPhase)
          << RT.registry().name(pcFunction(D.Site));

    ASSERT_EQ(M.numRegions(), 1u);
    const RegionDecl &R = M.regions()[0];
    EXPECT_EQ(R.Name, "lkr.slot-block");
    ASSERT_EQ(R.Sites.size(), 2u);
    EXPECT_EQ(RT.registry().name(pcFunction(R.Sites[0])), "lkr.insert");
    EXPECT_EQ(pcSite(R.Sites[0]), LKRHashWorkload::SiteSlotKeyWrite);
    EXPECT_EQ(pcSite(R.Sites[1]), LKRHashWorkload::SiteSlotKeyRecheck);
  });
}

TEST(MicroBenchmarkModelTest, LFListDeclaresPhasesAndPublishRegion) {
  withBoundModel(WorkloadKind::LFList, [](const AccessModel &M,
                                          Runtime &RT) {
    ASSERT_EQ(M.numPhases(), 3u);
    EXPECT_EQ(M.phaseName(0), "init");
    EXPECT_EQ(M.phaseName(1), "steady");
    EXPECT_EQ(M.phaseName(2), "teardown");
    ASSERT_EQ(M.phaseOrders().size(), 2u);
    for (const SiteDecl &D : M.declarations())
      EXPECT_NE(D.Phase, kNoPhase)
          << RT.registry().name(pcFunction(D.Site));

    ASSERT_EQ(M.numRegions(), 1u);
    const RegionDecl &R = M.regions()[0];
    EXPECT_EQ(R.Name, "lfl.publish-block");
    ASSERT_EQ(R.Sites.size(), 2u);
    EXPECT_EQ(RT.registry().name(pcFunction(R.Sites[0])), "lfl.insert");
    EXPECT_EQ(pcSite(R.Sites[0]), LFListWorkload::SiteKeyWrite);
    EXPECT_EQ(pcSite(R.Sites[1]), LFListWorkload::SiteKeyRecheck);
  });
}

/// The two adversarial fuzz workloads declare full models too: phases,
/// regions, and a non-empty seeded-race manifest with both rare and
/// frequent families (the fuzz recall tables depend on that split).
TEST(MicroBenchmarkModelTest, FuzzWorkloadsDeclareModelsAndManifests) {
  for (WorkloadKind Kind :
       {WorkloadKind::MpmcQueue, WorkloadKind::TaskExecutor}) {
    auto W = makeWorkload(Kind);
    MemorySink Sink(128);
    RuntimeConfig Config;
    Config.Mode = RunMode::Experiment;
    Runtime RT(Config, &Sink);
    W->bind(RT);
    const AccessModel &M = RT.accessModel();
    EXPECT_GE(M.numPhases(), 3u) << W->name();
    EXPECT_GE(M.phaseOrders().size(), 2u) << W->name();
    EXPECT_GE(M.numRegions(), 1u) << W->name();

    auto Manifest = W->seededRaces();
    ASSERT_GE(Manifest.size(), 4u);
    size_t Rare = 0, Frequent = 0;
    for (const SeededRaceSpec &Spec : Manifest)
      (Spec.ExpectFrequent ? Frequent : Rare) += 1;
    EXPECT_GE(Rare, 3u) << W->name();
    EXPECT_GE(Frequent, 1u) << W->name();
  }
}

TEST(WorkloadSuiteTest, DetectionSuiteHasTheEightPaperPairs) {
  auto Suite = makeDetectionSuite();
  ASSERT_EQ(Suite.size(), 8u);
  EXPECT_EQ(Suite[0]->name(), "Dryad Channel + stdlib");
  EXPECT_EQ(Suite[7]->name(), "Firefox Render");
}

TEST(WorkloadSuiteTest, RareFrequentSuiteExcludesConcRT) {
  auto Suite = makeRareFrequentSuite();
  ASSERT_EQ(Suite.size(), 6u);
  for (const auto &W : Suite)
    EXPECT_EQ(W->name().find("ConcRT"), std::string::npos);
}

TEST(WorkloadSuiteTest, OverheadSuiteHasTenRows) {
  auto Suite = makeOverheadSuite();
  ASSERT_EQ(Suite.size(), 10u);
  EXPECT_EQ(Suite[0]->name(), "LKRHash");
  EXPECT_EQ(Suite[1]->name(), "LFList");
}

TEST(WorkloadSuiteTest, StdLibVariantAddsRaceFamilies) {
  // The paper's Dryad vs Dryad+stdlib effect: instrumenting the library
  // makes its races visible (19 vs 8 in the paper).
  auto Plain = makeWorkload(WorkloadKind::Channel);
  auto WithLib = makeWorkload(WorkloadKind::ChannelWithStdLib);
  MemorySink SinkA(128), SinkB(128);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Runtime RTA(Config, &SinkA), RTB(Config, &SinkB);
  Plain->bind(RTA);
  WithLib->bind(RTB);
  EXPECT_GT(WithLib->seededRaces().size(), Plain->seededRaces().size());
  // The library variant also registers more functions.
  EXPECT_GT(RTB.registry().size(), RTA.registry().size());
}

TEST(WorkloadSuiteTest, ScaledParamsRespectMinimum) {
  WorkloadParams P;
  P.Scale = 0.0001;
  EXPECT_EQ(P.scaled(3000, 30), 30u);
  P.Scale = 2.0;
  EXPECT_EQ(P.scaled(3000, 30), 6000u);
}

/// Rare/frequent classification at (near-)default scale, for families
/// designed with robust margins.
TEST(WorkloadClassificationTest, ChannelFamiliesClassifyAsDesigned) {
  auto W = makeWorkload(WorkloadKind::ChannelWithStdLib);
  WorkloadParams Params; // Default scale: ~2M memory ops.
  ExperimentRun Run = executeExperiment(*W, Params);
  RaceReport Full;
  ASSERT_TRUE(detectRaces(Run.TraceData, Full));
  auto [Rare, Frequent] = Full.splitRareFrequent(Run.Stats.MemOpsLogged);

  auto FamilyIn = [&](const char *Label,
                      const std::set<StaticRaceKey> &Keys) {
    for (const SeededRaceSpec &Spec : W->seededRaces()) {
      if (Spec.Label != Label)
        continue;
      std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
      for (const StaticRaceKey &Key : Keys)
        if (Sites.count(Key.first) && Sites.count(Key.second))
          return true;
    }
    return false;
  };

  // One-shot teardown/late-entrant races: rare by construction.
  EXPECT_TRUE(FamilyIn("channel-drain-heartbeat", Rare));
  EXPECT_FALSE(FamilyIn("channel-drain-heartbeat", Frequent));
  EXPECT_TRUE(FamilyIn("channel-tuning-hint", Rare));
  // The stop flag is one write observed within a poll or two: rare.
  EXPECT_TRUE(FamilyIn("channel-stop-flag", Rare));
  // Monitor-polled hot statistics: frequent by construction.
  EXPECT_TRUE(FamilyIn("channel-push-count", Frequent));
  EXPECT_TRUE(FamilyIn("stdlib-last-checksum", Frequent));
}

} // namespace
