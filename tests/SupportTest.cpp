//===-- tests/SupportTest.cpp - Support utilities ---------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/FunctionRegistry.h"
#include "support/Crc32.h"
#include "support/Hashing.h"
#include "support/SplitMix64.h"
#include "support/Timer.h"

#include <cstring>
#include <gtest/gtest.h>
#include <set>
#include <thread>

using namespace literace;

namespace {

TEST(HashingTest, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(HashingTest, Mix64SpreadsLowBits) {
  // Sequential inputs must not produce sequential low bits (SyncVar
  // counter selection depends on this).
  std::set<uint64_t> LowBits;
  for (uint64_t I = 0; I != 256; ++I)
    LowBits.insert(mix64(I) & 127);
  EXPECT_GT(LowBits.size(), 100u);
}

TEST(HashingTest, HashCombineOrderSensitive) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 A(7), B(7), C(8);
  for (int I = 0; I != 100; ++I) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
  }
  EXPECT_NE(A.next(), C.next());
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 Rng(123);
  for (int I = 0; I != 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SplitMix64Test, NextBelowRespectsBound) {
  SplitMix64 Rng(99);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int I = 0; I != 1000; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(SplitMix64Test, NextBelowIsRoughlyUniform) {
  SplitMix64 Rng(5);
  unsigned Counts[8] = {};
  const unsigned N = 80000;
  for (unsigned I = 0; I != N; ++I)
    ++Counts[Rng.nextBelow(8)];
  for (unsigned Bucket = 0; Bucket != 8; ++Bucket)
    EXPECT_NEAR(Counts[Bucket], N / 8.0, N / 8.0 * 0.1);
}

TEST(SplitMix64Test, BernoulliEdgeCases) {
  SplitMix64 Rng(1);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(Rng.nextBernoulli(0.0));
    EXPECT_TRUE(Rng.nextBernoulli(1.0));
    EXPECT_FALSE(Rng.nextBernoulli(-0.5));
    EXPECT_TRUE(Rng.nextBernoulli(1.5));
  }
}

TEST(SplitMix64Test, BernoulliHitsRate) {
  SplitMix64 Rng(17);
  unsigned Hits = 0;
  const unsigned N = 100000;
  for (unsigned I = 0; I != N; ++I)
    Hits += Rng.nextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.01);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer Timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double S = Timer.seconds();
  EXPECT_GE(S, 0.015);
  EXPECT_LT(S, 5.0);
  EXPECT_GE(Timer.nanoseconds(), 15u * 1000 * 1000);
  Timer.restart();
  EXPECT_LT(Timer.seconds(), 0.015);
}

TEST(Crc32Test, MatchesTheCastagnoliCheckValue) {
  // The canonical CRC32C check value (RFC 3720 / Intel SSE4.2 crc32c):
  // crc of the nine ASCII digits "123456789".
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(crc32c("", 0), 0x00000000u);
  EXPECT_EQ(crc32c("a", 1), 0xC1D04330u);
  const char ThirtyTwoZeros[32] = {};
  EXPECT_EQ(crc32c(ThirtyTwoZeros, 32), 0x8A9136AAu);
}

TEST(Crc32Test, IncrementalUpdatesMatchOneShot) {
  const char Data[] = "segmented checksummed frames";
  const size_t Size = sizeof(Data) - 1;
  uint32_t State = crc32cInit();
  for (size_t I = 0; I != Size; ++I)
    State = crc32cUpdate(State, Data + I, 1);
  EXPECT_EQ(crc32cFinal(State), crc32c(Data, Size));
}

TEST(Crc32Test, SingleBitFlipsChangeTheChecksum) {
  const char Data[] = "literace segment payload bytes!!";
  const size_t Size = sizeof(Data) - 1;
  const uint32_t Clean = crc32c(Data, Size);
  for (size_t Byte = 0; Byte != Size; ++Byte)
    for (unsigned Bit = 0; Bit != 8; ++Bit) {
      char Flipped[sizeof(Data)];
      std::memcpy(Flipped, Data, sizeof(Data));
      Flipped[Byte] ^= static_cast<char>(1u << Bit);
      EXPECT_NE(crc32c(Flipped, Size), Clean)
          << "byte " << Byte << " bit " << Bit;
    }
}

TEST(FunctionRegistryTest, DenseIdsAndNames) {
  FunctionRegistry Registry;
  FunctionId A = Registry.registerFunction("alpha");
  FunctionId B = Registry.registerFunction("beta");
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(Registry.name(A), "alpha");
  EXPECT_EQ(Registry.name(B), "beta");
  EXPECT_EQ(Registry.size(), 2u);
}

TEST(FunctionRegistryTest, DuplicateNamesAreDistinctRegions) {
  FunctionRegistry Registry;
  FunctionId A = Registry.registerFunction("f");
  FunctionId B = Registry.registerFunction("f");
  EXPECT_NE(A, B);
}

TEST(FunctionRegistryTest, ConcurrentRegistrationIsSafe) {
  FunctionRegistry Registry;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&Registry, T] {
      for (unsigned I = 0; I != 500; ++I)
        Registry.registerFunction("t" + std::to_string(T) + "." +
                                  std::to_string(I));
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Registry.size(), 2000u);
  // Every id maps to a unique name.
  std::set<std::string> Names;
  for (FunctionId F = 0; F != 2000; ++F)
    Names.insert(Registry.name(F));
  EXPECT_EQ(Names.size(), 2000u);
}

} // namespace
