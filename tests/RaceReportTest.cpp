//===-- tests/RaceReportTest.cpp - Race aggregation ------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/RaceReport.h"

#include "runtime/FunctionRegistry.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

RaceSighting sighting(Pc A, Pc B, uint64_t Addr = 0x100, bool AW = true,
                      bool BW = true) {
  RaceSighting S;
  S.FirstPc = A;
  S.SecondPc = B;
  S.Addr = Addr;
  S.FirstIsWrite = AW;
  S.SecondIsWrite = BW;
  return S;
}

TEST(RaceReportTest, KeysAreOrderInsensitive) {
  EXPECT_EQ(makeStaticRaceKey(5, 3), makeStaticRaceKey(3, 5));
  RaceReport R;
  R.record(sighting(10, 20));
  R.record(sighting(20, 10));
  EXPECT_EQ(R.numStaticRaces(), 1u);
  EXPECT_EQ(R.numDynamicSightings(), 2u);
  EXPECT_TRUE(R.contains(20, 10));
}

TEST(RaceReportTest, DistinctPairsAreDistinctStaticRaces) {
  RaceReport R;
  R.record(sighting(1, 2));
  R.record(sighting(1, 3));
  R.record(sighting(2, 3));
  EXPECT_EQ(R.numStaticRaces(), 3u);
}

TEST(RaceReportTest, DynamicCountsAccumulatePerKey) {
  RaceReport R;
  for (int I = 0; I != 7; ++I)
    R.record(sighting(1, 2));
  R.record(sighting(3, 4));
  auto Races = R.staticRaces();
  ASSERT_EQ(Races.size(), 2u);
  EXPECT_EQ(Races[0].DynamicCount, 7u);
  EXPECT_EQ(Races[1].DynamicCount, 1u);
}

TEST(RaceReportTest, TracksWriteWriteKind) {
  RaceReport R;
  R.record(sighting(1, 2, 0x10, true, false));
  auto Races = R.staticRaces();
  EXPECT_FALSE(Races[0].SawWriteWrite);
  R.record(sighting(1, 2, 0x10, true, true));
  Races = R.staticRaces();
  EXPECT_TRUE(Races[0].SawWriteWrite);
}

TEST(RaceReportTest, RareThresholdIsThreePerMillion) {
  // 2M memory ops -> threshold 6 manifestations.
  StaticRace Race;
  Race.DynamicCount = 5;
  EXPECT_TRUE(RaceReport::isRare(Race, 2000000));
  Race.DynamicCount = 6;
  EXPECT_FALSE(RaceReport::isRare(Race, 2000000));
}

TEST(RaceReportTest, SplitRareFrequentPartitionsKeys) {
  RaceReport R;
  for (int I = 0; I != 2; ++I)
    R.record(sighting(1, 2)); // 2 sightings: rare at 2M mem ops.
  for (int I = 0; I != 100; ++I)
    R.record(sighting(3, 4)); // 100 sightings: frequent.
  auto [Rare, Frequent] = R.splitRareFrequent(2000000);
  EXPECT_EQ(Rare.size(), 1u);
  EXPECT_EQ(Frequent.size(), 1u);
  EXPECT_TRUE(Rare.count(makeStaticRaceKey(1, 2)));
  EXPECT_TRUE(Frequent.count(makeStaticRaceKey(3, 4)));
  EXPECT_EQ(Rare.size() + Frequent.size(), R.keys().size());
}

TEST(RaceReportTest, ClassificationScalesWithExecutionLength) {
  RaceReport R;
  for (int I = 0; I != 4; ++I)
    R.record(sighting(1, 2));
  // Short run: 4 sightings over 100k ops is way past 3-per-million.
  EXPECT_TRUE(R.splitRareFrequent(100000).second.count(
      makeStaticRaceKey(1, 2)));
  // Long run: same 4 sightings over 10M ops is rare.
  EXPECT_TRUE(R.splitRareFrequent(10000000).first.count(
      makeStaticRaceKey(1, 2)));
}

TEST(RaceReportTest, DescribeResolvesFunctionNames) {
  FunctionRegistry Registry;
  FunctionId F = Registry.registerFunction("chan.push");
  FunctionId G = Registry.registerFunction("chan.pop");
  RaceReport R;
  R.record(sighting(makePc(F, 42), makePc(G, 7)));
  std::string Text = R.describe(&Registry);
  EXPECT_NE(Text.find("chan.push:42"), std::string::npos);
  EXPECT_NE(Text.find("chan.pop:7"), std::string::npos);
  EXPECT_NE(Text.find("1 static race"), std::string::npos);
}

TEST(RaceReportTest, DescribeWithoutRegistryUsesIds) {
  RaceReport R;
  R.record(sighting(makePc(3, 1), makePc(4, 2)));
  std::string Text = R.describe();
  EXPECT_NE(Text.find("fn3:1"), std::string::npos);
}

TEST(RaceReportTest, SuppressionsRetireTriagedSites) {
  RaceReport R;
  R.record(sighting(10, 20));
  R.record(sighting(30, 40));
  R.record(sighting(10, 50));
  EXPECT_EQ(R.staticRacesExcluding({}).size(), 3u);
  // Suppressing one site retires every race it participates in.
  auto Filtered = R.staticRacesExcluding({10});
  ASSERT_EQ(Filtered.size(), 1u);
  EXPECT_EQ(Filtered[0].Key, makeStaticRaceKey(30, 40));
  // The report itself is untouched.
  EXPECT_EQ(R.numStaticRaces(), 3u);
  // Suppressing either side works.
  EXPECT_EQ(R.staticRacesExcluding({40, 50}).size(), 1u);
}

TEST(RaceReportTest, ExampleAddrIsFirstSighting) {
  RaceReport R;
  R.record(sighting(1, 2, 0xAAA));
  R.record(sighting(1, 2, 0xBBB));
  EXPECT_EQ(R.staticRaces()[0].ExampleAddr, 0xAAAu);
}

RaceSighting sightingAt(Pc A, Pc B, uint64_t Addr, uint64_t EventIndex) {
  RaceSighting S = sighting(A, B, Addr);
  S.EventIndex = EventIndex;
  return S;
}

TEST(RaceReportTest, FirstOccurrenceFollowsEventIndexNotRecordOrder) {
  // A merged sharded report can deliver the later sighting first; the
  // aggregation must still settle on the replay-earliest one.
  RaceReport R;
  R.record(sightingAt(1, 2, 0xBBB, 90));
  R.record(sightingAt(1, 2, 0xAAA, 10));
  R.record(sightingAt(1, 2, 0xCCC, 50));
  auto Races = R.staticRaces();
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_EQ(Races[0].ExampleAddr, 0xAAAu);
  EXPECT_EQ(Races[0].FirstEventIndex, 10u);
  EXPECT_EQ(Races[0].DynamicCount, 3u);
}

TEST(RaceReportTest, MergeIsOrderIndependent) {
  // Three partial reports with overlapping keys, merged in both orders:
  // every aggregate field and the rendered text must agree.
  auto Partials = [] {
    std::vector<RaceReport> Out(3);
    Out[0].record(sightingAt(1, 2, 0x100, 5));
    Out[0].record(sightingAt(3, 4, 0x200, 7));
    Out[1].record(sightingAt(1, 2, 0x110, 3)); // Earlier occurrence.
    Out[1].record(sightingAt(5, 6, 0x300, 9));
    Out[2].record(sightingAt(3, 4, 0x210, 20));
    return Out;
  };

  auto Reports = Partials();
  RaceReport Forward;
  for (const RaceReport &P : Reports)
    Forward.merge(P);
  RaceReport Backward;
  for (size_t I = Reports.size(); I-- > 0;)
    Backward.merge(Reports[I]);

  EXPECT_EQ(Forward.describe(), Backward.describe());
  auto F = Forward.staticRaces();
  auto B = Backward.staticRaces();
  ASSERT_EQ(F.size(), 3u);
  ASSERT_EQ(B.size(), 3u);
  for (size_t I = 0; I != F.size(); ++I) {
    EXPECT_EQ(F[I].Key, B[I].Key);
    EXPECT_EQ(F[I].DynamicCount, B[I].DynamicCount);
    EXPECT_EQ(F[I].ExampleAddr, B[I].ExampleAddr);
    EXPECT_EQ(F[I].FirstEventIndex, B[I].FirstEventIndex);
  }
  // The (1,2) race's first occurrence came from the second partial.
  EXPECT_EQ(F[0].Key, makeStaticRaceKey(1, 2));
  EXPECT_EQ(F[0].ExampleAddr, 0x110u);
  EXPECT_EQ(F[0].FirstEventIndex, 3u);
  EXPECT_EQ(Forward.numDynamicSightings(), 5u);
  EXPECT_EQ(Forward.racyAddresses().size(), 5u);
}

TEST(RaceReportTest, MergeOfDisjointShardsMatchesSerialRecording) {
  // Serial recording in replay order vs the same sightings split across
  // two "shards" by address and merged: byte-identical describe().
  std::vector<RaceSighting> Stream = {
      sightingAt(makePc(1, 1), makePc(2, 1), 0x10, 2),
      sightingAt(makePc(1, 2), makePc(2, 2), 0x20, 4),
      sightingAt(makePc(1, 1), makePc(2, 1), 0x10, 6),
      sightingAt(makePc(1, 3), makePc(2, 3), 0x30, 8),
  };
  RaceReport Serial;
  for (const RaceSighting &S : Stream)
    Serial.record(S);

  RaceReport ShardA, ShardB;
  for (const RaceSighting &S : Stream)
    (S.Addr == 0x20 ? ShardB : ShardA).record(S);
  RaceReport Merged;
  Merged.merge(ShardB); // Deliberately not shard order.
  Merged.merge(ShardA);

  EXPECT_EQ(Serial.describe(), Merged.describe());
  EXPECT_EQ(Serial.numDynamicSightings(), Merged.numDynamicSightings());
  EXPECT_EQ(Serial.racyAddresses(), Merged.racyAddresses());
}

TEST(RaceReportTest, GoldenDescribeOutputIsLocked) {
  // Locks the canonical report rendering: explicit (site, first event
  // index) ordering, never container iteration order. If this test
  // breaks, report formatting or ordering changed — update deliberately.
  RaceReport R;
  R.record(sightingAt(makePc(2, 20), makePc(1, 10), 0x500, 11));
  R.record(sightingAt(makePc(1, 10), makePc(2, 20), 0x500, 14));
  RaceSighting ReadWrite = sighting(makePc(1, 10), makePc(3, 30), 0x600,
                                    /*AW=*/true, /*BW=*/false);
  ReadWrite.EventIndex = 3;
  R.record(ReadWrite);
  const char *Golden = "2 static race(s), 3 dynamic sighting(s)\n"
                       "  fn1:10 <-> fn2:20  x2  [write/write]\n"
                       "  fn1:10 <-> fn3:30  x1\n";
  EXPECT_EQ(R.describe(), Golden);
}

} // namespace
