//===-- tests/FuzzTest.cpp - Schedule-perturbation fuzz harness ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The fuzz tier (ctest -L fuzz): determinism, engine behavior, and the
// statistical recall suite over the two adversarial workloads (the MPMC
// queue with hazard-pointer reclamation and the work-stealing task
// executor).
//
// Knobs, both read from the environment so CI tiers can dial the suite:
//  - LITERACE_FUZZ_SEEDS: seeds per sweep (default 50, minimum 5). The
//    quick CI tier leaves the default; the nightly sweep raises it.
//  - LITERACE_FUZZ_ARTIFACT_DIR: when set, every sweep's full JSON result
//    is written there as <benchmark>.fuzz.json, so a failing run uploads
//    its repro seeds (`literace-fuzz <workload> --seed N` replays one
//    bit-for-bit).
//
// The engine serializes all threads on one token through a mutex+condvar,
// which gives TSan real happens-before edges between quanta: this suite is
// sanitizer-clean even though the workloads seed intentional races, so it
// runs in the TSan CI tier unfiltered.
//
//===----------------------------------------------------------------------===//

#include "harness/FuzzExperiment.h"

#include "workloads/MpmcQueue.h"
#include "workloads/TaskExecutor.h"
#include "workloads/Workload.h"

#include <cstdlib>
#include <fstream>
#include <map>

#include <gtest/gtest.h>

using namespace literace;

namespace {

unsigned seedCountFromEnv() {
  if (const char *Env = std::getenv("LITERACE_FUZZ_SEEDS")) {
    int N = std::atoi(Env);
    if (N >= 5)
      return static_cast<unsigned>(N);
  }
  return 50;
}

void maybeWriteArtifact(const FuzzResult &R) {
  const char *Dir = std::getenv("LITERACE_FUZZ_ARTIFACT_DIR");
  if (!Dir || !*Dir)
    return;
  std::string Path =
      std::string(Dir) + "/" + R.WorkloadCliName + ".fuzz.json";
  std::ofstream Out(Path);
  if (Out)
    writeFuzzJson(R, Out);
}

/// One sweep per workload kind per process; every recall assertion reads
/// the cached result.
const FuzzResult &sweepFor(WorkloadKind Kind) {
  static std::map<WorkloadKind, FuzzResult> Cache;
  auto It = Cache.find(Kind);
  if (It == Cache.end()) {
    FuzzSweepOptions Opts;
    Opts.NumSeeds = seedCountFromEnv();
    Opts.Scale = 0.02;
    It = Cache.emplace(Kind, runFuzzSweep(Kind, Opts)).first;
    maybeWriteArtifact(It->second);
  }
  return It->second;
}

size_t slotOf(const FuzzResult &R, const std::string &Sampler) {
  for (size_t I = 0; I != R.SamplerNames.size(); ++I)
    if (R.SamplerNames[I] == Sampler)
      return I;
  ADD_FAILURE() << "no sampler named " << Sampler;
  return 0;
}

TEST(FuzzDeterminismTest, SameSeedReproducesTraceAndReport) {
  for (WorkloadKind Kind :
       {WorkloadKind::MpmcQueue, WorkloadKind::TaskExecutor}) {
    FuzzSweepOptions Opts;
    Opts.Scale = 0.02;
    FuzzDeterminismCheck Check = checkFuzzDeterminism(Kind, /*Seed=*/5, Opts);
    EXPECT_TRUE(Check.Identical) << makeWorkload(Kind)->name();
    EXPECT_EQ(Check.DigestA, Check.DigestB);
    EXPECT_EQ(Check.RacesA, Check.RacesB);
  }
}

TEST(FuzzDeterminismTest, DifferentSeedsPerturbDifferently) {
  // Not a guarantee for any single pair of seeds, but across three seeds
  // at least two distinct canonical digests must appear — otherwise the
  // engine is ignoring its seed.
  auto digest = [](uint64_t Seed) {
    MpmcQueueWorkload W;
    WorkloadParams Params;
    Params.Scale = 0.02;
    Params.Seed = Seed;
    PerturbOptions Perturb;
    Perturb.Seed = Seed;
    return executeFuzzRun(W, Params, Perturb).CanonicalDigest;
  };
  uint32_t A = digest(1), B = digest(2), C = digest(3);
  EXPECT_TRUE(A != B || B != C);
}

TEST(FuzzEngineTest, RunsSerializedAndCountsItsWork) {
  MpmcQueueWorkload W;
  WorkloadParams Params;
  Params.Scale = 0.02;
  Params.Seed = 1;
  PerturbOptions Perturb;
  Perturb.Seed = 1;
  FuzzRunArtifacts Run = executeFuzzRun(W, Params, Perturb);
  // Main + 2 producers + 2 consumers all overlapped at some point.
  EXPECT_EQ(Run.Schedule.MaxThreads, 5u);
  EXPECT_GT(Run.Schedule.Points, 0u);
  EXPECT_GT(Run.Schedule.Switches, 0u);
  EXPECT_GT(Run.Schedule.Preemptions, 0u);
  EXPECT_GT(Run.Schedule.Delays, 0u);
  EXPECT_GT(Run.Stats.MemOpsLogged, 0u);
  EXPECT_EQ(Run.SamplerNames.size(), 7u);
}

TEST(FuzzEngineTest, ZeroProbabilitiesStillScheduleBlockedThreads) {
  // With every perturbation probability at zero the engine is a pure
  // cooperative scheduler: no draws fire, yet the run completes because
  // blocked waits (join, empty-queue polls) still rotate the token.
  TaskExecutorWorkload W;
  WorkloadParams Params;
  Params.Scale = 0.02;
  Params.Seed = 1;
  PerturbOptions Perturb;
  Perturb.Seed = 1;
  Perturb.PreemptProb = 0.0;
  Perturb.DelayProb = 0.0;
  Perturb.InvertProb = 0.0;
  FuzzRunArtifacts Run = executeFuzzRun(W, Params, Perturb);
  EXPECT_EQ(Run.Schedule.Preemptions, 0u);
  EXPECT_EQ(Run.Schedule.Delays, 0u);
  EXPECT_EQ(Run.Schedule.Inversions, 0u);
  EXPECT_GT(Run.Schedule.BlockedYields, 0u);
  EXPECT_GT(Run.Schedule.Switches, 0u);
}

class FuzzRecallTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(FuzzRecallTest, SweepIsConsistentAndWithinManifest) {
  const FuzzResult &R = sweepFor(GetParam());
  EXPECT_TRUE(R.AllLogsConsistent);
  EXPECT_TRUE(R.AllWithinSeededSites)
      << "a race escaped the seeded manifest";
  EXPECT_TRUE(R.AllBackendsAgree);
  EXPECT_EQ(R.Seeds.size(), seedCountFromEnv());
}

TEST_P(FuzzRecallTest, EverySeededFamilyManifestsInTheSweep) {
  // The acceptance bar: each seeded race is caught by the
  // full-instrumentation detector on at least one seed.
  const FuzzResult &R = sweepFor(GetParam());
  for (const FuzzFamilyRecall &F : R.Families)
    EXPECT_GT(F.SeedsManifested, 0u)
        << F.Label << " never manifested in " << R.Seeds.size()
        << " seeds; repro candidates printed by literace-fuzz "
        << R.WorkloadCliName;
}

TEST_P(FuzzRecallTest, StatisticalSamplerRecallFloors) {
  // Golden floors with slack under the measured values. The thread-local
  // adaptive sampler (the paper's main design) must be essentially
  // complete on cold-region races; the global adaptive sampler close
  // behind; fixed-rate random samplers are EXPECTED to miss cold races,
  // so they only carry a floor on the frequent families.
  const FuzzResult &R = sweepFor(GetParam());
  const size_t TlAd = slotOf(R, "TL-Ad");
  const size_t TlFx = slotOf(R, "TL-Fx");
  const size_t GAd = slotOf(R, "G-Ad");
  for (size_t F = 0; F != R.Families.size(); ++F) {
    const FuzzFamilyRecall &Family = R.Families[F];
    if (Family.ExpectFrequent) {
      // Hot races: everyone sees them, sampled or not.
      for (size_t Slot = 0; Slot != R.SamplerNames.size(); ++Slot)
        EXPECT_GE(R.recall(F, Slot), 0.9)
            << Family.Label << " via " << R.SamplerNames[Slot];
      continue;
    }
    EXPECT_GE(R.recall(F, TlAd), 0.9)
        << Family.Label << " via TL-Ad (cold-region hypothesis)";
    EXPECT_GE(R.recall(F, TlFx), 0.9) << Family.Label << " via TL-Fx";
    EXPECT_GE(R.recall(F, GAd), 0.6) << Family.Label << " via G-Ad";
  }
}

TEST_P(FuzzRecallTest, AdaptiveSamplersStillSampleBelowFullRate) {
  // Recall floors would be vacuous if the samplers were logging
  // everything: their effective sampling rate must stay well below 100%.
  const FuzzResult &R = sweepFor(GetParam());
  EXPECT_LT(R.SamplerEffectiveRates[slotOf(R, "TL-Ad")], 0.6);
  EXPECT_LT(R.SamplerEffectiveRates[slotOf(R, "G-Ad")], 0.6);
}

INSTANTIATE_TEST_SUITE_P(AdversarialWorkloads, FuzzRecallTest,
                         ::testing::Values(WorkloadKind::MpmcQueue,
                                           WorkloadKind::TaskExecutor),
                         [](const ::testing::TestParamInfo<WorkloadKind> &I) {
                           return I.param == WorkloadKind::MpmcQueue
                                      ? "MpmcQueue"
                                      : "TaskExecutor";
                         });

} // namespace
