//===-- tests/CollectorTest.cpp - Collection daemon units -------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Unit and in-process integration coverage of the literace-collectd
// stack (docs/COLLECTOR.md): the Prometheus text-exposition writer and
// validator, the suppression-file grammar and matching semantics, the
// triage pipeline (dedup, suppression accounting, fake-clock token
// bucket), the incremental SegmentStreamDecoder against readTrace() as
// ground truth, and a full CollectorServer fed over real AF_UNIX
// sockets. Everything here runs on synthetic LogBuilder traces — no
// instrumented workload threads — so the whole suite is TSan-clean.
//
//===----------------------------------------------------------------------===//

#include "collector/Collector.h"
#include "collector/ReportTriage.h"
#include "collector/Suppressions.h"
#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "detector/Replay.h"
#include "runtime/EventLog.h"
#include "support/ByteOutput.h"
#include "telemetry/Metrics.h"
#include "telemetry/Prometheus.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

using namespace literace;
using namespace literace::collector;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

/// Writes \p T through a SegmentedFileSink in round-robin chunks of
/// \p ChunkSize so the file holds many small frames.
void writeSegmented(const Trace &T, const std::string &Path,
                    size_t ChunkSize, bool Compress = false) {
  SegmentedFileSink::Options Opts;
  Opts.Compress = Compress;
  SegmentedFileSink Sink(Path, T.NumTimestampCounters, Opts);
  ASSERT_TRUE(Sink.ok());
  std::vector<size_t> Pos(T.PerThread.size(), 0);
  bool More = true;
  while (More) {
    More = false;
    for (size_t Tid = 0; Tid < T.PerThread.size(); ++Tid) {
      size_t Left = T.PerThread[Tid].size() - Pos[Tid];
      if (Left == 0)
        continue;
      size_t N = std::min(ChunkSize, Left);
      Sink.writeChunk(static_cast<ThreadId>(Tid),
                      T.PerThread[Tid].data() + Pos[Tid], N);
      Pos[Tid] += N;
      More = true;
    }
  }
  EXPECT_TRUE(Sink.close());
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Bytes;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(File);
  return Bytes;
}

/// Two threads, one properly synchronized address and two unsynchronized
/// ones: replaying yields exactly two static races,
/// (fn3:9, fn4:11) write/write and (fn3:10, fn4:12) read/write.
Trace racyTrace() {
  LogBuilder B(16);
  B.onThread(0)
      .threadStart()
      .write(0x1000, makePc(1, 1))
      .release(7)
      .write(0x3000, makePc(3, 9))
      .read(0x4000, makePc(3, 10))
      .threadEnd();
  B.onThread(1)
      .threadStart()
      .acquire(7)
      .write(0x1000, makePc(2, 2)) // ordered by the m7 edge: no race
      .write(0x3000, makePc(4, 11))
      .write(0x4000, makePc(4, 12))
      .threadEnd();
  return B.build();
}

/// Serial ground truth: replays \p T through one HBDetector.
RaceReport detectOffline(const Trace &T) {
  RaceReport Report;
  HBDetector Detector(Report);
  ReplayScheduler Scheduler(T.NumTimestampCounters);
  for (size_t Tid = 0; Tid < T.PerThread.size(); ++Tid)
    Scheduler.addEvents(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                        T.PerThread[Tid].size());
  Scheduler.drain(Detector);
  return Report;
}

/// Drains every pending chunk of \p D into per-thread streams.
void drainDecoder(SegmentStreamDecoder &D,
                  std::vector<std::vector<EventRecord>> &PerThread) {
  SegmentStreamDecoder::Chunk Chunk;
  while (D.take(Chunk)) {
    if (PerThread.size() <= Chunk.Tid)
      PerThread.resize(Chunk.Tid + 1);
    PerThread[Chunk.Tid].insert(PerThread[Chunk.Tid].end(),
                                Chunk.Records.begin(), Chunk.Records.end());
  }
}

bool sameRecords(const std::vector<std::vector<EventRecord>> &A,
                 const std::vector<std::vector<EventRecord>> &B) {
  size_t Threads = std::max(A.size(), B.size());
  for (size_t Tid = 0; Tid < Threads; ++Tid) {
    const size_t An = Tid < A.size() ? A[Tid].size() : 0;
    const size_t Bn = Tid < B.size() ? B[Tid].size() : 0;
    if (An != Bn)
      return false;
    for (size_t I = 0; I < An; ++I)
      if (std::memcmp(&A[Tid][I], &B[Tid][I], sizeof(EventRecord)) != 0)
        return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

TEST(PrometheusTest, RendersAndValidatesARegistrySnapshot) {
  telemetry::MetricsRegistry Registry;
  auto Events = Registry.counter("collector.events.ingested");
  auto Depth = Registry.gaugeMax("collector.queue.depth.highwater");
  auto Sizes = Registry.histogram("collector.chunk.events");
  auto &Slab = Registry.threadSlab();
  Slab.add(Events, 41);
  Slab.gaugeMax(Depth, 17);
  Slab.record(Sizes, 3);
  Slab.record(Sizes, 900);

  telemetry::MetricsSnapshot Snap = Registry.snapshot();
  Snap.stampCapture(1723111111000ull, 4242);
  const std::string Text = telemetry::toPrometheusText(Snap);

  std::string Error;
  EXPECT_TRUE(telemetry::validatePrometheusText(Text, &Error)) << Error
                                                               << Text;
  // Counters get the _total suffix; dots become underscores.
  EXPECT_NE(Text.find("literace_collector_events_ingested_total 41"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("literace_collector_queue_depth_highwater 17"),
            std::string::npos);
  // Histograms expose cumulative buckets ending in +Inf == _count.
  EXPECT_NE(Text.find("le=\"+Inf\"} 2"), std::string::npos) << Text;
  EXPECT_NE(Text.find("literace_collector_chunk_events_count 2"),
            std::string::npos);
  EXPECT_NE(Text.find("literace_collector_chunk_events_sum 903"),
            std::string::npos);
  // The capture stamp rides along as the info-gauge's labels.
  EXPECT_NE(Text.find("captured_unix_ms=\"1723111111000\""),
            std::string::npos);
  EXPECT_NE(Text.find("pid=\"4242\""), std::string::npos);
}

TEST(PrometheusTest, CuratedHelpRidesTheExpositionAndUnknownsFallBack) {
  // Durability-plane metrics carry their catalog one-liners so a
  // dashboard explains itself; everything else keeps the generic help.
  ASSERT_NE(telemetry::metricHelp("sink.tee.gap_bytes"), nullptr);
  ASSERT_NE(telemetry::metricHelp("collector.ingest.gap_bytes"), nullptr);
  EXPECT_EQ(telemetry::metricHelp("no.such.metric"), nullptr);

  telemetry::MetricsRegistry Registry;
  auto Gap = Registry.counter("collector.ingest.gap_bytes");
  auto Odd = Registry.counter("experimental.oddball");
  auto &Slab = Registry.threadSlab();
  Slab.add(Gap, 7);
  Slab.add(Odd, 1);
  const std::string Text =
      telemetry::toPrometheusText(Registry.snapshot());
  std::string Error;
  EXPECT_TRUE(telemetry::validatePrometheusText(Text, &Error)) << Error;
  const std::string WantHelp =
      std::string("# HELP literace_collector_ingest_gap_bytes_total ") +
      telemetry::metricHelp("collector.ingest.gap_bytes");
  EXPECT_NE(Text.find(WantHelp), std::string::npos) << Text;
  EXPECT_NE(Text.find("# HELP literace_experimental_oddball_total "
                      "literace counter."),
            std::string::npos)
      << Text;
}

TEST(PrometheusTest, NameSanitizationFollowsTheGrammar) {
  EXPECT_EQ(telemetry::prometheusName("detector.shard0.memory_events"),
            "detector_shard0_memory_events");
  EXPECT_EQ(telemetry::prometheusName("9starts-with.digit"),
            "_9starts_with_digit");
}

TEST(PrometheusTest, ValidatorRejectsMalformedExposition) {
  std::string Error;
  // Sample for a family never typed.
  EXPECT_FALSE(telemetry::validatePrometheusText(
      "literace_x_total 1\n", &Error));
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(telemetry::validatePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_count 5\n"
      "h_sum 9\n",
      &Error));
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(telemetry::validatePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 4\n"
      "h_count 5\n"
      "h_sum 9\n",
      &Error));
  // Document not ending in a newline.
  EXPECT_FALSE(telemetry::validatePrometheusText(
      "# TYPE c counter\nc_total 1", &Error));
}

//===----------------------------------------------------------------------===//
// Suppression files
//===----------------------------------------------------------------------===//

TEST(SuppressionsTest, ParsesBlocksAndSkipsOtherTools) {
  SuppressionSet Set;
  std::string Error;
  ASSERT_TRUE(Set.parse("# shared suppression file\n"
                        "{\n"
                        "  stats-counter\n"
                        "  LiteRace:Race\n"
                        "  site:fn3:7\n"
                        "}\n"
                        "{\n"
                        "  helgrind-only\n"
                        "  Helgrind:Race\n"
                        "  site:*\n"
                        "}\n"
                        "{\n"
                        "  ring-pair\n"
                        "  drd,LiteRace:Race\n"
                        "  site:fn1\n"
                        "  site:fn2:9\n"
                        "}\n",
                        &Error))
      << Error;
  // The Helgrind block belongs to another tool and is dropped.
  ASSERT_EQ(Set.size(), 2u);
  EXPECT_EQ(Set.entry(0).Name, "stats-counter");
  EXPECT_EQ(Set.entry(1).Name, "ring-pair");
  EXPECT_EQ(Set.entry(1).Sites.size(), 2u);
}

TEST(SuppressionsTest, GrammarErrorsCarryLineNumbers) {
  SuppressionSet Set;
  std::string Error;
  // Unterminated block.
  EXPECT_FALSE(Set.parse("{\n  x\n  LiteRace:Race\n  site:*\n", &Error));
  EXPECT_NE(Error.find("line"), std::string::npos) << Error;
  // A LiteRace block must suppress kind Race.
  EXPECT_FALSE(
      Set.parse("{\n  x\n  LiteRace:Leak\n  site:*\n}\n", &Error));
  // No site patterns.
  EXPECT_FALSE(Set.parse("{\n  x\n  LiteRace:Race\n}\n", &Error));
  // Three site patterns (a race has two sides).
  EXPECT_FALSE(Set.parse("{\n  x\n  LiteRace:Race\n  site:*\n  site:*\n"
                         "  site:*\n}\n",
                         &Error));
  // Malformed site spec.
  EXPECT_FALSE(
      Set.parse("{\n  x\n  LiteRace:Race\n  site:banana\n}\n", &Error));
  // A failed parse leaves the set unchanged.
  EXPECT_TRUE(Set.empty());
}

TEST(SuppressionsTest, MatchingSemantics) {
  SuppressionSet Set;
  std::string Error;
  ASSERT_TRUE(Set.parse("{\n  one-sided\n  LiteRace:Race\n  site:fn3:7\n}\n"
                        "{\n  pair\n  LiteRace:Race\n  site:fn5\n"
                        "  site:fn6:1\n}\n"
                        "{\n  exact\n  LiteRace:Race\n  site:0x700000002\n}\n",
                        &Error))
      << Error;

  // One pattern: either side may match.
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(3, 7), makePc(9, 9))), 0);
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(9, 9), makePc(3, 7))), 0);
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(3, 8), makePc(9, 9))), -1);

  // Two patterns: both sides covered, order-insensitively; fn5 is a
  // whole-function wildcard.
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(5, 123), makePc(6, 1))), 1);
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(6, 1), makePc(5, 0))), 1);
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(5, 123), makePc(6, 2))), -1);

  // Exact encoded pc (0x700000002 == fn7:2).
  EXPECT_EQ(Set.match(makeStaticRaceKey(makePc(7, 2), makePc(8, 8))), 2);

  // Hit accounting feeds the Valgrind-style usage report.
  Set.countHit(0);
  Set.countHit(0);
  EXPECT_EQ(Set.hits(0), 2u);
  const std::string Used = Set.describeUsed();
  EXPECT_NE(Used.find("one-sided"), std::string::npos);
  EXPECT_EQ(Used.find("pair"), std::string::npos) << "zero-hit entry listed";
}

//===----------------------------------------------------------------------===//
// Report triage
//===----------------------------------------------------------------------===//

TEST(ReportTriageTest, DedupsBySitePairAndTracksSessions) {
  ReportTriage Triage;
  const StaticRaceKey Key = makeStaticRaceKey(makePc(1, 1), makePc(2, 2));
  Triage.observe(Key, 3, /*WriteWrite=*/false, 0x1000, /*SessionId=*/1);
  Triage.observe(Key, 2, /*WriteWrite=*/true, 0x2000, /*SessionId=*/2);
  Triage.observe(Key, 1, /*WriteWrite=*/false, 0x3000, /*SessionId=*/1);

  ASSERT_EQ(Triage.distinctRaces(), 1u);
  const TriagedRace R = Triage.races()[0];
  EXPECT_EQ(R.DynamicCount, 6u);
  EXPECT_EQ(R.Sessions, 2u);
  EXPECT_EQ(R.ExampleAddr, 0x1000u) << "first sighting wins";
  EXPECT_TRUE(R.SawWriteWrite);
  EXPECT_EQ(Triage.totalSightings(), 6u);
}

TEST(ReportTriageTest, TokenBucketLimitsPerRaceEmission) {
  uint64_t FakeNowNs = 0;
  TriageConfig Config;
  Config.RatePerSec = 1.0;
  Config.Burst = 2.0;
  Config.NowNs = [&FakeNowNs] { return FakeNowNs; };
  ReportTriage Triage(Config);
  uint64_t Emitted = 0;
  Triage.setEmitter(
      [&Emitted](const TriagedRace &, uint64_t) { ++Emitted; });

  const StaticRaceKey Key = makeStaticRaceKey(makePc(1, 1), makePc(2, 2));
  // The burst admits two updates back-to-back; the third is swallowed.
  Triage.observe(Key, 1, false, 0, 1);
  Triage.observe(Key, 1, false, 0, 1);
  Triage.observe(Key, 1, false, 0, 1);
  EXPECT_EQ(Emitted, 2u);
  EXPECT_EQ(Triage.rateLimitedUpdates(), 1u);

  // One second refills one token.
  FakeNowNs += 1000000000ull;
  Triage.observe(Key, 1, false, 0, 1);
  EXPECT_EQ(Emitted, 3u);

  // Rate-limited updates still count sightings — nothing is lost from
  // the aggregate, only the emission is throttled.
  EXPECT_EQ(Triage.races()[0].DynamicCount, 4u);
  EXPECT_EQ(Triage.races()[0].RateLimitedUpdates, 1u);
}

TEST(ReportTriageTest, ANewRaceIsNeverDelayed) {
  uint64_t FakeNowNs = 77;
  TriageConfig Config;
  Config.RatePerSec = 0.001; // Refill would take ~17 minutes.
  Config.Burst = 1.0;
  Config.NowNs = [&FakeNowNs] { return FakeNowNs; };
  ReportTriage Triage(Config);
  uint64_t Emitted = 0;
  Triage.setEmitter(
      [&Emitted](const TriagedRace &, uint64_t) { ++Emitted; });
  // Each fresh race starts with a full bucket regardless of the clock.
  Triage.observe(makeStaticRaceKey(makePc(1, 1), makePc(2, 2)), 1, false, 0,
                 1);
  Triage.observe(makeStaticRaceKey(makePc(3, 3), makePc(4, 4)), 1, false, 0,
                 1);
  EXPECT_EQ(Emitted, 2u);
}

TEST(ReportTriageTest, SuppressedRacesCountButNeverEmit) {
  SuppressionSet Suppressions;
  ASSERT_TRUE(Suppressions.parse(
      "{\n  benign\n  LiteRace:Race\n  site:fn1:1\n}\n"));
  ReportTriage Triage(TriageConfig(), &Suppressions);
  uint64_t Emitted = 0;
  Triage.setEmitter(
      [&Emitted](const TriagedRace &, uint64_t) { ++Emitted; });

  const StaticRaceKey Hit = makeStaticRaceKey(makePc(1, 1), makePc(2, 2));
  const StaticRaceKey Miss = makeStaticRaceKey(makePc(3, 3), makePc(4, 4));
  Triage.observe(Hit, 5, false, 0, 1);
  Triage.observe(Miss, 1, false, 0, 1);

  EXPECT_EQ(Emitted, 1u) << "only the unsuppressed race fires the emitter";
  EXPECT_EQ(Triage.distinctRaces(), 2u);
  EXPECT_EQ(Triage.unsuppressedRaces(), 1u);
  EXPECT_EQ(Triage.suppressedSightings(), 5u);
  EXPECT_EQ(Suppressions.hits(0), 5u) << "each dynamic update is one hit";
  const std::vector<TriagedRace> Races = Triage.races();
  ASSERT_EQ(Races.size(), 2u);
  EXPECT_TRUE(Races[0].Suppressed);
  EXPECT_EQ(Races[0].SuppressionName, "benign");
  EXPECT_FALSE(Races[1].Suppressed);
}

//===----------------------------------------------------------------------===//
// SegmentStreamDecoder
//===----------------------------------------------------------------------===//

class DecoderTest : public ::testing::TestWithParam<bool> {};

TEST_P(DecoderTest, MatchesReadTraceOnACleanStream) {
  const bool Compress = GetParam();
  const std::string Path = tempPath("decoder-clean.bin");
  const Trace T = racyTrace();
  writeSegmented(T, Path, 3, Compress);
  const std::vector<uint8_t> Bytes = readFileBytes(Path);
  ASSERT_FALSE(Bytes.empty());
  const TraceReadResult Ground = readTrace(Path);
  ASSERT_EQ(Ground.Status, TraceReadStatus::Ok);

  SegmentStreamDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  Decoder.finish();
  std::vector<std::vector<EventRecord>> PerThread;
  drainDecoder(Decoder, PerThread);

  EXPECT_TRUE(Decoder.headerSeen());
  EXPECT_TRUE(Decoder.footerSeen());
  EXPECT_TRUE(Decoder.stats().CleanShutdown);
  EXPECT_FALSE(Decoder.stats().TruncatedTail);
  EXPECT_EQ(Decoder.numTimestampCounters(), T.NumTimestampCounters);
  EXPECT_EQ(Decoder.stats().SegmentsRecovered,
            Ground.Stats.SegmentsRecovered);
  EXPECT_EQ(Decoder.stats().EventsRecovered, Ground.Stats.EventsRecovered);
  EXPECT_EQ(Decoder.bytesConsumed(), Bytes.size());
  EXPECT_TRUE(sameRecords(PerThread, Ground.T.PerThread));
  std::remove(Path.c_str());
}

TEST_P(DecoderTest, ByteAtATimeFeedingIsIdentical) {
  const bool Compress = GetParam();
  const std::string Path = tempPath("decoder-dribble.bin");
  const Trace T = racyTrace();
  writeSegmented(T, Path, 2, Compress);
  const std::vector<uint8_t> Bytes = readFileBytes(Path);
  const TraceReadResult Ground = readTrace(Path);
  ASSERT_EQ(Ground.Status, TraceReadStatus::Ok);

  // The stream arrives one byte per feed() — the worst fragmentation a
  // socket can produce. The result must not differ in any way.
  SegmentStreamDecoder Decoder;
  for (uint8_t Byte : Bytes)
    Decoder.feed(&Byte, 1);
  Decoder.finish();
  std::vector<std::vector<EventRecord>> PerThread;
  drainDecoder(Decoder, PerThread);

  EXPECT_TRUE(Decoder.stats().CleanShutdown);
  EXPECT_EQ(Decoder.stats().SegmentsRecovered,
            Ground.Stats.SegmentsRecovered);
  EXPECT_TRUE(sameRecords(PerThread, Ground.T.PerThread));
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, DecoderTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "v2z" : "v2";
                         });

TEST(SegmentStreamDecoderTest, SalvagesCorruptionExactlyLikeReadTrace) {
  const std::string Path = tempPath("decoder-corrupt.bin");
  const Trace T = racyTrace();
  writeSegmented(T, Path, 2);
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  ASSERT_GT(Bytes.size(), 200u);
  // Smash a run of bytes in the middle of the frame sequence.
  for (size_t I = Bytes.size() / 2; I < Bytes.size() / 2 + 40; ++I)
    Bytes[I] ^= 0xA5;
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  const TraceReadResult Ground = readTrace(Path);
  ASSERT_EQ(Ground.Status, TraceReadStatus::Salvaged);

  for (size_t FeedSize : {Bytes.size(), size_t(7), size_t(1)}) {
    SegmentStreamDecoder Decoder;
    for (size_t At = 0; At < Bytes.size(); At += FeedSize)
      Decoder.feed(Bytes.data() + At,
                   std::min(FeedSize, Bytes.size() - At));
    Decoder.finish();
    std::vector<std::vector<EventRecord>> PerThread;
    drainDecoder(Decoder, PerThread);

    EXPECT_EQ(Decoder.stats().SegmentsRecovered,
              Ground.Stats.SegmentsRecovered)
        << "feed " << FeedSize;
    EXPECT_EQ(Decoder.stats().SegmentsDropped, Ground.Stats.SegmentsDropped)
        << "feed " << FeedSize;
    EXPECT_EQ(Decoder.stats().EventsRecovered, Ground.Stats.EventsRecovered);
    EXPECT_TRUE(sameRecords(PerThread, Ground.T.PerThread))
        << "feed " << FeedSize;
  }
  std::remove(Path.c_str());
}

TEST(SegmentStreamDecoderTest, TruncatedStreamIsAnUncleanTail) {
  const std::string Path = tempPath("decoder-trunc.bin");
  const Trace T = racyTrace();
  writeSegmented(T, Path, 4);
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  // Cut the stream mid-frame, as a crashed client would.
  Bytes.resize(Bytes.size() - Bytes.size() / 3);

  SegmentStreamDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  Decoder.finish();
  EXPECT_FALSE(Decoder.stats().CleanShutdown);
  EXPECT_FALSE(Decoder.footerSeen());
  EXPECT_TRUE(Decoder.stats().TruncatedTail ||
              Decoder.stats().SegmentsDropped > 0);
  // What was decoded before the cut is still intact data.
  std::vector<std::vector<EventRecord>> PerThread;
  drainDecoder(Decoder, PerThread);
  size_t Decoded = 0;
  for (const auto &Stream : PerThread)
    Decoded += Stream.size();
  EXPECT_GT(Decoded, 0u);
  EXPECT_EQ(Decoded, Decoder.stats().EventsRecovered);
  std::remove(Path.c_str());
}

TEST(SegmentStreamDecoderTest, FeedAfterFinishIsIgnored) {
  const std::string Path = tempPath("decoder-after.bin");
  const Trace T = racyTrace();
  writeSegmented(T, Path, 8);
  const std::vector<uint8_t> Bytes = readFileBytes(Path);
  SegmentStreamDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  Decoder.finish();
  const uint64_t Consumed = Decoder.bytesConsumed();
  const uint64_t Events = Decoder.stats().EventsRecovered;
  Decoder.feed(Bytes.data(), Bytes.size());
  Decoder.finish();
  EXPECT_EQ(Decoder.bytesConsumed(), Consumed);
  EXPECT_EQ(Decoder.stats().EventsRecovered, Events);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// CollectorServer over real sockets
//===----------------------------------------------------------------------===//

/// Streams \p Bytes to the server's ingest socket in \p WriteSize slices
/// and closes the connection.
void streamToServer(const std::string &SocketPath,
                    const std::vector<uint8_t> &Bytes, size_t WriteSize) {
  SocketByteOutput Out(SocketPath);
  ASSERT_TRUE(Out.ok());
  size_t At = 0;
  while (At < Bytes.size()) {
    const size_t N = std::min(WriteSize, Bytes.size() - At);
    WriteResult R = Out.write(Bytes.data() + At, N);
    ASSERT_TRUE(R.Written > 0 || R.Transient);
    At += R.Written;
  }
  Out.close();
}

TEST(CollectorServerTest, LiveDetectionMatchesOfflineReplay) {
  const std::string LogPath = tempPath("server-live.bin");
  const std::string SocketPath = tempPath("server-live.sock");
  const Trace T = racyTrace();
  writeSegmented(T, LogPath, 3);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  const RaceReport Offline = detectOffline(T);
  ASSERT_GT(Offline.numStaticRaces(), 0u);

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Triage.RatePerSec = 0; // Unlimited: every update emits.
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // Two concurrent client sessions streaming the same trace, one of them
  // in pathologically small writes.
  std::thread ClientA(
      [&] { streamToServer(SocketPath, Bytes, Bytes.size()); });
  std::thread ClientB([&] { streamToServer(SocketPath, Bytes, 13); });
  ClientA.join();
  ClientB.join();
  Server.waitForSessions(2);
  Server.stop();

  EXPECT_EQ(Server.sessionsAccepted(), 2u);
  EXPECT_EQ(Server.sessionsCompleted(), 2u);

  // Dedup folds both sessions onto the offline race set, with per-race
  // counts doubled and both sessions recorded.
  const std::vector<StaticRace> Expected = Offline.staticRaces();
  const std::vector<TriagedRace> Live = Server.triage().races();
  ASSERT_EQ(Live.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Live[I].Key, Expected[I].Key);
    EXPECT_EQ(Live[I].DynamicCount, 2 * Expected[I].DynamicCount);
    EXPECT_EQ(Live[I].Sessions, 2u);
    EXPECT_EQ(Live[I].SawWriteWrite, Expected[I].SawWriteWrite);
  }

  // Both sessions decoded cleanly (footer at EOF).
  for (const SessionStatus &S : Server.sessionStatuses()) {
    EXPECT_FALSE(S.Active);
    EXPECT_TRUE(S.Clean);
    EXPECT_EQ(S.Bytes, Bytes.size());
    EXPECT_EQ(S.SegmentsDropped, 0u);
  }
  std::remove(LogPath.c_str());
}

TEST(CollectorServerTest, ShardedSessionsMatchSerialDetection) {
  const std::string LogPath = tempPath("server-sharded.bin");
  const std::string SocketPath = tempPath("server-sharded.sock");
  const Trace T = racyTrace();
  writeSegmented(T, LogPath, 3);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  const RaceReport Offline = detectOffline(T);

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Shards = 2; // Per-shard reports merge at session end.
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  streamToServer(SocketPath, Bytes, 64);
  Server.waitForSessions(1);
  Server.stop();

  const std::vector<StaticRace> Expected = Offline.staticRaces();
  const std::vector<TriagedRace> Live = Server.triage().races();
  ASSERT_EQ(Live.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Live[I].Key, Expected[I].Key);
    EXPECT_EQ(Live[I].DynamicCount, Expected[I].DynamicCount);
  }
  std::remove(LogPath.c_str());
}

TEST(CollectorServerTest, TruncatedConnectionSalvagesAndCompletes) {
  const std::string LogPath = tempPath("server-cut.bin");
  const std::string SocketPath = tempPath("server-cut.sock");
  const Trace T = racyTrace();
  writeSegmented(T, LogPath, 4);
  std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  Bytes.resize(Bytes.size() / 2); // Client "crashes" mid-stream.

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  streamToServer(SocketPath, Bytes, Bytes.size());
  // The daemon must not hang on the gap-ridden session.
  Server.waitForSessions(1);
  Server.stop();

  const std::vector<SessionStatus> Sessions = Server.sessionStatuses();
  ASSERT_EQ(Sessions.size(), 1u);
  EXPECT_FALSE(Sessions[0].Clean);
  EXPECT_GT(Sessions[0].Events, 0u) << "intact prefix frames still count";
  std::remove(LogPath.c_str());
}

TEST(CollectorServerTest, HttpRoutesServeValidDocuments) {
  const std::string LogPath = tempPath("server-http.bin");
  const std::string SocketPath = tempPath("server-http.sock");
  const Trace T = racyTrace();
  writeSegmented(T, LogPath, 8);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  streamToServer(SocketPath, Bytes, 256);
  Server.waitForSessions(1);

  std::string Body, ContentType;
  ASSERT_TRUE(Server.route("/metrics", Body, ContentType));
  EXPECT_NE(ContentType.find("text/plain"), std::string::npos);
  EXPECT_TRUE(telemetry::validatePrometheusText(Body, &Error))
      << Error << Body;
  EXPECT_NE(Body.find("literace_collector_sessions_completed_total 1"),
            std::string::npos)
      << Body;
  EXPECT_NE(Body.find("literace_capture_info"), std::string::npos);

  ASSERT_TRUE(Server.route("/status", Body, ContentType));
  EXPECT_NE(ContentType.find("application/json"), std::string::npos);
  EXPECT_NE(Body.find("\"schema\": \"literace.status.v1\""),
            std::string::npos);
  EXPECT_NE(Body.find("\"completed\": 1"), std::string::npos);

  ASSERT_TRUE(Server.route("/races", Body, ContentType));
  EXPECT_NE(Body.find("\"schema\": \"literace.races.v1\""),
            std::string::npos);
  EXPECT_NE(Body.find("\"first_site\": \"fn3:9\""), std::string::npos)
      << Body;

  // / serves the status document too; unknown paths are a 404.
  EXPECT_TRUE(Server.route("/", Body, ContentType));
  EXPECT_FALSE(Server.route("/nonexistent", Body, ContentType));
  Server.stop();
  std::remove(LogPath.c_str());
}

TEST(CollectorServerTest, SuppressionSilencesExactlyItsRace) {
  const std::string LogPath = tempPath("server-supp.bin");
  const std::string SocketPath = tempPath("server-supp.sock");
  const Trace T = racyTrace();
  writeSegmented(T, LogPath, 3);
  const std::vector<uint8_t> Bytes = readFileBytes(LogPath);
  const RaceReport Offline = detectOffline(T);
  const std::vector<StaticRace> Expected = Offline.staticRaces();
  ASSERT_GE(Expected.size(), 2u) << "need one race to suppress, one to keep";

  // Suppress exactly the first offline race by its two concrete sites.
  SuppressionSet Suppressions;
  char Text[256];
  std::snprintf(Text, sizeof(Text),
                "{\n  triaged-benign\n  LiteRace:Race\n"
                "  site:fn%u:%u\n  site:fn%u:%u\n}\n",
                pcFunction(Expected[0].Key.first),
                pcSite(Expected[0].Key.first),
                pcFunction(Expected[0].Key.second),
                pcSite(Expected[0].Key.second));
  std::string Error;
  ASSERT_TRUE(Suppressions.parse(Text, &Error)) << Error;

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = SocketPath;
  Config.Suppressions = &Suppressions;
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  ASSERT_TRUE(Server.start(&Error)) << Error;
  streamToServer(SocketPath, Bytes, 128);
  Server.waitForSessions(1);
  Server.stop();

  const std::vector<TriagedRace> Live = Server.triage().races();
  ASSERT_EQ(Live.size(), Expected.size());
  EXPECT_TRUE(Live[0].Suppressed);
  EXPECT_EQ(Live[0].SuppressionName, "triaged-benign");
  for (size_t I = 1; I < Live.size(); ++I)
    EXPECT_FALSE(Live[I].Suppressed) << "suppression hit an unrelated race";
  EXPECT_EQ(Server.triage().unsuppressedRaces(), Expected.size() - 1);
  EXPECT_EQ(Server.triage().suppressedSightings(),
            Expected[0].DynamicCount);
  EXPECT_EQ(Suppressions.hits(0), Expected[0].DynamicCount);
  std::remove(LogPath.c_str());
}

TEST(CollectorServerTest, StopWithoutStartIsSafe) {
  CollectorConfig Config;
  Config.IngestSocketPath = tempPath("never-started.sock");
  CollectorServer Server(std::move(Config));
  Server.stop();
  Server.waitForSessions(1); // Must not hang: stop() wakes waiters.
  EXPECT_EQ(Server.sessionsAccepted(), 0u);
}

} // namespace
