//===-- tests/HBDetectorTest.cpp - Happens-before detection ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Encodes the paper's Figure 1 (properly vs improperly synchronized
// accesses), Figure 2 (why sync events must never be sampled), Table 1's
// synchronization kinds, and the detector's shadow-state behaviors as
// deterministic replay scenarios.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"

#include "detector/LogBuilder.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr SyncVar L = makeSyncVar(SyncObjectKind::Mutex, 0x1000);
constexpr SyncVar L2 = makeSyncVar(SyncObjectKind::Mutex, 0x2000);
constexpr SyncVar E = makeSyncVar(SyncObjectKind::Event, 0x3000);
constexpr SyncVar ForkT1 = makeSyncVar(SyncObjectKind::ThreadFork, 1);
constexpr SyncVar ExitT1 = makeSyncVar(SyncObjectKind::ThreadExit, 1);
constexpr SyncVar CasVar = makeSyncVar(SyncObjectKind::Atomic, 0x4000);

constexpr uint64_t X = 0xdead0;
constexpr Pc PcW1 = makePc(1, 10);
constexpr Pc PcW2 = makePc(2, 20);
constexpr Pc PcR1 = makePc(3, 30);

/// Runs detection over a built trace, asserting the log is consistent.
RaceReport detect(const LogBuilder &B) {
  RaceReport Report;
  EXPECT_TRUE(detectRaces(B.build(), Report));
  return Report;
}

// --- Figure 1, left: properly synchronized writes -> no race. ---
TEST(HBDetectorTest, Figure1LeftMutexOrderedWritesDoNotRace) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcW1).unlock(L);
  B.onThread(1).lock(L).write(X, PcW2).unlock(L);
  RaceReport R = detect(B);
  EXPECT_EQ(R.numStaticRaces(), 0u);
}

// --- Figure 1, right: unsynchronized writes -> data race. ---
TEST(HBDetectorTest, Figure1RightUnsynchronizedWritesRace) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcW1).unlock(L);
  B.onThread(1).write(X, PcW2); // No synchronization at all.
  RaceReport R = detect(B);
  EXPECT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(PcW1, PcW2));
}

// --- Figure 2: if the second thread's lock/unlock ARE logged, the
// happens-before edge exists and no false race is reported; dropping the
// sync events (as a sampler would) fabricates one. ---
TEST(HBDetectorTest, Figure2SyncLoggingPreventsFalsePositive) {
  LogBuilder WithSync(16);
  WithSync.onThread(0).lock(L).write(X, PcW1).unlock(L);
  WithSync.onThread(1).lock(L).write(X, PcW2).unlock(L);
  EXPECT_EQ(detect(WithSync).numStaticRaces(), 0u);

  // Same execution, but thread 1's sync operations were not logged: the
  // detector now reports a FALSE race — which is why LiteRace never
  // samples synchronization (§3.2).
  LogBuilder Dropped(16);
  Dropped.onThread(0).lock(L).write(X, PcW1).unlock(L);
  Dropped.onThread(1).write(X, PcW2);
  EXPECT_EQ(detect(Dropped).numStaticRaces(), 1u);
}

// --- HB1: program order within one thread never races. ---
TEST(HBDetectorTest, ProgramOrderNeverRaces) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1).read(X, PcR1).write(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

// --- HB3: transitivity through two different locks. ---
TEST(HBDetectorTest, TransitivityThroughChainedLocks) {
  LogBuilder B(16);
  // T0: write X; unlock L. T1: lock L; unlock L2. T2: lock L2; write X.
  // T0's write reaches T2 through two hops.
  B.onThread(0).write(X, PcW1).release(L);
  B.onThread(1).acquire(L).release(L2);
  B.onThread(2).acquire(L2).write(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

TEST(HBDetectorTest, DifferentLocksDoNotOrder) {
  LogBuilder B(1024);
  B.onThread(0).lock(L).write(X, PcW1).unlock(L);
  B.onThread(1).lock(L2).write(X, PcW2).unlock(L2);
  RaceReport R = detect(B);
  EXPECT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(PcW1, PcW2));
}

// --- Read/read pairs never conflict. ---
TEST(HBDetectorTest, ConcurrentReadsDoNotRace) {
  LogBuilder B(16);
  B.onThread(0).read(X, PcR1);
  B.onThread(1).read(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

TEST(HBDetectorTest, WriteReadConflictRaces) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1);
  B.onThread(1).read(X, PcR1);
  RaceReport R = detect(B);
  ASSERT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(PcW1, PcR1));
  auto Races = R.staticRaces();
  EXPECT_FALSE(Races[0].SawWriteWrite);
}

TEST(HBDetectorTest, ReadThenWriteConflictRaces) {
  LogBuilder B(16);
  B.onThread(0).read(X, PcR1);
  B.onThread(1).write(X, PcW1);
  EXPECT_TRUE(detect(B).contains(PcR1, PcW1));
}

// --- Wait/notify (Table 1): release before notify, acquire after wait. ---
TEST(HBDetectorTest, EventNotifyOrdersWaiter) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1).release(E); // set()
  B.onThread(1).acquire(E).write(X, PcW2); // wait()
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

TEST(HBDetectorTest, AccessBeforeNotifyStillRacesWithPreWaitAccess) {
  LogBuilder B(16);
  // T1's write happens before it waits: nothing orders it with T0's.
  B.onThread(1).write(X, PcW2);
  B.onThread(0).write(X, PcW1).release(E);
  B.onThread(1).acquire(E);
  EXPECT_EQ(detect(B).numStaticRaces(), 1u);
}

// --- Fork/join (Table 1). ---
TEST(HBDetectorTest, ForkOrdersParentBeforeChild) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1).release(ForkT1);
  B.onThread(1).threadStart().acquire(ForkT1).write(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

TEST(HBDetectorTest, JoinOrdersChildBeforeParent) {
  LogBuilder B(16);
  B.onThread(1).write(X, PcW1).release(ExitT1).threadEnd();
  B.onThread(0).acquire(ExitT1).write(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

TEST(HBDetectorTest, SiblingsAreUnorderedWithoutJoin) {
  constexpr SyncVar ForkT2 = makeSyncVar(SyncObjectKind::ThreadFork, 2);
  LogBuilder B(1024);
  B.onThread(0).release(ForkT1).release(ForkT2);
  B.onThread(1).acquire(ForkT1).write(X, PcW1);
  B.onThread(2).acquire(ForkT2).write(X, PcW2);
  RaceReport R = detect(B);
  EXPECT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(PcW1, PcW2));
}

// --- Atomic compare-and-exchange used as a hand-rolled lock (§4.2). ---
TEST(HBDetectorTest, AtomicAcqRelChainsOrderAccesses) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1).acqRel(CasVar); // "unlock" via CAS
  B.onThread(1).acqRel(CasVar).write(X, PcW2); // "lock" via CAS
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

// --- Allocation recycling (§4.3). ---
TEST(HBDetectorTest, AllocationEventsOrderRecycledMemory) {
  SyncVar Page = makeSyncVar(SyncObjectKind::Page, X >> 12);
  LogBuilder B(16);
  // T0 uses X, frees its page; T1 allocates the same page and reuses X.
  B.onThread(0).write(X, PcW1).free(Page);
  B.onThread(1).alloc(Page).write(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

TEST(HBDetectorTest, WithoutAllocationEventsRecyclingLooksRacy) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1);
  B.onThread(1).write(X, PcW2);
  EXPECT_EQ(detect(B).numStaticRaces(), 1u);
}

// --- Release does not retroactively order earlier accesses. ---
TEST(HBDetectorTest, AccessAfterUnlockIsNotProtected) {
  LogBuilder B(16);
  B.onThread(0).lock(L).unlock(L).write(X, PcW1); // Write AFTER unlock.
  B.onThread(1).lock(L).write(X, PcW2).unlock(L);
  // T1's lock only acquires what T0 published at its unlock — which
  // happened before T0's write.
  EXPECT_EQ(detect(B).numStaticRaces(), 1u);
}

// --- Epoch semantics: a write just before a release is still published.
TEST(HBDetectorTest, AccessImmediatelyBeforeReleaseIsPublished) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcW1).unlock(L);
  B.onThread(1).lock(L).read(X, PcR1).unlock(L);
  EXPECT_EQ(detect(B).numStaticRaces(), 0u);
}

// --- Shadow-state behaviors. ---
TEST(HBDetectorTest, MultipleRacingThreadsAllReported) {
  LogBuilder B(1024);
  B.onThread(0).write(X, PcW1);
  B.onThread(1).write(X, PcW2);
  B.onThread(2).write(X, PcR1);
  RaceReport R = detect(B);
  // (0,1), (0,2), (1,2): all pairwise races, three distinct site pairs.
  EXPECT_EQ(R.numStaticRaces(), 3u);
  EXPECT_EQ(R.numDynamicSightings(), 3u);
}

TEST(HBDetectorTest, ReadsDoNotPruneWrites) {
  LogBuilder B(16);
  // T0 writes X, then T1 reads X ordered-after via L. A later unordered
  // READ by T2 must still race with T0's WRITE even though T1's ordered
  // read came in between.
  B.onThread(0).write(X, PcW1).release(L);
  B.onThread(1).acquire(L).read(X, PcR1);
  B.onThread(2).read(X, PcW2);
  RaceReport R = detect(B);
  ASSERT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(PcW1, PcW2));
}

TEST(HBDetectorTest, DominatedWritePruningKeepsDetection) {
  LogBuilder B(16);
  // T0 writes, T1 writes ordered-after (prunes T0's entry). T2 unordered
  // with both: the race is reported against T1's (later) write — same
  // bug, different witness, as in any epoch-based detector.
  B.onThread(0).write(X, PcW1).release(L);
  B.onThread(1).acquire(L).write(X, PcW2);
  B.onThread(2).write(X, PcR1);
  RaceReport R = detect(B);
  EXPECT_TRUE(R.contains(PcW2, PcR1));
}

TEST(HBDetectorTest, SampledViewNeverAddsRaces) {
  // Property: for every trace, the races found on a sampler-filtered view
  // are a subset of the full-log races (sampling -> false negatives only,
  // §3.1/§3.2).
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcW1, FullLogMaskBit | 1).unlock(L)
      .write(X + 8, PcW2, FullLogMaskBit | 1);
  B.onThread(1).write(X, PcW2, FullLogMaskBit)
      .write(X + 8, PcR1, FullLogMaskBit | 1).lock(L).unlock(L);
  Trace T = B.build();

  RaceReport Full, Sampled;
  EXPECT_TRUE(detectRaces(T, Full));
  ReplayOptions Options;
  Options.SamplerSlot = 0;
  EXPECT_TRUE(detectRaces(T, Sampled, Options));

  for (const StaticRaceKey &Key : Sampled.keys())
    EXPECT_TRUE(Full.keys().count(Key))
        << "sampled view fabricated a race";
  EXPECT_LE(Sampled.numStaticRaces(), Full.numStaticRaces());
}

TEST(HBDetectorTest, CoverageGapBarriersPopulatedShadowTable) {
  // Populate shadow state across several distinct pages of the flat
  // table (addresses far enough apart to land in different 2^9-slot
  // pages), then hit a timestamp gap, then touch every address again
  // from another thread. The gap barrier must order all post-gap
  // accesses after the pre-gap state already in the table, so nothing
  // is reported — while the pre-gap state itself stays intact.
  constexpr unsigned NumAddrs = 24;
  LogBuilder B(16);
  B.onThread(0);
  for (unsigned I = 0; I != NumAddrs; ++I)
    B.write(X + I * 0x10000, PcW1); // One page apart each.
  B.onThread(0).acquire(L);
  B.skipTimestamps(L); // A draw lost with a dropped segment.
  B.onThread(1).acquire(L);
  B.onThread(1);
  for (unsigned I = 0; I != NumAddrs; ++I)
    B.write(X + I * 0x10000, PcW2);

  ReplayOptions Opts;
  Opts.AllowTimestampGaps = true;
  RaceReport Report;
  HBDetector D(Report);
  EXPECT_TRUE(replayTraceWith(B.build(), D, Opts));
  EXPECT_EQ(D.coverageGaps(), 1u);
  EXPECT_EQ(Report.numStaticRaces(), 0u) << Report.describe();
  // Every address still has exactly one shadow slot: the barrier
  // suppresses reports without wiping or duplicating table state.
  EXPECT_EQ(D.shadowAddressCount(), NumAddrs);
}

TEST(HBDetectorTest, CountsEventsProcessed) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcW1).read(X, PcR1).lock(L).unlock(L);
  RaceReport Report;
  HBDetector D(Report);
  EXPECT_TRUE(replayTrace(B.build(), D));
  EXPECT_EQ(D.memoryEventsProcessed(), 2u);
  EXPECT_EQ(D.syncEventsProcessed(), 2u);
  EXPECT_EQ(D.shadowAddressCount(), 1u);
}

} // namespace
