//===-- tests/EventLogTest.cpp - Log sinks and file format -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/EventLog.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>

using namespace literace;

namespace {

EventRecord makeRead(ThreadId Tid, uint64_t Addr, uint16_t Mask = 0x8000) {
  EventRecord R;
  R.Kind = EventKind::Read;
  R.Tid = Tid;
  R.Addr = Addr;
  R.Mask = Mask;
  return R;
}

EventRecord makeAcquire(ThreadId Tid, SyncVar S, uint64_t Ts) {
  EventRecord R;
  R.Kind = EventKind::Acquire;
  R.Tid = Tid;
  R.Addr = S;
  R.Ts = Ts;
  return R;
}

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

TEST(MemorySinkTest, ReassemblesPerThreadStreams) {
  MemorySink Sink(64);
  EventRecord A = makeRead(0, 0x10);
  EventRecord B = makeRead(1, 0x20);
  EventRecord C = makeRead(0, 0x30);
  Sink.writeChunk(0, &A, 1);
  Sink.writeChunk(1, &B, 1);
  Sink.writeChunk(0, &C, 1);

  Trace T = Sink.takeTrace();
  EXPECT_EQ(T.NumTimestampCounters, 64u);
  ASSERT_EQ(T.PerThread.size(), 2u);
  ASSERT_EQ(T.PerThread[0].size(), 2u);
  EXPECT_EQ(T.PerThread[0][0].Addr, 0x10u);
  EXPECT_EQ(T.PerThread[0][1].Addr, 0x30u);
  ASSERT_EQ(T.PerThread[1].size(), 1u);
  EXPECT_EQ(T.PerThread[1][0].Addr, 0x20u);
}

TEST(MemorySinkTest, TakeTraceDrainsTheSink) {
  MemorySink Sink;
  EventRecord A = makeRead(0, 0x10);
  Sink.writeChunk(0, &A, 1);
  Trace First = Sink.takeTrace();
  EXPECT_EQ(First.totalEvents(), 1u);
  Trace Second = Sink.takeTrace();
  EXPECT_EQ(Second.totalEvents(), 0u);
}

TEST(MemorySinkTest, CountsBytes) {
  MemorySink Sink;
  EventRecord Records[3] = {makeRead(0, 1), makeRead(0, 2), makeRead(0, 3)};
  Sink.writeChunk(0, Records, 3);
  EXPECT_EQ(Sink.bytesWritten(), 3 * sizeof(EventRecord));
}

TEST(TraceTest, CountsByKind) {
  Trace T;
  T.PerThread.resize(2);
  T.PerThread[0].push_back(makeRead(0, 0x10, 0x8001));
  T.PerThread[0].push_back(
      makeAcquire(0, makeSyncVar(SyncObjectKind::Mutex, 1), 1));
  T.PerThread[1].push_back(makeRead(1, 0x20, 0x8002));
  EXPECT_EQ(T.totalEvents(), 3u);
  EXPECT_EQ(T.memoryOps(), 2u);
  EXPECT_EQ(T.syncOps(), 1u);
  EXPECT_EQ(T.memoryOpsForSlot(0), 1u);
  EXPECT_EQ(T.memoryOpsForSlot(1), 1u);
  EXPECT_EQ(T.memoryOpsForSlot(2), 0u);
}

TEST(FileSinkTest, RoundTripsThroughDisk) {
  std::string Path = tempPath("roundtrip.bin");
  {
    FileSink Sink(Path, 32);
    ASSERT_TRUE(Sink.ok());
    EventRecord A[2] = {makeRead(0, 0x10), makeRead(0, 0x20)};
    EventRecord B = makeAcquire(1, makeSyncVar(SyncObjectKind::Event, 7), 5);
    Sink.writeChunk(0, A, 2);
    Sink.writeChunk(1, &B, 1);
    Sink.close();
  }
  auto T = readTraceFile(Path);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->NumTimestampCounters, 32u);
  ASSERT_EQ(T->PerThread.size(), 2u);
  EXPECT_EQ(T->PerThread[0].size(), 2u);
  EXPECT_EQ(T->PerThread[0][1].Addr, 0x20u);
  EXPECT_EQ(T->PerThread[1][0].Ts, 5u);
  EXPECT_EQ(T->PerThread[1][0].Kind, EventKind::Acquire);
  std::remove(Path.c_str());
}

TEST(FileSinkTest, ChunksFromSameThreadStayOrdered) {
  std::string Path = tempPath("ordered.bin");
  {
    FileSink Sink(Path);
    for (uint64_t I = 0; I != 100; ++I) {
      EventRecord R = makeRead(0, I);
      Sink.writeChunk(0, &R, 1);
    }
  }
  auto T = readTraceFile(Path);
  ASSERT_TRUE(T.has_value());
  ASSERT_EQ(T->PerThread[0].size(), 100u);
  for (uint64_t I = 0; I != 100; ++I)
    EXPECT_EQ(T->PerThread[0][I].Addr, I);
  std::remove(Path.c_str());
}

TEST(FileSinkTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(readTraceFile("/nonexistent/literace.bin").has_value());
}

TEST(FileSinkTest, RejectsBadMagic) {
  std::string Path = tempPath("badmagic.bin");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  const char Garbage[64] = "this is not a literace log";
  std::fwrite(Garbage, 1, sizeof(Garbage), F);
  std::fclose(F);
  EXPECT_FALSE(readTraceFile(Path).has_value());
  std::remove(Path.c_str());
}

TEST(FileSinkTest, RejectsTruncatedChunk) {
  std::string Path = tempPath("truncated.bin");
  {
    FileSink Sink(Path);
    EventRecord A[4] = {makeRead(0, 1), makeRead(0, 2), makeRead(0, 3),
                        makeRead(0, 4)};
    Sink.writeChunk(0, A, 4);
  }
  // Chop the last record off.
  std::FILE *F = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  ASSERT_EQ(0, std::fclose(F));
  ASSERT_EQ(0, truncate(Path.c_str(), Size - 8));
  EXPECT_FALSE(readTraceFile(Path).has_value());
  std::remove(Path.c_str());
}

TEST(FileSinkTest, RejectsZeroTimestampCounters) {
  // NumTimestampCounters == 0 would divide-by-zero downstream in replay;
  // the reader must refuse it outright.
  std::string Path = tempPath("zerocounters.bin");
  {
    FileSink Sink(Path, 32);
    EventRecord A = makeRead(0, 1);
    Sink.writeChunk(0, &A, 1);
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  const uint32_t Zero = 0;
  std::fseek(F, 12, SEEK_SET); // FileHeader::NumTimestampCounters.
  std::fwrite(&Zero, sizeof(Zero), 1, F);
  std::fclose(F);
  EXPECT_FALSE(readTraceFile(Path).has_value());
  std::remove(Path.c_str());
}

TEST(FileSinkTest, RejectsChunkCountLargerThanTheFile) {
  // A corrupt chunk count must not drive a multi-gigabyte allocation; the
  // reader bounds every count by the bytes actually present.
  std::string Path = tempPath("hugecount.bin");
  {
    FileSink Sink(Path, 32);
    EventRecord A = makeRead(0, 1);
    Sink.writeChunk(0, &A, 1);
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  const uint32_t Huge = 0x40000000u;
  std::fseek(F, 20, SEEK_SET); // ChunkHeader::Count of the first chunk.
  std::fwrite(&Huge, sizeof(Huge), 1, F);
  std::fclose(F);
  EXPECT_FALSE(readTraceFile(Path).has_value());
  std::remove(Path.c_str());
}

TEST(FileSinkTest, SalvageSkipsChunksWithInvalidKinds) {
  std::string Path = tempPath("badkind.bin");
  {
    FileSink Sink(Path, 32);
    EventRecord A = makeRead(0, 0x10);
    EventRecord B = makeRead(0, 0x20);
    EventRecord C = makeRead(0, 0x30);
    Sink.writeChunk(0, &A, 1);
    Sink.writeChunk(0, &B, 1);
    Sink.writeChunk(0, &C, 1);
  }
  // Corrupt the middle chunk's record kind. The strict reader refuses the
  // file; salvage drops just that chunk (framing is still trustworthy).
  std::FILE *F = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  // Layout: 16 header + per chunk (8 chunk header + 32 record). Kind is
  // at offset 28 within the record.
  std::fseek(F, 16 + 40 + 8 + 28, SEEK_SET);
  const uint8_t BadKind = 0xee;
  std::fwrite(&BadKind, 1, 1, F);
  std::fclose(F);
  EXPECT_FALSE(readTraceFile(Path).has_value());
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged);
  EXPECT_EQ(R.Stats.EventsRecovered, 2u);
  EXPECT_EQ(R.Stats.SegmentsDropped, 1u);
  ASSERT_EQ(R.T.PerThread.size(), 1u);
  ASSERT_EQ(R.T.PerThread[0].size(), 2u);
  EXPECT_EQ(R.T.PerThread[0][0].Addr, 0x10u);
  EXPECT_EQ(R.T.PerThread[0][1].Addr, 0x30u);
  std::remove(Path.c_str());
}

TEST(ReadTraceTest, MissingAndGarbageFilesAreUnreadable) {
  TraceReadResult Missing = readTrace("/nonexistent/literace.bin");
  EXPECT_EQ(Missing.Status, TraceReadStatus::Unreadable);
  EXPECT_FALSE(Missing.Error.empty());

  std::string Path = tempPath("readtrace_garbage.bin");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  for (int I = 0; I != 1024; ++I)
    std::fputc(I & 0xff, F);
  std::fclose(F);
  TraceReadResult Garbage = readTrace(Path);
  EXPECT_EQ(Garbage.Status, TraceReadStatus::Unreadable);
  std::remove(Path.c_str());
}

TEST(NullSinkTest, CountsButDiscards) {
  NullSink Sink;
  EventRecord A[5] = {};
  Sink.writeChunk(3, A, 5);
  EXPECT_EQ(Sink.bytesWritten(), 5 * sizeof(EventRecord));
}

TEST(EventRecordTest, LayoutIsStable) {
  // The on-disk format depends on this layout.
  EXPECT_EQ(sizeof(EventRecord), 32u);
}

} // namespace
