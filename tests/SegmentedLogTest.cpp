//===-- tests/SegmentedLogTest.cpp - v2 segmented format + salvage ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The crash-consistency contract of the v2 segmented log
// (docs/ROBUSTNESS.md), checked exhaustively: round trips, truncation at
// EVERY byte offset, seeded bit flips, exact drop accounting, and the
// detection subset property — races reported from a salvaged trace are a
// subset of the full-trace report.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "runtime/CompressedLog.h"

#include <algorithm>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace literace;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

void writeFileBytes(const std::string &Path, const uint8_t *Data,
                    size_t Size) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Data, 1, Size, F), Size);
  std::fclose(F);
}

/// Writes \p T through a SegmentedFileSink in round-robin chunks of
/// \p ChunkEvents, so consecutive frames alternate between threads and a
/// truncation hurts everyone.
void writeSegmented(const Trace &T, const std::string &Path,
                    size_t ChunkEvents, bool Compress = false) {
  SegmentedFileSink::Options Opts;
  Opts.Compress = Compress;
  SegmentedFileSink Sink(Path, T.NumTimestampCounters, Opts);
  ASSERT_TRUE(Sink.ok());
  std::vector<size_t> Next(T.PerThread.size(), 0);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
      const auto &Stream = T.PerThread[Tid];
      if (Next[Tid] >= Stream.size())
        continue;
      const size_t N = std::min(ChunkEvents, Stream.size() - Next[Tid]);
      Sink.writeChunk(static_cast<ThreadId>(Tid),
                      Stream.data() + Next[Tid], N);
      Next[Tid] += N;
      Progress = true;
    }
  }
  ASSERT_TRUE(Sink.close());
}

/// A three-thread trace mixing proper synchronization (no race on X) with
/// unprotected sharing (races on Y and Z), plus enough sync traffic that
/// truncations land between sync operations.
Trace buildRacyTrace() {
  const SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 1);
  const SyncVar N = makeSyncVar(SyncObjectKind::Mutex, 2);
  LogBuilder B(16);
  B.onThread(0).threadStart();
  B.onThread(1).threadStart();
  B.onThread(2).threadStart();
  for (unsigned I = 0; I != 12; ++I) {
    B.onThread(0).lock(M).write(0x100, 10).unlock(M).write(0x200 + I, 11);
    B.onThread(1).lock(M).write(0x100, 20).unlock(M).write(0x200 + I, 21);
    B.onThread(2).lock(N).read(0x300, 30).unlock(N).write(0x400, 31);
    B.onThread(0).read(0x400, 12);
  }
  B.onThread(0).threadEnd();
  B.onThread(1).threadEnd();
  B.onThread(2).threadEnd();
  return B.build();
}

TEST(SegmentedLogTest, RoundTripsRawPayloads) {
  std::string Path = tempPath("seg_roundtrip.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8);
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Ok) << R.Error;
  EXPECT_EQ(R.Stats.Format, TraceFormat::V2Segmented);
  EXPECT_TRUE(R.Stats.CleanShutdown);
  EXPECT_EQ(R.Stats.SegmentsDropped, 0u);
  EXPECT_EQ(R.T.NumTimestampCounters, T.NumTimestampCounters);
  ASSERT_EQ(R.T.PerThread.size(), T.PerThread.size());
  for (size_t I = 0; I != T.PerThread.size(); ++I) {
    ASSERT_EQ(R.T.PerThread[I].size(), T.PerThread[I].size()) << I;
    for (size_t J = 0; J != T.PerThread[I].size(); ++J) {
      EXPECT_EQ(R.T.PerThread[I][J].Addr, T.PerThread[I][J].Addr);
      EXPECT_EQ(R.T.PerThread[I][J].Ts, T.PerThread[I][J].Ts);
      EXPECT_EQ(R.T.PerThread[I][J].Kind, T.PerThread[I][J].Kind);
    }
  }
  std::remove(Path.c_str());
}

TEST(SegmentedLogTest, RoundTripsCompressedPayloads) {
  std::string Path = tempPath("seg_roundtrip_z.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8, /*Compress=*/true);
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Ok) << R.Error;
  ASSERT_EQ(R.T.totalEvents(), T.totalEvents());
  for (size_t I = 0; I != T.PerThread.size(); ++I)
    ASSERT_EQ(R.T.PerThread[I].size(), T.PerThread[I].size()) << I;
  std::remove(Path.c_str());
}

TEST(SegmentedLogTest, AbandonKeepsEverythingButTheFooter) {
  std::string Path = tempPath("seg_abandon.bin");
  Trace T = buildRacyTrace();
  {
    SegmentedFileSink Sink(Path, T.NumTimestampCounters);
    ASSERT_TRUE(Sink.ok());
    for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
      Sink.writeChunk(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                      T.PerThread[Tid].size());
    Sink.abandon(); // Simulated crash: no footer.
  }
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged);
  EXPECT_FALSE(R.Stats.CleanShutdown);
  EXPECT_FALSE(R.Stats.TruncatedTail);
  EXPECT_EQ(R.Stats.SegmentsDropped, 0u);
  EXPECT_EQ(R.T.totalEvents(), T.totalEvents());
  std::remove(Path.c_str());
}

TEST(SegmentedLogTest, ScanSegmentsInventoriesEveryFrame) {
  std::string Path = tempPath("seg_scan.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8);
  std::vector<SegmentInfo> Inventory = scanSegments(Path);
  ASSERT_GE(Inventory.size(), 2u);
  uint64_t Events = 0;
  for (const SegmentInfo &S : Inventory) {
    EXPECT_TRUE(S.HeaderOk);
    EXPECT_TRUE(S.PayloadOk);
    if (!S.IsFooter)
      Events += S.EventCount;
  }
  EXPECT_TRUE(Inventory.back().IsFooter);
  EXPECT_EQ(Events, T.totalEvents());
  std::remove(Path.c_str());
}

// The heart of the robustness contract: cut the file at EVERY byte
// offset. The salvage reader must never crash, recovered events must be
// monotone in the cut position, and drop accounting must be exact: a cut
// strictly inside frame k recovers frames 0..k-1 and reports exactly one
// dropped segment with a truncated tail; a cut on a frame boundary drops
// nothing and reports only the missing clean-shutdown marker.
TEST(SegmentedLogTest, TruncationAtEveryOffsetIsExactAndMonotone) {
  std::string Path = tempPath("seg_full.bin");
  std::string CutPath = tempPath("seg_cut.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8);
  const std::vector<uint8_t> Full = readFileBytes(Path);
  ASSERT_FALSE(Full.empty());

  // Frame boundaries and per-frame cumulative event counts, from the
  // (trusted, just-written) inventory.
  std::vector<SegmentInfo> Inventory = scanSegments(Path);
  std::vector<uint64_t> FrameStart, EventsBefore;
  uint64_t Cumulative = 0;
  for (const SegmentInfo &S : Inventory) {
    FrameStart.push_back(S.Offset);
    EventsBefore.push_back(Cumulative);
    if (!S.IsFooter)
      Cumulative += S.EventCount;
  }
  FrameStart.push_back(Full.size());
  EventsBefore.push_back(Cumulative);

  uint64_t PrevRecovered = 0;
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    writeFileBytes(CutPath, Full.data(), Cut);
    TraceReadResult R = readTrace(CutPath);
    const uint64_t Recovered = R.Stats.EventsRecovered;
    EXPECT_GE(Recovered, PrevRecovered) << "cut=" << Cut;
    PrevRecovered = Recovered;
    if (Cut < 16) { // Inside the file header: nothing recoverable.
      EXPECT_EQ(R.Status, TraceReadStatus::Unreadable) << "cut=" << Cut;
      continue;
    }
    ASSERT_TRUE(R.readable()) << "cut=" << Cut;
    // Find the frame this cut lands in.
    const size_t K =
        static_cast<size_t>(std::upper_bound(FrameStart.begin(),
                                             FrameStart.end(), Cut) -
                            FrameStart.begin()) -
        1;
    EXPECT_EQ(Recovered, EventsBefore[K]) << "cut=" << Cut;
    if (Cut == Full.size()) {
      EXPECT_EQ(R.Status, TraceReadStatus::Ok);
    } else if (Cut == FrameStart[K]) { // Exactly on a boundary.
      EXPECT_EQ(R.Stats.SegmentsDropped, 0u) << "cut=" << Cut;
      EXPECT_FALSE(R.Stats.TruncatedTail) << "cut=" << Cut;
      EXPECT_FALSE(R.Stats.CleanShutdown) << "cut=" << Cut;
    } else { // Strictly inside frame K.
      EXPECT_EQ(R.Stats.SegmentsDropped, 1u) << "cut=" << Cut;
      EXPECT_TRUE(R.Stats.TruncatedTail) << "cut=" << Cut;
    }
  }
  std::remove(Path.c_str());
  std::remove(CutPath.c_str());
}

TEST(SegmentedLogTest, TruncationOfCompressedPayloadsStaysMonotone) {
  std::string Path = tempPath("segz_full.bin");
  std::string CutPath = tempPath("segz_cut.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8, /*Compress=*/true);
  const std::vector<uint8_t> Full = readFileBytes(Path);
  uint64_t PrevRecovered = 0;
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    writeFileBytes(CutPath, Full.data(), Cut);
    TraceReadResult R = readTrace(CutPath);
    EXPECT_GE(R.Stats.EventsRecovered, PrevRecovered) << "cut=" << Cut;
    PrevRecovered = R.Stats.EventsRecovered;
  }
  EXPECT_EQ(PrevRecovered, T.totalEvents());
  std::remove(Path.c_str());
  std::remove(CutPath.c_str());
}

// Single-bit damage anywhere past the file header is caught by one of the
// three CRCs (frame header, payload, footer) and costs at most the
// damaged frame; everything else is still recovered.
TEST(SegmentedLogTest, BitFlipsArePinpointedByChecksums) {
  std::string Path = tempPath("seg_flip_full.bin");
  std::string FlipPath = tempPath("seg_flip.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8);
  const std::vector<uint8_t> Full = readFileBytes(Path);
  const uint64_t FullEvents = T.totalEvents();
  const uint64_t DataFrames = scanSegments(Path).size() - 1;
  const uint64_t MaxFrameEvents = 8;
  for (size_t At = 16; At < Full.size(); At += 7) {
    std::vector<uint8_t> Damaged = Full;
    Damaged[At] ^= static_cast<uint8_t>(1u << (At % 8));
    writeFileBytes(FlipPath, Damaged.data(), Damaged.size());
    TraceReadResult R = readTrace(FlipPath);
    ASSERT_TRUE(R.readable()) << "flip at " << At;
    EXPECT_EQ(R.Status, TraceReadStatus::Salvaged) << "flip at " << At;
    EXPECT_GE(R.Stats.SegmentsDropped, 1u) << "flip at " << At;
    EXPECT_GE(R.Stats.EventsRecovered + MaxFrameEvents, FullEvents)
        << "flip at " << At;
    EXPECT_GE(R.Stats.SegmentsRecovered + 2, DataFrames) << "flip at " << At;
  }
  std::remove(Path.c_str());
  std::remove(FlipPath.c_str());
}

TEST(SegmentedLogTest, DamagedFileHeaderIsRecoveredByScanning) {
  std::string Path = tempPath("seg_badheader.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 8);
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  for (size_t I = 0; I != 16; ++I) // Shred the file header.
    Bytes[I] = 0xff;
  writeFileBytes(Path, Bytes.data(), Bytes.size());
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged);
  EXPECT_TRUE(R.Stats.SalvagedHeader);
  EXPECT_EQ(R.Stats.EventsRecovered, T.totalEvents());
  std::remove(Path.c_str());
}

TEST(SegmentedLogTest, StrictModeRefusesAnyImperfection) {
  std::string Path = tempPath("seg_strict.bin");
  Trace T = buildRacyTrace();
  {
    SegmentedFileSink Sink(Path, T.NumTimestampCounters);
    Sink.writeChunk(0, T.PerThread[0].data(), T.PerThread[0].size());
    Sink.abandon();
  }
  TraceReadOptions Strict;
  Strict.Salvage = false;
  TraceReadResult R = readTrace(Path, Strict);
  EXPECT_EQ(R.Status, TraceReadStatus::Unreadable);
  EXPECT_TRUE(R.T.PerThread.empty());
  EXPECT_FALSE(R.Error.empty());
  std::remove(Path.c_str());
}

TEST(SegmentedLogTest, LegacyV1FormatsReadThroughReadTrace) {
  Trace T = buildRacyTrace();
  std::string RawPath = tempPath("v1_raw.bin");
  {
    FileSink Sink(RawPath, T.NumTimestampCounters);
    ASSERT_TRUE(Sink.ok());
    for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
      Sink.writeChunk(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                      T.PerThread[Tid].size());
    Sink.close();
  }
  TraceReadResult Raw = readTrace(RawPath);
  ASSERT_EQ(Raw.Status, TraceReadStatus::Ok) << Raw.Error;
  EXPECT_EQ(Raw.Stats.Format, TraceFormat::V1Raw);
  EXPECT_EQ(Raw.T.totalEvents(), T.totalEvents());

  std::string ZPath = tempPath("v1_compressed.bin");
  {
    CompressedFileSink Sink(ZPath, T.NumTimestampCounters);
    for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
      Sink.writeChunk(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                      T.PerThread[Tid].size());
    ASSERT_TRUE(Sink.close());
  }
  TraceReadResult Z = readTrace(ZPath);
  ASSERT_EQ(Z.Status, TraceReadStatus::Ok) << Z.Error;
  EXPECT_EQ(Z.Stats.Format, TraceFormat::V1Compressed);
  EXPECT_EQ(Z.T.totalEvents(), T.totalEvents());

  std::remove(RawPath.c_str());
  std::remove(ZPath.c_str());
}

TEST(SegmentedLogTest, TruncatedV1FileSalvagesTheChunkPrefix) {
  Trace T = buildRacyTrace();
  std::string Path = tempPath("v1_truncated.bin");
  {
    FileSink Sink(Path, T.NumTimestampCounters);
    for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
      Sink.writeChunk(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                      T.PerThread[Tid].size());
    Sink.close();
  }
  std::vector<uint8_t> Full = readFileBytes(Path);
  // Strict v1 reader refuses the truncation; salvage keeps the prefix.
  writeFileBytes(Path, Full.data(), Full.size() - 8);
  EXPECT_FALSE(readTraceFile(Path).has_value());
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged);
  EXPECT_TRUE(R.Stats.TruncatedTail);
  EXPECT_GT(R.Stats.EventsRecovered, 0u);
  EXPECT_LT(R.Stats.EventsRecovered, T.totalEvents());
  std::remove(Path.c_str());
}

// The detection subset property (docs/ROBUSTNESS.md): analyzing a
// salvaged prefix with gap-tolerant replay reports a SUBSET of the
// full-trace races — coverage loss may hide races but never invents
// them. Checked against every third truncation offset, with the HB and
// FastTrack backends agreeing on every salvaged trace.
TEST(SegmentedLogTest, SalvagedDetectionReportsASubsetOfFullReport) {
  std::string Path = tempPath("seg_subset_full.bin");
  std::string CutPath = tempPath("seg_subset_cut.bin");
  Trace T = buildRacyTrace();
  writeSegmented(T, Path, 4);
  const std::vector<uint8_t> Full = readFileBytes(Path);

  RaceReport FullReport;
  ASSERT_TRUE(detectRaces(T, FullReport));
  const std::set<StaticRaceKey> FullKeys = FullReport.keys();
  ASSERT_GT(FullKeys.size(), 0u) << "need races for a subset property";

  bool SawNonEmptySalvagedReport = false;
  for (size_t Cut = 16; Cut <= Full.size(); Cut += 3) {
    writeFileBytes(CutPath, Full.data(), Cut);
    TraceReadResult R = readTrace(CutPath);
    ASSERT_TRUE(R.readable()) << "cut=" << Cut;
    ReplayOptions Replay;
    Replay.AllowTimestampGaps = true;
    RaceReport HB, FT;
    ASSERT_TRUE(detectRaces(R.T, HB, Replay)) << "cut=" << Cut;
    ASSERT_TRUE(detectRacesFastTrack(R.T, FT, Replay)) << "cut=" << Cut;
    const std::set<StaticRaceKey> HBKeys = HB.keys();
    EXPECT_TRUE(std::includes(FullKeys.begin(), FullKeys.end(),
                              HBKeys.begin(), HBKeys.end()))
        << "cut=" << Cut << ": salvaged report is not a subset";
    EXPECT_EQ(HBKeys, FT.keys()) << "cut=" << Cut;
    if (!HBKeys.empty())
      SawNonEmptySalvagedReport = true;
  }
  // The property must not hold vacuously: plenty of prefixes still
  // contain detectable races.
  EXPECT_TRUE(SawNonEmptySalvagedReport);
  std::remove(Path.c_str());
  std::remove(CutPath.c_str());
}

} // namespace
