//===-- tests/StdLibTest.cpp - Instrumented utility library ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/StdLib.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace literace;

namespace {

class StdLibTest : public ::testing::Test {
protected:
  StdLibTest() : Sink(16) {
    RuntimeConfig Config;
    Config.Mode = RunMode::FullLogging;
    Config.TimestampCounters = 16;
    RT = std::make_unique<Runtime>(Config, &Sink);
  }

  MemorySink Sink;
  std::unique_ptr<Runtime> RT;
};

TEST_F(StdLibTest, FormatUintProducesDecimal) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  ThreadContext TC(*RT);
  StdLibSession Session;
  char Buf[24];
  EXPECT_EQ(Lib.formatUint(TC, Session, 0, Buf, sizeof(Buf)), 1u);
  EXPECT_STREQ(Buf, "0");
  EXPECT_EQ(Lib.formatUint(TC, Session, 12345, Buf, sizeof(Buf)), 5u);
  EXPECT_STREQ(Buf, "12345");
  EXPECT_EQ(Lib.formatUint(TC, Session, 18446744073709551615ULL, Buf,
                           sizeof(Buf)),
            20u);
  EXPECT_STREQ(Buf, "18446744073709551615");
}

TEST_F(StdLibTest, FormatUintRespectsCapacity) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  ThreadContext TC(*RT);
  StdLibSession Session;
  char Buf[4];
  size_t Len = Lib.formatUint(TC, Session, 123456, Buf, sizeof(Buf));
  EXPECT_EQ(Len, 3u);
  EXPECT_EQ(Buf[3], '\0');
}

TEST_F(StdLibTest, ChecksumIsDeterministicPerContent) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  ThreadContext TC(*RT);
  StdLibSession Session;
  uint8_t A[16], B[16];
  std::memset(A, 0x5a, sizeof(A));
  std::memset(B, 0x5a, sizeof(B));
  uint64_t HA = Lib.checksum(TC, Session, A, sizeof(A));
  uint64_t HB = Lib.checksum(TC, Session, B, sizeof(B));
  EXPECT_EQ(HA, HB);
  B[7] ^= 1;
  EXPECT_NE(Lib.checksum(TC, Session, B, sizeof(B)), HA);
}

TEST_F(StdLibTest, FillIsDeterministicPerKey) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  ThreadContext TC(*RT);
  StdLibSession Session;
  uint8_t A[32], B[32];
  Lib.fill(TC, Session, A, sizeof(A), 9);
  Lib.fill(TC, Session, B, sizeof(B), 9);
  EXPECT_EQ(0, std::memcmp(A, B, sizeof(A)));
  Lib.fill(TC, Session, B, sizeof(B), 10);
  EXPECT_NE(0, std::memcmp(A, B, sizeof(A)));
}

TEST_F(StdLibTest, UnboundLibraryLogsNothing) {
  InstrumentedStdLib Lib; // NOT bound: the plain-Dryad configuration.
  EXPECT_FALSE(Lib.isBound());
  {
    ThreadContext TC(*RT);
    StdLibSession Session;
    uint8_t Buf[32];
    Lib.fill(TC, Session, Buf, sizeof(Buf), 3);
    (void)Lib.checksum(TC, Session, Buf, sizeof(Buf));
    char Out[16];
    Lib.formatUint(TC, Session, 42, Out, sizeof(Out));
    (void)Lib.pollStats(TC);
    Lib.flushSession(TC, Session);
  }
  Trace T = Sink.takeTrace();
  EXPECT_EQ(T.memoryOps(), 0u)
      << "uninstrumented library accesses must be invisible";
  EXPECT_TRUE(Lib.seededRaces().empty())
      << "invisible races cannot be in the manifest";
}

TEST_F(StdLibTest, BoundLibraryLogsItsAccesses) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  EXPECT_TRUE(Lib.isBound());
  {
    ThreadContext TC(*RT);
    StdLibSession Session;
    uint8_t Buf[32];
    Lib.fill(TC, Session, Buf, sizeof(Buf), 3);
  }
  EXPECT_GT(Sink.takeTrace().memoryOps(), 30u);
  EXPECT_GE(Lib.seededRaces().size(), 11u);
}

TEST_F(StdLibTest, SessionCachingBoundsSharedProbes) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  size_t FirstCallOps, SecondCallOps;
  {
    ThreadContext TC(*RT);
    StdLibSession Session;
    uint8_t Buf[8];
    (void)Lib.checksum(TC, Session, Buf, sizeof(Buf));
    TC.flush();
    FirstCallOps = Sink.takeTrace().memoryOps();
    (void)Lib.checksum(TC, Session, Buf, sizeof(Buf));
    TC.flush();
    SecondCallOps = Sink.takeTrace().memoryOps();
  }
  // The first call pays for the lazy-init probes; later calls touch only
  // the data and the per-call diagnostics.
  EXPECT_GT(FirstCallOps, SecondCallOps);
}

TEST_F(StdLibTest, ManifestSitesBelongToRegisteredFunctions) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  size_t NumFunctions = RT->registry().size();
  for (const SeededRaceSpec &Spec : Lib.seededRaces()) {
    EXPECT_FALSE(Spec.Sites.empty()) << Spec.Label;
    for (Pc Site : Spec.Sites)
      EXPECT_LT(pcFunction(Site), NumFunctions) << Spec.Label;
  }
}

TEST_F(StdLibTest, BindingTwiceIsAProgrammingError) {
  InstrumentedStdLib Lib;
  Lib.bind(*RT);
  EXPECT_DEATH(Lib.bind(*RT), "bound twice");
}

} // namespace
