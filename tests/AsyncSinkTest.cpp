//===-- tests/AsyncSinkTest.cpp - Asynchronous trace-flush pipeline ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Contract of the async flush pipeline (runtime/AsyncSink.h):
//  - the MPSC hand-off queue preserves per-producer FIFO order and wakes
//    blocked producers on close;
//  - FlushPolicy::Block is lossless (the trace equals a synchronous run's);
//  - FlushPolicy::Drop discards whole chunks and accounts every one of
//    them all the way into the v2 footer, so readTrace() reports the file
//    as Salvaged with exact writer-side loss;
//  - flush()/fence() bound crash loss: everything enqueued before the
//    fence is durable even if the process dies right after;
//  - application threads make zero writeChunk() calls into the durable
//    sink in async mode (the telemetry the acceptance criterion checks);
//  - legacy 16-byte footers are still accepted, and tampered footer
//    totals are flagged.
//
//===----------------------------------------------------------------------===//

#include "runtime/AsyncSink.h"
#include "support/Crc32.h"
#include "telemetry/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <gtest/gtest.h>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace literace;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

void writeFileBytes(const std::string &Path, const std::vector<uint8_t> &B) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(B.data(), 1, B.size(), F), B.size());
  std::fclose(F);
}

/// Builds one chunk for thread \p Tid whose records encode (Tid, Seq) in
/// Addr, so readback can verify exact per-thread program order.
std::vector<EventRecord> makeChunk(ThreadId Tid, uint64_t FirstSeq,
                                   size_t Count) {
  std::vector<EventRecord> Records(Count);
  for (size_t I = 0; I != Count; ++I) {
    Records[I].Kind = EventKind::Write;
    Records[I].Tid = Tid;
    Records[I].Addr = (static_cast<uint64_t>(Tid) << 32) | (FirstSeq + I);
    Records[I].Pc = 1;
  }
  return Records;
}

/// Pass-through sink whose writeChunk serializes on an external gate, so a
/// test can deterministically stall the flusher and fill the queue.
class GateSink : public LogSink {
public:
  explicit GateSink(LogSink &Under) : Under(Under) {}

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override {
    std::lock_guard<std::mutex> Guard(Gate);
    Under.writeChunk(Tid, Records, Count);
    addBytes(Count * sizeof(EventRecord));
  }
  void flush() override { Under.flush(); }
  void noteLostChunk(ThreadId Tid, size_t Count) override {
    Under.noteLostChunk(Tid, Count);
  }

  std::mutex Gate;

private:
  LogSink &Under;
};

//===----------------------------------------------------------------------===//
// MPSC hand-off queue
//===----------------------------------------------------------------------===//

struct Item {
  unsigned Producer = 0;
  uint64_t Seq = 0;
};

TEST(MpscChunkQueueTest, PreservesPerProducerFifoUnderContention) {
  constexpr unsigned NumProducers = 4;
  constexpr uint64_t PerProducer = 5000;
  MpscChunkQueue<Item> Q(64);

  std::vector<std::thread> Producers;
  for (unsigned P = 0; P != NumProducers; ++P)
    Producers.emplace_back([&Q, P] {
      for (uint64_t I = 0; I != PerProducer; ++I) {
        Item It{P, I};
        ASSERT_TRUE(Q.push(It));
      }
    });

  std::vector<uint64_t> NextSeq(NumProducers, 0);
  uint64_t Received = 0;
  std::thread Consumer([&] {
    Item It;
    while (Q.pop(It)) {
      ASSERT_LT(It.Producer, NumProducers);
      // Each producer's items must arrive in the order it pushed them.
      EXPECT_EQ(It.Seq, NextSeq[It.Producer]);
      ++NextSeq[It.Producer];
      ++Received;
    }
  });

  for (std::thread &T : Producers)
    T.join();
  Q.close();
  Consumer.join();

  EXPECT_EQ(Received, NumProducers * PerProducer);
  for (unsigned P = 0; P != NumProducers; ++P)
    EXPECT_EQ(NextSeq[P], PerProducer) << "producer " << P;
  EXPECT_GT(Q.stats().DepthHighWater, 0u);
}

TEST(MpscChunkQueueTest, TryPushFailsWhenFullAndRecoversAfterPop) {
  MpscChunkQueue<Item> Q(16);
  for (uint64_t I = 0; I != Q.capacity(); ++I) {
    Item It{0, I};
    ASSERT_TRUE(Q.tryPush(It)) << I;
  }
  Item Overflow{0, 999};
  EXPECT_FALSE(Q.tryPush(Overflow));

  Item Out;
  ASSERT_TRUE(Q.tryPop(Out));
  EXPECT_EQ(Out.Seq, 0u);
  EXPECT_TRUE(Q.tryPush(Overflow));
}

TEST(MpscChunkQueueTest, CloseWakesBlockedProducerAndDrainsBacklog) {
  MpscChunkQueue<Item> Q(16);
  for (uint64_t I = 0; I != Q.capacity(); ++I) {
    Item It{0, I};
    ASSERT_TRUE(Q.tryPush(It));
  }

  std::atomic<int> PushResult{-1};
  std::thread Blocked([&] {
    Item It{0, 1000};
    PushResult.store(Q.push(It) ? 1 : 0);
  });
  // Give the producer time to park on the full queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Blocked.join();
  EXPECT_EQ(PushResult.load(), 0); // Woken by close, not accepted.

  // The backlog enqueued before close still drains completely.
  Item Out;
  for (uint64_t I = 0; I != Q.capacity(); ++I) {
    ASSERT_TRUE(Q.pop(Out)) << I;
    EXPECT_EQ(Out.Seq, I);
  }
  EXPECT_FALSE(Q.pop(Out));
}

//===----------------------------------------------------------------------===//
// FlushPolicy::Block — lossless
//===----------------------------------------------------------------------===//

TEST(AsyncSinkTest, BlockPolicyDeliversEveryEventInOrder) {
  constexpr unsigned NumThreads = 4;
  constexpr size_t ChunksPerThread = 50;
  constexpr size_t EventsPerChunk = 32;

  MemorySink Memory(16);
  AsyncLogSink::Options Opts;
  Opts.Policy = FlushPolicy::Block;
  Opts.QueueCapacityChunks = 16; // Small: force producers through backpressure.
  AsyncLogSink Async(Memory, Opts);

  std::vector<std::thread> Producers;
  for (unsigned T = 0; T != NumThreads; ++T)
    Producers.emplace_back([&Async, T] {
      for (size_t C = 0; C != ChunksPerThread; ++C) {
        std::vector<EventRecord> Chunk =
            makeChunk(T, C * EventsPerChunk, EventsPerChunk);
        Async.writeChunk(T, Chunk.data(), Chunk.size());
      }
    });
  for (std::thread &T : Producers)
    T.join();

  EXPECT_TRUE(Async.close());
  EXPECT_EQ(Async.chunksDropped(), 0u);
  EXPECT_EQ(Async.chunksEnqueued(), NumThreads * ChunksPerThread);

  Trace T = Memory.takeTrace();
  ASSERT_EQ(T.PerThread.size(), NumThreads);
  for (unsigned Tid = 0; Tid != NumThreads; ++Tid) {
    const auto &Stream = T.PerThread[Tid];
    ASSERT_EQ(Stream.size(), ChunksPerThread * EventsPerChunk) << Tid;
    for (size_t I = 0; I != Stream.size(); ++I)
      ASSERT_EQ(Stream[I].Addr, (static_cast<uint64_t>(Tid) << 32) | I)
          << "thread " << Tid << " event " << I;
  }
}

TEST(AsyncSinkTest, CloseIsIdempotentAndFlushFromFlusherIsSafe) {
  MemorySink Memory(16);
  AsyncLogSink Async(Memory);
  std::vector<EventRecord> Chunk = makeChunk(0, 0, 8);
  Async.writeChunk(0, Chunk.data(), Chunk.size());
  EXPECT_TRUE(Async.fence());
  EXPECT_TRUE(Async.close());
  EXPECT_TRUE(Async.close());
}

//===----------------------------------------------------------------------===//
// FlushPolicy::Drop — accounted loss, all the way into the footer
//===----------------------------------------------------------------------===//

TEST(AsyncSinkTest, DropPolicyAccountsEveryChunkIntoFooterAndSalvage) {
  const std::string Path = tempPath("async_drop.bin");
  constexpr size_t EventsPerChunk = 16;
  constexpr size_t TotalChunks = 24;

  uint64_t EnqueuedChunks = 0;
  uint64_t DroppedChunks = 0;
  uint64_t DroppedEvents = 0;
  {
    SegmentedFileSink Seg(Path, 16);
    ASSERT_TRUE(Seg.ok());
    GateSink Gate(Seg);
    AsyncLogSink::Options Opts;
    Opts.Policy = FlushPolicy::Drop;
    Opts.QueueCapacityChunks = 16;
    AsyncLogSink Async(Gate, Opts);

    {
      // Stall the flusher so the queue fills: with capacity 16 and at most
      // one chunk in flight, at least 24 - 17 = 7 chunks must drop.
      std::lock_guard<std::mutex> Stall(Gate.Gate);
      for (size_t C = 0; C != TotalChunks; ++C) {
        std::vector<EventRecord> Chunk =
            makeChunk(0, C * EventsPerChunk, EventsPerChunk);
        Async.writeChunk(0, Chunk.data(), Chunk.size());
      }
      EXPECT_GE(Async.chunksDropped(), TotalChunks - 17);
    }

    EXPECT_FALSE(Async.close()); // Drops happened: not clean.
    EnqueuedChunks = Async.chunksEnqueued();
    DroppedChunks = Async.chunksDropped();
    DroppedEvents = Async.eventsDropped();
    // Nothing vanished unaccounted, and loss is whole chunks.
    EXPECT_EQ(EnqueuedChunks + DroppedChunks, TotalChunks);
    EXPECT_EQ(DroppedEvents, DroppedChunks * EventsPerChunk);
    EXPECT_FALSE(Seg.close()); // The durable sink knows about the loss too.
    EXPECT_EQ(Seg.eventsDropped(), DroppedEvents);
  }

  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged) << R.Error;
  EXPECT_EQ(R.Stats.EventsDroppedByWriter, DroppedEvents);
  EXPECT_EQ(R.Stats.EventsRecovered, EnqueuedChunks * EventsPerChunk);
  // Every byte present is intact — the loss never reached the file.
  EXPECT_EQ(R.Stats.SegmentsDropped, 0u);
  EXPECT_TRUE(R.Stats.CleanShutdown);
  EXPECT_NE(R.Error.find("dropped"), std::string::npos) << R.Error;
  std::remove(Path.c_str());
}

TEST(AsyncSinkTest, NoteLostChunkAloneMakesTheTraceSalvaged) {
  const std::string Path = tempPath("async_notelost.bin");
  {
    SegmentedFileSink Seg(Path, 16);
    ASSERT_TRUE(Seg.ok());
    std::vector<EventRecord> Chunk = makeChunk(0, 0, 8);
    Seg.writeChunk(0, Chunk.data(), Chunk.size());
    Seg.noteLostChunk(0, 5);
    EXPECT_FALSE(Seg.close());
  }
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged) << R.Error;
  EXPECT_EQ(R.Stats.EventsDroppedByWriter, 5u);
  EXPECT_EQ(R.Stats.EventsRecovered, 8u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Crash bound: a fence makes everything before it durable
//===----------------------------------------------------------------------===//

TEST(AsyncSinkTest, FenceBoundsCrashLossToInFlightChunks) {
  const std::string Path = tempPath("async_fence_crash.bin");
  constexpr size_t Chunks = 10;
  constexpr size_t EventsPerChunk = 16;
  {
    SegmentedFileSink Seg(Path, 16);
    ASSERT_TRUE(Seg.ok());
    AsyncLogSink Async(Seg);
    for (size_t C = 0; C != Chunks; ++C) {
      std::vector<EventRecord> Chunk =
          makeChunk(0, C * EventsPerChunk, EventsPerChunk);
      Async.writeChunk(0, Chunk.data(), Chunk.size());
    }
    // The fatal-signal path: fence, then the process "dies" — the sink is
    // abandoned without a footer.
    ASSERT_TRUE(Async.fence());
    Seg.abandon();
    Async.close();
  }
  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged) << R.Error; // No footer.
  EXPECT_FALSE(R.Stats.CleanShutdown);
  // Everything enqueued before the fence survived the crash.
  EXPECT_EQ(R.Stats.EventsRecovered, Chunks * EventsPerChunk);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Write classification: async mode removes write() calls from app threads
//===----------------------------------------------------------------------===//

TEST(AsyncSinkTest, AsyncModeMakesZeroAppThreadWritesIntoDurableSink) {
  const std::string Path = tempPath("async_classify.bin");
  telemetry::MetricsRegistry Registry;
  {
    SegmentedFileSink::Options SOpts;
    SOpts.Metrics = &Registry;
    SegmentedFileSink Seg(Path, 16, SOpts);
    ASSERT_TRUE(Seg.ok());
    AsyncLogSink::Options AOpts;
    AOpts.Metrics = &Registry;
    AsyncLogSink Async(Seg, AOpts);
    for (size_t C = 0; C != 8; ++C) {
      std::vector<EventRecord> Chunk = makeChunk(0, C * 16, 16);
      Async.writeChunk(0, Chunk.data(), Chunk.size());
    }
    EXPECT_TRUE(Async.close());
    EXPECT_EQ(Seg.appThreadWrites(), 0u);
    EXPECT_EQ(Seg.flusherThreadWrites(), 8u);
    EXPECT_TRUE(Seg.close());
  }
  telemetry::MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Snap.counter("sink.writes.app_thread", 0), 0u);
  EXPECT_EQ(Snap.counter("sink.writes.flusher_thread", 0), 8u);
  EXPECT_EQ(Snap.counter("sink.async.chunks_enqueued", 0), 8u);
  std::remove(Path.c_str());
}

TEST(AsyncSinkTest, SyncModeWritesFromAppThreads) {
  const std::string Path = tempPath("sync_classify.bin");
  SegmentedFileSink Seg(Path, 16);
  ASSERT_TRUE(Seg.ok());
  std::vector<EventRecord> Chunk = makeChunk(0, 0, 16);
  Seg.writeChunk(0, Chunk.data(), Chunk.size());
  EXPECT_EQ(Seg.appThreadWrites(), 1u);
  EXPECT_EQ(Seg.flusherThreadWrites(), 0u);
  EXPECT_TRUE(Seg.close());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Footer compatibility and tamper detection
//===----------------------------------------------------------------------===//

/// On-disk mirror of the v2 segment header (docs/LOG_FORMAT.md); layout is
/// load-bearing, checked against the file contents below.
struct RawSegmentHeader {
  uint32_t Magic;
  uint8_t Encoding;
  uint8_t Flags;
  uint16_t Reserved;
  uint32_t Tid;
  uint32_t EventCount;
  uint32_t PayloadBytes;
  uint32_t PayloadCrc;
  uint32_t HeaderCrc;
};
static_assert(sizeof(RawSegmentHeader) == 28, "v2 header is 28 bytes");
constexpr uint32_t RawSegmentMagic = 0x4753524Cu; // "LRSG"
constexpr uint8_t RawFlagFooter = 0x01;
constexpr size_t NewFooterBytes = 24;
constexpr size_t LegacyFooterBytes = 16;

void writeCleanSegmentedFile(const std::string &Path, size_t Chunks,
                             size_t EventsPerChunk) {
  SegmentedFileSink Seg(Path, 16);
  ASSERT_TRUE(Seg.ok());
  for (size_t C = 0; C != Chunks; ++C) {
    std::vector<EventRecord> Chunk =
        makeChunk(0, C * EventsPerChunk, EventsPerChunk);
    Seg.writeChunk(0, Chunk.data(), Chunk.size());
  }
  ASSERT_TRUE(Seg.close());
}

TEST(AsyncSinkTest, LegacySixteenByteFooterStillReadsClean) {
  const std::string Path = tempPath("legacy_footer.bin");
  writeCleanSegmentedFile(Path, 4, 8);

  // Rewrite the sealed 24-byte footer as the legacy 16-byte form (no
  // DroppedEvents field) and re-checksum it.
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  const size_t NewFrame = sizeof(RawSegmentHeader) + NewFooterBytes;
  ASSERT_GE(Bytes.size(), NewFrame);
  const size_t Off = Bytes.size() - NewFrame;
  RawSegmentHeader H;
  std::memcpy(&H, Bytes.data() + Off, sizeof(H));
  ASSERT_EQ(H.Magic, RawSegmentMagic);
  ASSERT_EQ(H.Flags, RawFlagFooter);
  ASSERT_EQ(H.PayloadBytes, NewFooterBytes);

  uint8_t Legacy[LegacyFooterBytes]; // {TotalEvents, TotalSegments}
  std::memcpy(Legacy, Bytes.data() + Off + sizeof(H), LegacyFooterBytes);
  H.PayloadBytes = LegacyFooterBytes;
  H.PayloadCrc = crc32c(Legacy, LegacyFooterBytes);
  H.HeaderCrc = crc32c(&H, sizeof(H) - sizeof(uint32_t));
  Bytes.resize(Off);
  Bytes.insert(Bytes.end(), reinterpret_cast<uint8_t *>(&H),
               reinterpret_cast<uint8_t *>(&H) + sizeof(H));
  Bytes.insert(Bytes.end(), Legacy, Legacy + LegacyFooterBytes);
  writeFileBytes(Path, Bytes);

  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Ok) << R.Error;
  EXPECT_TRUE(R.Stats.CleanShutdown);
  EXPECT_EQ(R.Stats.EventsDroppedByWriter, 0u);
  EXPECT_EQ(R.Stats.EventsRecovered, 32u);
  std::remove(Path.c_str());
}

TEST(AsyncSinkTest, TamperedFooterTotalsAreFlagged) {
  const std::string Path = tempPath("tampered_footer.bin");
  writeCleanSegmentedFile(Path, 4, 8);

  // Bump TotalEvents in the footer and re-checksum: the frame is CRC-valid
  // but disagrees with the recovered contents.
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  const size_t NewFrame = sizeof(RawSegmentHeader) + NewFooterBytes;
  ASSERT_GE(Bytes.size(), NewFrame);
  const size_t Off = Bytes.size() - NewFrame;
  RawSegmentHeader H;
  std::memcpy(&H, Bytes.data() + Off, sizeof(H));
  ASSERT_EQ(H.Flags, RawFlagFooter);
  uint64_t Totals[3];
  std::memcpy(Totals, Bytes.data() + Off + sizeof(H), NewFooterBytes);
  ++Totals[0];
  H.PayloadCrc = crc32c(Totals, NewFooterBytes);
  H.HeaderCrc = crc32c(&H, sizeof(H) - sizeof(uint32_t));
  std::memcpy(Bytes.data() + Off, &H, sizeof(H));
  std::memcpy(Bytes.data() + Off + sizeof(H), Totals, NewFooterBytes);
  writeFileBytes(Path, Bytes);

  TraceReadResult R = readTrace(Path);
  ASSERT_EQ(R.Status, TraceReadStatus::Salvaged) << R.Error;
  EXPECT_TRUE(R.Stats.FooterTotalsMismatch);
  EXPECT_NE(R.Error.find("footer totals"), std::string::npos) << R.Error;
  std::remove(Path.c_str());
}

} // namespace
