//===-- tests/RuntimeTest.cpp - Runtime modes and dispatch -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "runtime/ThreadContext.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr SyncVar L = makeSyncVar(SyncObjectKind::Mutex, 0x900);

/// Builds a runtime in \p Mode over \p Sink and runs \p Calls activations
/// of one function, each performing one write and one sync acquire.
Trace runScenario(RunMode Mode, unsigned Calls,
                  unsigned *NumFunctionsOut = nullptr) {
  MemorySink Sink(16);
  RuntimeConfig Config;
  Config.Mode = Mode;
  Config.TimestampCounters = 16;
  Runtime RT(Config, &Sink);
  if (Mode == RunMode::Experiment)
    RT.addStandardSamplers();
  FunctionId F = RT.registry().registerFunction("f");
  {
    ThreadContext TC(RT);
    uint64_t Cell = 0;
    for (unsigned I = 0; I != Calls; ++I) {
      TC.run(F, [&](auto &T) {
        T.store(&Cell, uint64_t{I}, 1);
        TC.logAcquire(L);
      });
    }
  }
  if (NumFunctionsOut)
    *NumFunctionsOut = static_cast<unsigned>(RT.registry().size());
  return Sink.takeTrace();
}

TEST(RunModeTest, Names) {
  EXPECT_STREQ(runModeName(RunMode::Baseline), "Baseline");
  EXPECT_STREQ(runModeName(RunMode::DispatchOnly), "DispatchOnly");
  EXPECT_STREQ(runModeName(RunMode::SyncLogging), "SyncLogging");
  EXPECT_STREQ(runModeName(RunMode::LiteRace), "LiteRace");
  EXPECT_STREQ(runModeName(RunMode::FullLogging), "FullLogging");
  EXPECT_STREQ(runModeName(RunMode::Experiment), "Experiment");
}

TEST(RuntimeModeTest, BaselineLogsNothing) {
  Trace T = runScenario(RunMode::Baseline, 100);
  EXPECT_EQ(T.totalEvents(), 0u);
}

TEST(RuntimeModeTest, DispatchOnlyLogsNothing) {
  Trace T = runScenario(RunMode::DispatchOnly, 100);
  EXPECT_EQ(T.totalEvents(), 0u);
}

TEST(RuntimeModeTest, SyncLoggingLogsSyncOnly) {
  Trace T = runScenario(RunMode::SyncLogging, 100);
  EXPECT_EQ(T.memoryOps(), 0u);
  EXPECT_EQ(T.syncOps(), 100u);
}

TEST(RuntimeModeTest, FullLoggingLogsEverything) {
  Trace T = runScenario(RunMode::FullLogging, 100);
  EXPECT_EQ(T.memoryOps(), 100u);
  EXPECT_EQ(T.syncOps(), 100u);
}

TEST(RuntimeModeTest, LiteRaceSamplesMemoryNeverSync) {
  // 100k calls of one hot function: TL-Ad converges to ~0.1%, but every
  // sync op is logged (§3.2).
  Trace T = runScenario(RunMode::LiteRace, 100000);
  EXPECT_EQ(T.syncOps(), 100000u);
  EXPECT_GT(T.memoryOps(), 30u);     // Initial bursts at least.
  EXPECT_LT(T.memoryOps(), 2000u);   // ~0.1-1%, not everything.
}

TEST(RuntimeModeTest, ExperimentLogsAllMemoryWithMasks) {
  Trace T = runScenario(RunMode::Experiment, 5000);
  EXPECT_EQ(T.memoryOps(), 5000u);
  // Every record carries the full-log bit.
  for (const auto &Stream : T.PerThread)
    for (const EventRecord &R : Stream)
      if (isMemoryKind(R.Kind)) {
        ASSERT_TRUE(R.Mask & FullLogMaskBit);
      }
  // TL-Ad (slot 0) sampled the first burst but far from everything.
  size_t Slot0 = T.memoryOpsForSlot(0);
  EXPECT_GE(Slot0, 10u);
  EXPECT_LT(Slot0, 2500u);
  // UCP (slot 6) sampled everything except the first 10 calls.
  EXPECT_EQ(T.memoryOpsForSlot(6), 4990u);
}

TEST(RuntimeStatsTest, CountsMatchTrace) {
  MemorySink Sink(16);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Config.TimestampCounters = 16;
  Runtime RT(Config, &Sink);
  RT.addStandardSamplers();
  FunctionId F = RT.registry().registerFunction("f");
  {
    ThreadContext TC(RT);
    uint64_t Cell = 0;
    for (unsigned I = 0; I != 500; ++I)
      TC.run(F, [&](auto &T) { T.store(&Cell, uint64_t{I}, 1); });
  }
  RuntimeStats Stats = RT.stats();
  Trace T = Sink.takeTrace();
  EXPECT_EQ(Stats.MemOpsLogged, T.memoryOps());
  for (unsigned Slot = 0; Slot != RT.numSamplers(); ++Slot)
    EXPECT_EQ(Stats.MemOpsPerSlot[Slot], T.memoryOpsForSlot(Slot))
        << "slot " << Slot;
}

TEST(RuntimeStatsTest, EffectiveSamplingRate) {
  RuntimeStats Stats;
  Stats.MemOpsLogged = 1000;
  Stats.MemOpsPerSlot[2] = 18;
  EXPECT_DOUBLE_EQ(Stats.effectiveSamplingRate(2), 0.018);
  RuntimeStats Zero;
  EXPECT_DOUBLE_EQ(Zero.effectiveSamplingRate(0), 0.0);
}

TEST(RuntimeStatsTest, MergeAccumulates) {
  RuntimeStats A, B;
  A.MemOpsLogged = 10;
  A.SyncOps = 1;
  A.MemOpsPerSlot[0] = 5;
  B.MemOpsLogged = 20;
  B.SyncOps = 2;
  B.MemOpsPerSlot[0] = 7;
  A.mergeFrom(B);
  EXPECT_EQ(A.MemOpsLogged, 30u);
  EXPECT_EQ(A.SyncOps, 3u);
  EXPECT_EQ(A.MemOpsPerSlot[0], 12u);
}

TEST(ThreadContextTest, AllocatesDenseThreadIds) {
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime RT(Config, nullptr);
  ThreadContext A(RT), B(RT), C(RT);
  EXPECT_EQ(A.tid(), 0u);
  EXPECT_EQ(B.tid(), 1u);
  EXPECT_EQ(C.tid(), 2u);
  EXPECT_EQ(RT.numThreads(), 3u);
}

TEST(ThreadContextTest, LogsThreadLifecycleMarkers) {
  MemorySink Sink(16);
  RuntimeConfig Config;
  Config.Mode = RunMode::SyncLogging;
  Config.TimestampCounters = 16;
  Runtime RT(Config, &Sink);
  { ThreadContext TC(RT); }
  Trace T = Sink.takeTrace();
  ASSERT_EQ(T.PerThread.size(), 1u);
  ASSERT_EQ(T.PerThread[0].size(), 2u);
  EXPECT_EQ(T.PerThread[0][0].Kind, EventKind::ThreadStart);
  EXPECT_EQ(T.PerThread[0][1].Kind, EventKind::ThreadEnd);
}

TEST(ThreadContextTest, BufferFlushesAtThreshold) {
  MemorySink Sink(16);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.TimestampCounters = 16;
  Config.ThreadBufferRecords = 8;
  Runtime RT(Config, &Sink);
  FunctionId F = RT.registry().registerFunction("f");
  ThreadContext TC(RT);
  uint64_t Cell = 0;
  for (unsigned I = 0; I != 20; ++I)
    TC.run(F, [&](auto &T) { T.store(&Cell, uint64_t{I}, 1); });
  // Without destroying the context, full chunks must already have been
  // flushed to the sink.
  EXPECT_GE(Sink.bytesWritten(), 16 * sizeof(EventRecord));
  TC.flush();
}

TEST(ThreadContextTest, NestedActivationsBothLog) {
  MemorySink Sink(16);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.TimestampCounters = 16;
  Runtime RT(Config, &Sink);
  FunctionId Outer = RT.registry().registerFunction("outer");
  FunctionId Inner = RT.registry().registerFunction("inner");
  {
    ThreadContext TC(RT);
    uint64_t Cell = 0;
    TC.run(Outer, [&](auto &T) {
      T.store(&Cell, uint64_t{1}, 1);
      TC.run(Inner, [&](auto &T2) { T2.store(&Cell, uint64_t{2}, 2); });
      T.store(&Cell, uint64_t{3}, 3);
    });
  }
  Trace T = Sink.takeTrace();
  ASSERT_EQ(T.memoryOps(), 3u);
  // Pc function ids reflect the activation that performed each access.
  std::vector<FunctionId> Fns;
  for (const EventRecord &R : T.PerThread[0])
    if (isMemoryKind(R.Kind))
      Fns.push_back(pcFunction(R.Pc));
  EXPECT_EQ(Fns, (std::vector<FunctionId>{Outer, Inner, Outer}));
}

TEST(RuntimeTest, SamplerSuiteSlotsAreStable) {
  MemorySink Sink(16);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Config.TimestampCounters = 16;
  Runtime RT(Config, &Sink);
  RT.addStandardSamplers();
  ASSERT_EQ(RT.numSamplers(), 7u);
  for (unsigned Slot = 0; Slot != 7; ++Slot)
    EXPECT_EQ(RT.sampler(Slot).slot(), Slot);
}

} // namespace
