//===-- tests/ToolsTest.cpp - CLI tool end-to-end ---------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Drives the literace-run / literace-report binaries as a user would:
// record a workload to disk, analyze the log with each detector backend,
// and check exit codes and output. Tool paths are injected by CMake.
//
//===----------------------------------------------------------------------===//

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <map>
#include <cerrno>
#include <set>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#ifndef LITERACE_TOOL_DIR
#error "CMake must define LITERACE_TOOL_DIR"
#endif

namespace {

/// Runs a command, capturing stdout+stderr; returns {exit code, output}.
std::pair<int, std::string> runCommand(const std::string &Command) {
  std::string Full = Command + " 2>&1";
  std::FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return {-1, ""};
  std::string Output;
  std::array<char, 512> Buffer;
  while (std::fgets(Buffer.data(), Buffer.size(), Pipe))
    Output += Buffer.data();
  int Status = pclose(Pipe);
  // A tool dying on a signal (the crash-injection tests) surfaces as
  // 128+sig, matching what a shell reports.
  if (WIFSIGNALED(Status))
    return {128 + WTERMSIG(Status), Output};
  return {WEXITSTATUS(Status), Output};
}

std::string toolPath(const char *Name) {
  return std::string(LITERACE_TOOL_DIR) + "/" + Name;
}

std::string tempLog() {
  return std::string(::testing::TempDir()) + "toolstest.bin";
}

TEST(ToolsTest, RunThenReportFindsRaces) {
  std::string Log = tempLog();
  auto [RunCode, RunOut] = runCommand(toolPath("literace-run") +
                                      " channel " + Log +
                                      " --mode full --scale 0.05");
  ASSERT_EQ(RunCode, 0) << RunOut;
  EXPECT_NE(RunOut.find("Dryad Channel"), std::string::npos);
  EXPECT_NE(RunOut.find("wrote"), std::string::npos);

  auto [RepCode, RepOut] =
      runCommand(toolPath("literace-report") + " " + Log);
  EXPECT_EQ(RepCode, 3) << RepOut; // 3 = races found.
  EXPECT_NE(RepOut.find("static race"), std::string::npos);
  EXPECT_NE(RepOut.find("rare"), std::string::npos);
  std::remove(Log.c_str());
}

TEST(ToolsTest, ReportBackendsAgreeOnRaceCount) {
  std::string Log = tempLog();
  auto [RunCode, RunOut] = runCommand(toolPath("literace-run") +
                                      " concrt-messaging " + Log +
                                      " --mode full --scale 0.05");
  ASSERT_EQ(RunCode, 0) << RunOut;
  auto [HbCode, HbOut] = runCommand(toolPath("literace-report") + " " +
                                    Log + " --quiet");
  auto [FtCode, FtOut] = runCommand(toolPath("literace-report") + " " +
                                    Log + " --quiet --detector fasttrack");
  EXPECT_EQ(HbCode, FtCode);
  // First line of each: "<N> static race(s): ..." — compare the counts.
  EXPECT_EQ(HbOut.substr(0, HbOut.find(' ')),
            FtOut.substr(0, FtOut.find(' ')));
  std::remove(Log.c_str());
}

TEST(ToolsTest, StatsFlagPrintsHottestFunctions) {
  std::string Log = tempLog();
  ASSERT_EQ(runCommand(toolPath("literace-run") + " lkrhash " + Log +
                       " --mode literace --scale 0.02")
                .first,
            0);
  auto [Code, Out] = runCommand(toolPath("literace-report") + " " + Log +
                                " --stats --quiet");
  EXPECT_EQ(Code, 0) << Out; // Micro-benchmark: no races.
  EXPECT_NE(Out.find("hottest functions"), std::string::npos);
  EXPECT_NE(Out.find("events:"), std::string::npos);
  std::remove(Log.c_str());
}

TEST(ToolsTest, BadArgumentsGiveUsage) {
  auto [Code1, Out1] = runCommand(toolPath("literace-run"));
  EXPECT_EQ(Code1, 2);
  EXPECT_NE(Out1.find("usage:"), std::string::npos);

  auto [Code2, Out2] =
      runCommand(toolPath("literace-run") + " not-a-workload /tmp/x.bin");
  EXPECT_EQ(Code2, 2);
  EXPECT_NE(Out2.find("unknown workload"), std::string::npos);

  auto [Code3, Out3] = runCommand(toolPath("literace-report"));
  EXPECT_EQ(Code3, 2);
  EXPECT_NE(Out3.find("usage:"), std::string::npos);

  auto [Code4, Out4] =
      runCommand(toolPath("literace-report") + " /nonexistent/log.bin");
  EXPECT_EQ(Code4, 1);
  EXPECT_NE(Out4.find("not a readable"), std::string::npos);
}

TEST(ToolsTest, SuppressionsChangeTheExitCode) {
  std::string Log = tempLog();
  ASSERT_EQ(runCommand(toolPath("literace-run") + " channel " + Log +
                       " --mode full --scale 0.05")
                .first,
            0);
  // Find all reported sites, write them into a suppression file, and
  // verify the tool then reports a clean exit.
  auto [Code, Out] = runCommand(toolPath("literace-report") + " " + Log);
  ASSERT_EQ(Code, 3) << Out;
  std::string SuppPath = std::string(::testing::TempDir()) + "supp.txt";
  std::FILE *Supp = std::fopen(SuppPath.c_str(), "w");
  ASSERT_NE(Supp, nullptr);
  std::fputs("# triaged as benign diagnostics\n", Supp);
  // Lines look like "  fn4:5 <-> fn8:121  x93"; recover pcs by brute
  // force: suppress every fnN:site token via its numeric pc.
  size_t Position = 0;
  while ((Position = Out.find("fn", Position)) != std::string::npos) {
    unsigned Fn = 0, Site = 0;
    if (std::sscanf(Out.c_str() + Position, "fn%u:%u", &Fn, &Site) == 2)
      std::fprintf(Supp, "0x%llx\n",
                   (static_cast<unsigned long long>(Fn) << 32) | Site);
    ++Position;
  }
  std::fclose(Supp);
  auto [Code2, Out2] = runCommand(toolPath("literace-report") + " " + Log +
                                  " --suppress " + SuppPath + " --quiet");
  EXPECT_EQ(Code2, 0) << Out2;
  EXPECT_NE(Out2.find("after suppressions"), std::string::npos);
  std::remove(Log.c_str());
  std::remove(SuppPath.c_str());
}

TEST(ToolsTest, AnalyzePrintsPolicyAndJustifications) {
  auto [Code, Out] = runCommand(toolPath("literace-analyze") + " lkrhash");
  EXPECT_EQ(Code, 0) << Out;
  // All six declared sites of the stripe-locked table are elidable.
  EXPECT_NE(Out.find("policy: 6/6 sites elidable"), std::string::npos);
  EXPECT_NE(Out.find("lock-consistent"), std::string::npos);
  EXPECT_NE(Out.find("lkr.insert:1"), std::string::npos);
}

TEST(ToolsTest, AnalyzeAuditPassesOnChannel) {
  auto [Code, Out] = runCommand(toolPath("literace-analyze") +
                                " channel --audit --scale 0.04");
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("audit passed"), std::string::npos);
  EXPECT_EQ(Out.find("LOST:"), std::string::npos) << Out;
}

TEST(ToolsTest, AnalyzeRejectsUnknownWorkload) {
  auto [Code, Out] = runCommand(toolPath("literace-analyze") + " nope");
  EXPECT_EQ(Code, 2);
  EXPECT_NE(Out.find("usage:"), std::string::npos);
  // The usage error lists the valid workload names (parity with
  // literace-run, which shares the same registry).
  EXPECT_NE(Out.find("workloads:"), std::string::npos);
  EXPECT_NE(Out.find("channel-stdlib"), std::string::npos);
  EXPECT_NE(Out.find("scicompute"), std::string::npos);
  auto [RunCode, RunOut] = runCommand(toolPath("literace-run") + " nope x");
  EXPECT_EQ(RunCode, 2);
  EXPECT_NE(RunOut.find("channel-stdlib"), std::string::npos);
}

TEST(ToolsTest, AnalyzeExplainPrintsTheProofChain) {
  auto [Code, Out] = runCommand(toolPath("literace-analyze") +
                                " channel --explain chan.ring");
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("chan.ring: phase-ordered"), std::string::npos);
  EXPECT_NE(Out.find("proof chain"), std::string::npos);
  EXPECT_NE(Out.find("PROVED"), std::string::npos);
  // The chain shows what each earlier pass concluded before mhp fired.
  EXPECT_NE(Out.find("thread-escape:"), std::string::npos);
  EXPECT_NE(Out.find("lockset:"), std::string::npos);

  auto [BadCode, BadOut] = runCommand(toolPath("literace-analyze") +
                                      " channel --explain no.such.var");
  EXPECT_EQ(BadCode, 2);
  EXPECT_NE(BadOut.find("unknown variable"), std::string::npos);
  EXPECT_NE(BadOut.find("chan.ring"), std::string::npos); // Offered names.
}

TEST(ToolsTest, AnalyzeJsonDumpIsWellFormedAndRedirectable) {
  auto [Code, Out] =
      runCommand(toolPath("literace-analyze") + " channel --json");
  EXPECT_EQ(Code, 0) << Out;
  // Bare --json replaces the human report: first byte is the document.
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out[0], '{');
  EXPECT_NE(Out.find("\"workload\": \"channel\""), std::string::npos);
  EXPECT_NE(Out.find("\"verdict\": \"phase-ordered\""), std::string::npos);
  EXPECT_NE(Out.find("\"class\": \"redundant\""), std::string::npos);

  std::string Path = std::string(::testing::TempDir()) + "verdicts.json";
  auto [FileCode, FileOut] = runCommand(
      toolPath("literace-analyze") + " channel --json=" + Path);
  EXPECT_EQ(FileCode, 0) << FileOut;
  // --json=PATH keeps the human report on stdout.
  EXPECT_NE(FileOut.find("Per-variable verdicts"), std::string::npos);
  std::FILE *File = std::fopen(Path.c_str(), "r");
  ASSERT_NE(File, nullptr);
  std::fclose(File);
  std::remove(Path.c_str());
}

TEST(ToolsTest, AnalyzePassesFlagRestrictsTheAnalysis) {
  // With only the lockset pass, Channel's phase-ordered and redundant
  // elisions disappear; the lock-protected queue state survives.
  auto [Code, Out] = runCommand(toolPath("literace-analyze") +
                                " channel --passes lockset");
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_EQ(Out.find("phase-ordered"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("(redundant)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("lock-consistent"), std::string::npos);

  auto [AllCode, AllOut] =
      runCommand(toolPath("literace-analyze") + " channel --passes all");
  EXPECT_EQ(AllCode, 0) << AllOut;
  EXPECT_NE(AllOut.find("phase-ordered"), std::string::npos);
  EXPECT_NE(AllOut.find("(redundant)"), std::string::npos);

  auto [BadCode, BadOut] = runCommand(toolPath("literace-analyze") +
                                      " lkrhash --passes bogus");
  EXPECT_EQ(BadCode, 2);
  EXPECT_NE(BadOut.find("unknown pass"), std::string::npos);
}

TEST(ToolsTest, AnalyzeAuditReportsPerPassAttribution) {
  auto [Code, Out] = runCommand(toolPath("literace-analyze") +
                                " channel --audit --scale 0.04");
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("per-pass differential audit"), std::string::npos);
  EXPECT_NE(Out.find("mhp"), std::string::npos);
  EXPECT_NE(Out.find("redundancy"), std::string::npos);
  EXPECT_EQ(Out.find("RACE LOST"), std::string::npos) << Out;
}

TEST(ToolsTest, AnalyzeFuzzRunsTheConservatismCheck) {
  auto [Code, Out] =
      runCommand(toolPath("literace-analyze") + " browser-start --fuzz");
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("conservatism fuzzer"), std::string::npos);
  EXPECT_NE(Out.find("0 violations"), std::string::npos);
  EXPECT_NE(Out.find("fuzzer passed"), std::string::npos);
}

TEST(ToolsTest, RunElideFlagShrinksTheLog) {
  std::string Log = tempLog();
  std::string Elided = std::string(::testing::TempDir()) + "elided.bin";
  ASSERT_EQ(runCommand(toolPath("literace-run") + " lkrhash " + Log +
                       " --mode full --scale 0.02 --seed 7")
                .first,
            0);
  auto [Code, Out] = runCommand(toolPath("literace-run") + " lkrhash " +
                                Elided +
                                " --mode full --scale 0.02 --seed 7 --elide");
  ASSERT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("static analysis: 6/6 declared sites elided"),
            std::string::npos);
  // Every LKRHash memory op comes from an elided site.
  EXPECT_NE(Out.find(", 0 memory ops"), std::string::npos);

  auto [NoElideCode, NoElideOut] =
      runCommand(toolPath("literace-run") + " lkrhash " + Elided +
                 " --mode full --scale 0.02 --seed 7 --elide --no-elide");
  ASSERT_EQ(NoElideCode, 0) << NoElideOut;
  EXPECT_NE(NoElideOut.find("elision disabled by --no-elide"),
            std::string::npos);
  EXPECT_EQ(NoElideOut.find(", 0 memory ops"), std::string::npos);
  std::remove(Log.c_str());
  std::remove(Elided.c_str());
}

TEST(ToolsTest, FuzzSweepsReportsRecallAndWritesJson) {
  std::string Json = std::string(::testing::TempDir()) + "fuzz.json";
  auto [Code, Out] =
      runCommand(toolPath("literace-fuzz") +
                 " mpmc-queue --seeds 5 --scale 0.01 --json=" + Json);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("Fuzz recall"), std::string::npos);
  EXPECT_NE(Out.find("mpmc-enq-tally"), std::string::npos);
  EXPECT_NE(Out.find("Per-seed outcomes"), std::string::npos);
  std::FILE *File = std::fopen(Json.c_str(), "r");
  ASSERT_NE(File, nullptr);
  char Buf[4096] = {};
  size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, File);
  std::fclose(File);
  std::string Doc(Buf, Got);
  EXPECT_NE(Doc.find("\"benchmark\""), std::string::npos);
  EXPECT_NE(Doc.find("\"families\""), std::string::npos);
  std::remove(Json.c_str());
}

TEST(ToolsTest, FuzzReplaysASeedBitForBit) {
  // --check-determinism runs the seed twice with a fresh engine and
  // workload; --seed makes it a repro run (no sweep-level recall gate).
  auto [Code, Out] = runCommand(
      toolPath("literace-fuzz") +
      " task-executor --seed 3 --scale 0.01 --check-determinism");
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("identical"), std::string::npos);
}

TEST(ToolsTest, FuzzRejectsUnknownWorkloadWithUsage) {
  auto [Code, Out] = runCommand(toolPath("literace-fuzz") + " nope");
  EXPECT_EQ(Code, 2);
  EXPECT_NE(Out.find("usage:"), std::string::npos);
  EXPECT_NE(Out.find("mpmc-queue"), std::string::npos);
  EXPECT_NE(Out.find("task-executor"), std::string::npos);
}

/// Extracts the integer rendered after \p Name in literace-stat's
/// "  name   value" triage lines; -1 when the line is absent.
long long statValue(const std::string &Out, const std::string &Name) {
  size_t At = Out.find(Name);
  if (At == std::string::npos)
    return -1;
  long long Value = -1;
  std::sscanf(Out.c_str() + At + Name.size(), " %lld", &Value);
  return Value;
}

TEST(ToolsTest, StatEndToEndOnBrowserWorkload) {
  std::string Log = tempLog();
  std::string MetricsOut = std::string(::testing::TempDir()) + "metrics.json";
  std::string TraceOut = std::string(::testing::TempDir()) + "trace.json";
  auto [RunCode, RunOut] =
      runCommand(toolPath("literace-run") + " browser-start " + Log +
                 " --mode literace --scale 0.5 --elide");
  ASSERT_EQ(RunCode, 0) << RunOut;
  // literace-run leaves a metrics sidecar next to the log.
  EXPECT_NE(RunOut.find(".metrics.json"), std::string::npos);

  auto [Code, Out] = runCommand(toolPath("literace-stat") + " " + Log +
                                " --shards 2 --json " + MetricsOut +
                                " --perfetto " + TraceOut);
  ASSERT_EQ(Code, 0) << Out;
  // The acceptance triple: nonzero sampled, unsampled, and elided
  // counters from the recording runtime's sidecar.
  EXPECT_GT(statValue(Out, "runtime.sampled_activations"), 0) << Out;
  EXPECT_GT(statValue(Out, "runtime.unsampled_activations"), 0) << Out;
  EXPECT_GT(statValue(Out, "runtime.memops_elided"), 0) << Out;
  // Trace-derived and detector-plane metrics join the same snapshot.
  EXPECT_GT(statValue(Out, "trace.events"), 0) << Out;
  EXPECT_GT(statValue(Out, "detector.shard0.memory_events"), 0) << Out;
  EXPECT_NE(Out.find("hottest functions"), std::string::npos);

  // Both artifacts exist; the Perfetto file was validated structurally by
  // the tool itself before writing (it refuses to emit invalid JSON).
  std::FILE *Metrics = std::fopen(MetricsOut.c_str(), "r");
  ASSERT_NE(Metrics, nullptr);
  std::fclose(Metrics);
  std::FILE *Trace = std::fopen(TraceOut.c_str(), "r");
  ASSERT_NE(Trace, nullptr);
  std::fclose(Trace);
  EXPECT_NE(Out.find("ui.perfetto.dev"), std::string::npos);

  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
  std::remove(MetricsOut.c_str());
  std::remove(TraceOut.c_str());
}

TEST(ToolsTest, StatWithoutSidecarStillProfilesTheTrace) {
  std::string Log = tempLog();
  // Kill switch: no telemetry, hence no sidecar written.
  ASSERT_EQ(runCommand("LITERACE_TELEMETRY=off " + toolPath("literace-run") +
                       " channel " + Log + " --mode literace --scale 0.05")
                .first,
            0);
  std::FILE *Sidecar = std::fopen((Log + ".metrics.json").c_str(), "r");
  EXPECT_EQ(Sidecar, nullptr) << "kill switch must suppress the sidecar";
  if (Sidecar)
    std::fclose(Sidecar);

  auto [Code, Out] = runCommand(toolPath("literace-stat") + " " + Log);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_GT(statValue(Out, "trace.events"), 0) << Out;
  EXPECT_NE(Out.find("no runtime sidecar"), std::string::npos);
  std::remove(Log.c_str());
}

TEST(ToolsTest, ReportMetricsFlagWritesSnapshot) {
  std::string Log = tempLog();
  // --metrics takes a directory; both artifacts land inside it.
  std::string MetricsDir = ::testing::TempDir();
  std::string MetricsOut = MetricsDir + "/metrics.json";
  std::string TraceOut = MetricsDir + "/trace.perfetto.json";
  ASSERT_EQ(runCommand(toolPath("literace-run") + " concrt-scheduling " +
                       Log + " --mode literace --scale 0.05")
                .first,
            0);
  // --shards engages the sharded pipeline, whose detector-plane counters
  // fold into the process registry and hence into metrics.json.
  auto [Code, Out] = runCommand(toolPath("literace-report") + " " + Log +
                                " --quiet --shards 2 --metrics " +
                                MetricsDir);
  EXPECT_LE(Code, 3) << Out; // Races may or may not be found.
  std::FILE *Metrics = std::fopen(MetricsOut.c_str(), "r");
  ASSERT_NE(Metrics, nullptr);
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Metrics)) != 0)
    Data.append(Buf, N);
  std::fclose(Metrics);
  EXPECT_NE(Data.find("literace.metrics.v1"), std::string::npos);
  EXPECT_NE(Data.find("detector."), std::string::npos);
  std::FILE *Trace = std::fopen(TraceOut.c_str(), "r");
  ASSERT_NE(Trace, nullptr);
  std::fclose(Trace);
  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
  std::remove(MetricsOut.c_str());
  std::remove(TraceOut.c_str());
}

TEST(ToolsTest, V1FormatFlagKeepsTheLegacyPipelineWorking) {
  std::string Log = tempLog();
  auto [RunCode, RunOut] = runCommand(toolPath("literace-run") +
                                      " channel " + Log +
                                      " --mode full --scale 0.05 --format v1");
  ASSERT_EQ(RunCode, 0) << RunOut;
  EXPECT_NE(RunOut.find("(v1)"), std::string::npos);
  auto [RepCode, RepOut] =
      runCommand(toolPath("literace-report") + " " + Log + " --quiet");
  EXPECT_EQ(RepCode, 3) << RepOut;
  // A clean v1 log needs no salvaging.
  EXPECT_EQ(RepOut.find("salvaged"), std::string::npos) << RepOut;
  std::remove(Log.c_str());
}

TEST(ToolsTest, FsckPassesCleanLogsOfEveryFormat) {
  for (const char *Format : {"v1", "v2", "v2z"}) {
    std::string Log = tempLog();
    ASSERT_EQ(runCommand(toolPath("literace-run") + " channel " + Log +
                         " --scale 0.05 --format " + Format)
                  .first,
              0)
        << Format;
    auto [Code, Out] = runCommand(toolPath("literace-fsck") + " " + Log);
    EXPECT_EQ(Code, 0) << Format << ": " << Out;
    EXPECT_NE(Out.find("clean"), std::string::npos) << Format;
    std::remove(Log.c_str());
    std::remove((Log + ".metrics.json").c_str());
  }
}

TEST(ToolsTest, FsckRejectsGarbageAndMissingFiles) {
  auto [MissingCode, MissingOut] =
      runCommand(toolPath("literace-fsck") + " /nonexistent/log.bin");
  EXPECT_EQ(MissingCode, 1);
  EXPECT_NE(MissingOut.find("unreadable"), std::string::npos);
  auto [UsageCode, UsageOut] = runCommand(toolPath("literace-fsck"));
  EXPECT_EQ(UsageCode, 2);
  EXPECT_NE(UsageOut.find("usage:"), std::string::npos);
}

TEST(ToolsTest, KilledRunPropagatesTheSignalAndLeavesASalvageableLog) {
  std::string Log = tempLog();
  auto [RunCode, RunOut] =
      runCommand(toolPath("literace-run") + " channel " + Log +
                 " --mode full --scale 1.0 --kill-after-bytes 120000");
  EXPECT_EQ(RunCode, 137) << RunOut; // 128 + SIGKILL.

  // The frames written before the kill are durable and salvageable.
  auto [FsckCode, FsckOut] =
      runCommand(toolPath("literace-fsck") + " " + Log);
  EXPECT_EQ(FsckCode, 4) << FsckOut;
  EXPECT_NE(FsckOut.find("recoverable"), std::string::npos);
  EXPECT_EQ(FsckOut.find("clean shutdown: yes"), std::string::npos);

  // Detection runs on the salvaged subset (default --salvage)…
  auto [RepCode, RepOut] =
      runCommand(toolPath("literace-report") + " " + Log + " --quiet");
  EXPECT_TRUE(RepCode == 0 || RepCode == 3) << RepCode << "\n" << RepOut;
  EXPECT_NE(RepOut.find("salvaged"), std::string::npos) << RepOut;
  // …and --strict refuses the damaged log outright.
  auto [StrictCode, StrictOut] = runCommand(
      toolPath("literace-report") + " " + Log + " --quiet --strict");
  EXPECT_EQ(StrictCode, 1) << StrictOut;

  // CI sets LITERACE_FAULT_ARTIFACT_DIR and uploads it when fault tests
  // fail, so the exact salvaged log and its inventory are attached to
  // the run for post-mortem.
  if (const char *Dir = std::getenv("LITERACE_FAULT_ARTIFACT_DIR")) {
    std::string D(Dir);
    runCommand("mkdir -p " + D + " && cp " + Log + " " + D +
               "/killed.bin");
    runCommand(toolPath("literace-fsck") + " " + Log + " --segments > " +
               D + "/killed.fsck.txt");
  }
  std::remove(Log.c_str());
}

TEST(ToolsTest, AsyncFlushRunIsCleanAndReportsPipelineStats) {
  std::string Log = tempLog();
  auto [RunCode, RunOut] =
      runCommand(toolPath("literace-run") + " channel " + Log +
                 " --mode full --scale 0.05 --flush async");
  ASSERT_EQ(RunCode, 0) << RunOut;
  EXPECT_NE(RunOut.find("async flush (block)"), std::string::npos)
      << RunOut;
  EXPECT_NE(RunOut.find(", 0 dropped,"), std::string::npos) << RunOut;

  // A lossless async run produces a clean, fully-accounted v2 log.
  auto [FsckCode, FsckOut] =
      runCommand(toolPath("literace-fsck") + " " + Log);
  EXPECT_EQ(FsckCode, 0) << FsckOut;
  EXPECT_NE(FsckOut.find("clean"), std::string::npos);
  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
}

TEST(ToolsTest, KilledAsyncRunStillLeavesASalvageableLog) {
  // The async acceptance criterion from the crash side: with the flusher
  // between the app and the file, a SIGKILLed run must still salvage —
  // losing at most the chunks in flight at the queue, never corrupting
  // what reached the durable sink.
  std::string Log = tempLog();
  auto [RunCode, RunOut] =
      runCommand(toolPath("literace-run") + " channel " + Log +
                 " --mode full --scale 1.0 --flush async"
                 " --kill-after-bytes 120000");
  EXPECT_EQ(RunCode, 137) << RunOut; // 128 + SIGKILL.

  auto [FsckCode, FsckOut] =
      runCommand(toolPath("literace-fsck") + " " + Log);
  EXPECT_EQ(FsckCode, 4) << FsckOut;
  EXPECT_NE(FsckOut.find("recoverable"), std::string::npos);

  // Detection still works on the salvaged subset.
  auto [RepCode, RepOut] =
      runCommand(toolPath("literace-report") + " " + Log + " --quiet");
  EXPECT_TRUE(RepCode == 0 || RepCode == 3) << RepCode << "\n" << RepOut;
  EXPECT_NE(RepOut.find("salvaged"), std::string::npos) << RepOut;

  if (const char *Dir = std::getenv("LITERACE_FAULT_ARTIFACT_DIR")) {
    std::string D(Dir);
    runCommand("mkdir -p " + D + " && cp " + Log + " " + D +
               "/killed-async.bin");
    runCommand(toolPath("literace-fsck") + " " + Log + " --segments > " +
               D + "/killed-async.fsck.txt");
  }
  std::remove(Log.c_str());
}

TEST(ToolsTest, AbortedRunStillWritesTheMetricsSidecar) {
  std::string Log = tempLog();
  std::string Sidecar = Log + ".metrics.json";
  std::remove(Sidecar.c_str());
  auto [RunCode, RunOut] =
      runCommand(toolPath("literace-run") + " channel " + Log +
                 " --mode full --scale 1.0 --abort-after-bytes 120000");
  EXPECT_EQ(RunCode, 134) << RunOut; // 128 + SIGABRT.
  // SIGABRT is catchable: the crash path flushed the sink and left the
  // sidecar before re-raising.
  std::FILE *F = std::fopen(Sidecar.c_str(), "r");
  EXPECT_NE(F, nullptr) << "crash path must write the sidecar";
  if (F)
    std::fclose(F);
  auto [FsckCode, FsckOut] =
      runCommand(toolPath("literace-fsck") + " " + Log + " --segments");
  EXPECT_EQ(FsckCode, 4) << FsckOut;
  std::remove(Log.c_str());
  std::remove(Sidecar.c_str());
}

//===----------------------------------------------------------------------===//
// literace-collectd end-to-end (docs/COLLECTOR.md)
//===----------------------------------------------------------------------===//

/// Waits for \p Path to appear on disk (the daemon binding its socket —
/// stat(), because a socket file cannot be fopen()ed).
bool waitForFile(const std::string &Path, int TimeoutMs = 5000) {
  for (int Waited = 0; Waited < TimeoutMs; Waited += 20) {
    struct stat St;
    if (::stat(Path.c_str(), &St) == 0)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::string readWholeFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Data.append(Buf, N);
  std::fclose(File);
  return Data;
}

/// Extracts every "fnA:B <-> fnC:D  xN" race line from tool output as a
/// set of "pair count" strings — the comparison key for live-vs-batch
/// equivalence.
std::set<std::string> raceLines(const std::string &Out) {
  std::set<std::string> Lines;
  size_t At = 0;
  while ((At = Out.find("fn", At)) != std::string::npos) {
    unsigned F1, S1, F2, S2;
    unsigned long long Count;
    if (std::sscanf(Out.c_str() + At, "fn%u:%u <-> fn%u:%u  x%llu", &F1,
                    &S1, &F2, &S2, &Count) == 5) {
      char Key[128];
      std::snprintf(Key, sizeof(Key), "fn%u:%u<->fn%u:%u x%llu", F1, S1,
                    F2, S2, Count);
      Lines.insert(Key);
      At = Out.find('\n', At);
      if (At == std::string::npos)
        break;
    } else {
      ++At;
    }
  }
  return Lines;
}

/// Copies the daemon's final /status and /races dumps into the CI
/// artifact directory when LITERACE_COLLECTOR_ARTIFACT_DIR is set.
void saveCollectorArtifacts(const std::string &StatusJson,
                            const std::string &RacesJson,
                            const std::string &DaemonLog) {
  const char *Dir = std::getenv("LITERACE_COLLECTOR_ARTIFACT_DIR");
  if (!Dir)
    return;
  std::string D(Dir);
  runCommand("mkdir -p " + D);
  runCommand("cp " + StatusJson + " " + D + "/ 2>/dev/null; cp " +
             RacesJson + " " + D + "/ 2>/dev/null; cp " + DaemonLog + " " +
             D + "/ 2>/dev/null");
}

TEST(CollectdEndToEnd, ConcurrentClientsMatchBatchReports) {
  const std::string Dir = ::testing::TempDir();
  const std::string Socket = Dir + "collectd-e2e.sock";
  const std::string StatusJson = Dir + "collectd-status.json";
  const std::string RacesJson = Dir + "collectd-races.json";
  const std::string DaemonLog = Dir + "collectd-daemon.log";
  std::remove(Socket.c_str());

  // The daemon, backgrounded in its own thread; --exit-after-clients
  // turns it into a self-terminating fixture.
  constexpr int NumClients = 4;
  std::thread Daemon([&] {
    runCommand(toolPath("literace-collectd") + " " + Socket +
               " --exit-after-clients " + std::to_string(NumClients) +
               " --rate-limit 0 --status-json " + StatusJson +
               " --races-json " + RacesJson + " > " + DaemonLog + " 2>&1");
  });
  ASSERT_TRUE(waitForFile(Socket)) << readWholeFile(DaemonLog);

  // Four concurrent clients: two workloads with different races, each
  // recorded twice with the same seed, all streaming while writing their
  // file sink through the tee.
  const char *Workloads[NumClients] = {"channel", "channel",
                                       "concrt-messaging",
                                       "concrt-messaging"};
  std::vector<std::string> Logs(NumClients);
  std::vector<std::thread> Clients;
  for (int I = 0; I < NumClients; ++I) {
    Logs[I] = Dir + "collectd-client" + std::to_string(I) + ".bin";
    Clients.emplace_back([&, I] {
      auto [Code, Out] = runCommand(
          toolPath("literace-run") + " " + std::string(Workloads[I]) + " " +
          Logs[I] + " --mode full --scale 0.05 --seed 11 --connect " +
          Socket);
      EXPECT_EQ(Code, 0) << Out;
      EXPECT_NE(Out.find("streamed the trace to collector"),
                std::string::npos)
          << Out;
    });
  }
  for (std::thread &C : Clients)
    C.join();
  Daemon.join();

  const std::string DaemonOut = readWholeFile(DaemonLog);
  saveCollectorArtifacts(StatusJson, RacesJson, DaemonLog);
  ASSERT_TRUE(waitForFile(StatusJson)) << DaemonOut;

  // Ground truth: batch-replay the four file sinks through one detection
  // and merge — the tee guarantees byte-identical streams, so the live
  // deduped set must match exactly, counts included.
  std::map<std::string, unsigned long long> Batch;
  for (int I = 0; I < NumClients; ++I) {
    auto [Code, Out] =
        runCommand(toolPath("literace-report") + " " + Logs[I]);
    EXPECT_EQ(Code, 3) << Out; // Both workloads race.
    for (const std::string &Line : raceLines(Out)) {
      const size_t Space = Line.rfind(" x");
      Batch[Line.substr(0, Space)] +=
          std::strtoull(Line.c_str() + Space + 2, nullptr, 10);
    }
  }
  ASSERT_FALSE(Batch.empty());
  std::set<std::string> BatchSet;
  for (const auto &[Pair, Count] : Batch)
    BatchSet.insert(Pair + " x" + std::to_string(Count));

  // The daemon's final summary lists every triaged race with its total.
  // Drop the live "race: ..." update lines first — they carry running
  // (partial) counts by design.
  std::string Summary;
  size_t LineStart = 0;
  while (LineStart < DaemonOut.size()) {
    size_t LineEnd = DaemonOut.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = DaemonOut.size();
    const std::string Line =
        DaemonOut.substr(LineStart, LineEnd - LineStart);
    if (Line.compare(0, 5, "race:") != 0)
      Summary += Line + "\n";
    LineStart = LineEnd + 1;
  }
  EXPECT_EQ(raceLines(Summary), BatchSet) << DaemonOut;
  EXPECT_NE(DaemonOut.find("collected 4 session(s)"), std::string::npos)
      << DaemonOut;

  // The JSON artifacts carry their schemas and the session accounting.
  const std::string Status = readWholeFile(StatusJson);
  EXPECT_NE(Status.find("\"schema\": \"literace.status.v1\""),
            std::string::npos);
  EXPECT_NE(Status.find("\"completed\": 4"), std::string::npos) << Status;
  EXPECT_NE(Status.find("\"clean\": 4"), std::string::npos) << Status;
  const std::string Races = readWholeFile(RacesJson);
  EXPECT_NE(Races.find("\"schema\": \"literace.races.v1\""),
            std::string::npos);

  for (int I = 0; I < NumClients; ++I) {
    std::remove(Logs[I].c_str());
    std::remove((Logs[I] + ".metrics.json").c_str());
  }
  std::remove(StatusJson.c_str());
  std::remove(RacesJson.c_str());
  std::remove(DaemonLog.c_str());
}

/// The end-to-end durability proof (docs/ROBUSTNESS.md): the daemon
/// SIGKILLs itself mid-session at a seeded byte threshold, a second life
/// recovers the spool directory, the client rides through on its own
/// spool-and-reconnect, and the recovered live race set must match a
/// batch literace-report over the client's primary log exactly — counts
/// included — with the client admitting zero loss (--connect-strict
/// exit 0). Afterwards literace-fsck --spool audits the directory clean.
TEST(CollectdEndToEnd, DaemonKillRestartRecoversExactly) {
  const std::string Dir = ::testing::TempDir();
  const std::string Socket = Dir + "collectd-kill.sock";
  const std::string SpoolDir = Dir + "collectd-kill-spool";
  const std::string Log = Dir + "collectd-kill.bin";
  const std::string StatusJson = Dir + "collectd-kill-status.json";
  const std::string RacesJson = Dir + "collectd-kill-races.json";
  const std::string Daemon1Log = Dir + "collectd-kill-d1.log";
  const std::string Daemon2Log = Dir + "collectd-kill-d2.log";
  std::remove(Socket.c_str());
  runCommand("rm -rf " + SpoolDir);

  // Life 1: journals to the spool, then SIGKILLs itself once 300000
  // bytes have been ingested — deterministically mid-session for this
  // workload/scale (the stream is several MB).
  std::thread Daemon1([&] {
    runCommand(toolPath("literace-collectd") + " " + Socket +
               " --spool-dir " + SpoolDir +
               " --ack-every-bytes 4096 --checkpoint-every 8" +
               " --rate-limit 0 --kill-after-bytes 300000 > " + Daemon1Log +
               " 2>&1");
  });
  ASSERT_TRUE(waitForFile(Socket)) << readWholeFile(Daemon1Log);

  // The client starts against life 1 and must outlive the kill: its
  // spool absorbs the outage, reconnects reach life 2, and strict mode
  // makes any byte loss a hard failure.
  int ClientCode = -1;
  std::string ClientOut;
  std::thread Client([&] {
    std::tie(ClientCode, ClientOut) = runCommand(
        toolPath("literace-run") + " channel " + Log +
        " --mode full --scale 0.05 --seed 7 --connect " + Socket +
        " --connect-strict --connect-drain-ms 20000");
  });

  Daemon1.join(); // dies by its own SIGKILL at the byte threshold
  EXPECT_EQ(runCommand("test -d " + SpoolDir).first, 0);

  // Life 2: recovers the journal + checkpoint, lets the client resume,
  // and finishes the session normally.
  std::thread Daemon2([&] {
    runCommand(toolPath("literace-collectd") + " " + Socket +
               " --spool-dir " + SpoolDir +
               " --ack-every-bytes 4096 --rate-limit 0" +
               " --exit-after-clients 1 --status-json " + StatusJson +
               " --races-json " + RacesJson + " > " + Daemon2Log + " 2>&1");
  });
  Client.join();
  Daemon2.join();

  const std::string Daemon2Out = readWholeFile(Daemon2Log);
  saveCollectorArtifacts(StatusJson, RacesJson, Daemon2Log);
  EXPECT_EQ(ClientCode, 0) << ClientOut;
  EXPECT_NE(ClientOut.find("streamed the trace to collector"),
            std::string::npos)
      << ClientOut;
  EXPECT_NE(ClientOut.find("reconnect(s)"), std::string::npos) << ClientOut;

  // Ground truth: batch-report the client's primary log. The recovered
  // live set must be identical, counts included.
  auto [RepCode, RepOut] = runCommand(toolPath("literace-report") + " " + Log);
  EXPECT_EQ(RepCode, 3) << RepOut;
  const std::set<std::string> BatchSet = raceLines(RepOut);
  ASSERT_FALSE(BatchSet.empty());
  std::string Summary;
  size_t LineStart = 0;
  while (LineStart < Daemon2Out.size()) {
    size_t LineEnd = Daemon2Out.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = Daemon2Out.size();
    const std::string Line =
        Daemon2Out.substr(LineStart, LineEnd - LineStart);
    if (Line.compare(0, 5, "race:") != 0)
      Summary += Line + "\n";
    LineStart = LineEnd + 1;
  }
  EXPECT_EQ(raceLines(Summary), BatchSet) << Daemon2Out;
  EXPECT_NE(Daemon2Out.find("collected 1 session(s)"), std::string::npos)
      << Daemon2Out;

  // The spool directory ends consistent: journal unlinked at session
  // finish, checkpoint present — fsck audits it clean.
  auto [FsckCode, FsckOut] =
      runCommand(toolPath("literace-fsck") + " --spool " + SpoolDir);
  EXPECT_EQ(FsckCode, 0) << FsckOut;
  EXPECT_NE(FsckOut.find("checkpoint:     ok"), std::string::npos)
      << FsckOut;

  if (const char *ArtifactDir =
          std::getenv("LITERACE_COLLECTOR_ARTIFACT_DIR")) {
    std::string D(ArtifactDir);
    runCommand("mkdir -p " + D + " && cp -r " + SpoolDir + " " + D +
               "/ 2>/dev/null; cp " + Daemon1Log + " " + D + "/ 2>/dev/null");
  }
  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
  std::remove(StatusJson.c_str());
  std::remove(RacesJson.c_str());
  std::remove(Daemon1Log.c_str());
  std::remove(Daemon2Log.c_str());
  runCommand("rm -rf " + SpoolDir);
}

/// --connect-strict with no reachable collector and a spool cap small
/// enough to overflow: the run itself succeeds (the tee never degrades
/// the primary sink) but the tool exits nonzero and admits the loss in
/// both the console warning and the metrics sidecar.
TEST(CollectdEndToEnd, ConnectStrictFailsClosedWhenCollectorUnreachable) {
  const std::string Dir = ::testing::TempDir();
  const std::string Log = Dir + "collectd-strict.bin";
  auto [Code, Out] = runCommand(
      toolPath("literace-run") + " channel " + Log +
      " --mode full --scale 0.05 --seed 7 --connect " + Dir +
      "no-such-collector.sock --connect-strict" +
      " --connect-spool-cap 65536 --connect-drain-ms 100");
  EXPECT_EQ(Code, 1) << Out;
  EXPECT_NE(Out.find("byte(s) lost"), std::string::npos) << Out;
  // The primary log is still complete and reportable.
  auto [RepCode, RepOut] = runCommand(toolPath("literace-report") + " " + Log);
  EXPECT_EQ(RepCode, 3) << RepOut;
  // Loss is always accounted in the sidecar.
  const std::string Sidecar = readWholeFile(Log + ".metrics.json");
  EXPECT_NE(Sidecar.find("sink.tee.lost_bytes"), std::string::npos)
      << Sidecar;
  EXPECT_NE(Sidecar.find("sink.tee.cap_hits"), std::string::npos) << Sidecar;
  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
}

/// Streams the bytes of \p FilePath into the AF_UNIX socket at
/// \p SocketPath and closes the connection — a minimal raw-POSIX stand-in
/// for a `literace-run --connect` client, used to replay a recorded log
/// byte-for-byte into a daemon.
bool streamFileToSocket(const std::string &FilePath,
                        const std::string &SocketPath) {
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                SocketPath.c_str());
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return false;
  }
  std::FILE *File = std::fopen(FilePath.c_str(), "rb");
  if (!File) {
    ::close(Fd);
    return false;
  }
  char Buf[4096];
  size_t N;
  bool Ok = true;
  while (Ok && (N = std::fread(Buf, 1, sizeof(Buf), File)) != 0) {
    size_t At = 0;
    while (At < N) {
      const ssize_t Sent = ::send(Fd, Buf + At, N - At, MSG_NOSIGNAL);
      if (Sent < 0) {
        if (errno == EINTR)
          continue;
        Ok = false;
        break;
      }
      At += static_cast<size_t>(Sent);
    }
  }
  std::fclose(File);
  ::close(Fd);
  return Ok;
}

TEST(CollectdEndToEnd, SuppressionFileSilencesTheRaces) {
  const std::string Dir = ::testing::TempDir();
  const std::string Socket = Dir + "collectd-supp.sock";
  const std::string Log = Dir + "collectd-supp.bin";
  const std::string SuppPath = Dir + "collectd-supp.txt";
  std::remove(Socket.c_str());

  // Pass 1: record once, report the races offline.
  ASSERT_EQ(runCommand(toolPath("literace-run") + " channel " + Log +
                       " --mode full --scale 0.05 --seed 5")
                .first,
            0);
  auto [RepCode, RepOut] =
      runCommand(toolPath("literace-report") + " " + Log);
  ASSERT_EQ(RepCode, 3) << RepOut;

  // Build a suppression file covering every reported site pair.
  std::FILE *Supp = std::fopen(SuppPath.c_str(), "w");
  ASSERT_NE(Supp, nullptr);
  int Entry = 0;
  for (const std::string &Line : raceLines(RepOut)) {
    unsigned F1, S1, F2, S2;
    ASSERT_EQ(std::sscanf(Line.c_str(), "fn%u:%u<->fn%u:%u", &F1, &S1, &F2,
                          &S2),
              4);
    std::fprintf(Supp,
                 "{\n  triaged-%d\n  LiteRace:Race\n"
                 "  site:fn%u:%u\n  site:fn%u:%u\n}\n",
                 Entry++, F1, S1, F2, S2);
  }
  std::fclose(Supp);
  ASSERT_GT(Entry, 0);

  // Pass 2: replay the exact recorded bytes into a daemon loaded with
  // the suppressions — same races, but now every one is silenced, the
  // exit code drops to 0, and the Valgrind-style usage accounting names
  // each entry.
  const std::string DaemonLog = Dir + "collectd-supp-daemon.log";
  std::thread Daemon([&] {
    runCommand(toolPath("literace-collectd") + " " + Socket +
               " --exit-after-clients 1 --suppressions " + SuppPath +
               " > " + DaemonLog + " 2>&1");
  });
  ASSERT_TRUE(waitForFile(Socket));
  EXPECT_TRUE(streamFileToSocket(Log, Socket));
  Daemon.join();

  const std::string DaemonOut = readWholeFile(DaemonLog);
  EXPECT_NE(DaemonOut.find("0 unsuppressed"), std::string::npos)
      << DaemonOut;
  EXPECT_NE(DaemonOut.find("used suppression:"), std::string::npos)
      << DaemonOut;
  EXPECT_NE(DaemonOut.find("triaged-0"), std::string::npos) << DaemonOut;

  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
  std::remove(SuppPath.c_str());
  std::remove(DaemonLog.c_str());
}

TEST(CollectdEndToEnd, RejectsV1FormatWithConnect) {
  auto [Code, Out] =
      runCommand(toolPath("literace-run") + " channel /tmp/x.bin" +
                 " --format v1 --connect /tmp/nowhere.sock");
  EXPECT_EQ(Code, 2);
  EXPECT_NE(Out.find("cannot be combined with --format v1"),
            std::string::npos)
      << Out;
}

TEST(ToolsTest, StatPrometheusFlagEmitsValidExposition) {
  std::string Log = tempLog();
  std::string PromOut = std::string(::testing::TempDir()) + "stat.prom";
  ASSERT_EQ(runCommand(toolPath("literace-run") + " browser-start " + Log +
                       " --mode literace --scale 0.5")
                .first,
            0);
  auto [Code, Out] = runCommand(toolPath("literace-stat") + " " + Log +
                                " --prometheus " + PromOut);
  ASSERT_EQ(Code, 0) << Out;
  const std::string Text = readWholeFile(PromOut);
  ASSERT_FALSE(Text.empty());
  // Spot-check the exposition shape; the tool already self-validated it
  // against the full grammar before writing.
  EXPECT_NE(Text.find("# TYPE literace_trace_events_total counter"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("literace_capture_info{"), std::string::npos)
      << "runtime sidecars are capture-stamped";
  // "-" streams the document to stdout instead.
  auto [StdoutCode, StdoutOut] = runCommand(
      toolPath("literace-stat") + " " + Log + " --prometheus - 2>/dev/null");
  EXPECT_EQ(StdoutCode, 0);
  EXPECT_NE(StdoutOut.find("# TYPE"), std::string::npos);
  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
  std::remove(PromOut.c_str());
}

TEST(ToolsTest, MetricsSidecarCarriesTheCaptureStamp) {
  std::string Log = tempLog();
  ASSERT_EQ(runCommand(toolPath("literace-run") + " channel " + Log +
                       " --mode literace --scale 0.05")
                .first,
            0);
  const std::string Sidecar = readWholeFile(Log + ".metrics.json");
  ASSERT_FALSE(Sidecar.empty());
  EXPECT_NE(Sidecar.find("\"schema\": \"literace.metrics.v1\""),
            std::string::npos);
  // The additive meta block: capture wall-clock and emitting pid.
  EXPECT_NE(Sidecar.find("\"meta\""), std::string::npos) << Sidecar;
  EXPECT_NE(Sidecar.find("\"captured_unix_ms\""), std::string::npos);
  EXPECT_NE(Sidecar.find("\"pid\""), std::string::npos);
  std::remove(Log.c_str());
  std::remove((Log + ".metrics.json").c_str());
}

TEST(ToolsTest, LocksetBackendWarnsAboutImprecision) {
  std::string Log = tempLog();
  ASSERT_EQ(runCommand(toolPath("literace-run") + " httpd-2 " + Log +
                       " --mode full --scale 0.02")
                .first,
            0);
  auto [Code, Out] = runCommand(toolPath("literace-report") + " " + Log +
                                " --quiet --detector lockset");
  (void)Code; // Lockset may or may not flag something; both fine.
  EXPECT_NE(Out.find("FALSE"), std::string::npos);
  std::remove(Log.c_str());
}

} // namespace
