//===-- tests/ModelCheckTest.cpp - Oracle cross-validation ------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Cross-validates the production detectors against the brute-force
// ReferenceDetector oracle, which snapshots a full vector clock per
// memory access and enumerates ALL racing pairs:
//
//   soundness     every pair a production detector reports is confirmed
//                 unordered by the oracle (no false positives, ever);
//   completeness  the production detectors flag exactly the addresses
//                 the oracle finds racy (witness pairs may differ).
//
// Randomized traces cover lock/event/atomic/fork mixtures; a real
// workload trace closes the loop end to end.
//
//===----------------------------------------------------------------------===//

#include "detector/ReferenceDetector.h"

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "harness/DetectionExperiment.h"
#include "support/SplitMix64.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

/// Random well-formed trace over a mix of synchronization kinds.
Trace randomTrace(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  LogBuilder B(8);
  const unsigned Threads = 2 + Rng.nextBelow(4);
  const unsigned Ops = 30 + Rng.nextBelow(60);

  // Fork edges from thread 0 to everyone, half the time (the other half
  // leaves the threads fully unordered at start).
  if (Rng.nextBelow(2)) {
    B.onThread(0);
    for (unsigned T = 1; T != Threads; ++T)
      B.release(makeSyncVar(SyncObjectKind::ThreadFork, T));
  }
  for (unsigned T = 1; T != Threads; ++T)
    if (Rng.nextBelow(2))
      B.onThread(T).acquire(makeSyncVar(SyncObjectKind::ThreadFork, T));

  for (unsigned T = 0; T != Threads; ++T) {
    B.onThread(T);
    int Held = -1;
    for (unsigned I = 0; I != Ops; ++I) {
      uint64_t Addr = 0x1000 + 8 * Rng.nextBelow(5);
      switch (Rng.nextBelow(8)) {
      case 0:
      case 1:
        B.read(Addr, makePc(T, I));
        break;
      case 2:
      case 3:
        B.write(Addr, makePc(T, I));
        break;
      case 4:
        if (Held < 0) {
          Held = static_cast<int>(Rng.nextBelow(2));
          B.lock(makeSyncVar(SyncObjectKind::Mutex, 0x9000 + Held));
        }
        break;
      case 5:
        if (Held >= 0) {
          B.unlock(makeSyncVar(SyncObjectKind::Mutex, 0x9000 + Held));
          Held = -1;
        }
        break;
      case 6:
        B.acqRel(makeSyncVar(SyncObjectKind::Atomic, 0xa000));
        break;
      case 7:
        if (Rng.nextBelow(2))
          B.release(makeSyncVar(SyncObjectKind::Event, 0xb000));
        else
          B.acquire(makeSyncVar(SyncObjectKind::Event, 0xb000));
        break;
      }
    }
    if (Held >= 0)
      B.unlock(makeSyncVar(SyncObjectKind::Mutex, 0x9000 + Held));
  }
  return B.build();
}

/// Checks every reported pair of \p Candidate against the oracle's
/// complete pair set.
void expectSound(const RaceReport &Candidate, const RaceReport &Oracle,
                 uint64_t Seed, const char *Name) {
  auto OracleKeys = Oracle.keys();
  for (const StaticRaceKey &Key : Candidate.keys())
    EXPECT_TRUE(OracleKeys.count(Key))
        << Name << " reported a pair the oracle rejects (seed " << Seed
        << "): " << Key.first << "," << Key.second;
}

class ModelCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelCheckTest, ProductionDetectorsMatchTheOracle) {
  const uint64_t Seed = GetParam();
  Trace T = randomTrace(Seed);

  RaceReport Oracle, HB, FT;
  ASSERT_TRUE(detectRacesReference(T, Oracle));
  ASSERT_TRUE(detectRaces(T, HB));
  ASSERT_TRUE(detectRacesFastTrack(T, FT));

  // Soundness: no production detector invents a pair.
  expectSound(HB, Oracle, Seed, "HBDetector");
  expectSound(FT, Oracle, Seed, "FastTrackDetector");

  // Address-completeness: racy addresses agree exactly.
  RaceReport OracleAddrs;
  ReferenceDetector Ref;
  ASSERT_TRUE(replayTrace(T, Ref));
  EXPECT_EQ(HB.racyAddresses(), Ref.racyAddresses()) << "seed " << Seed;
  EXPECT_EQ(FT.racyAddresses(), Ref.racyAddresses()) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheckTest,
                         ::testing::Range<uint64_t>(1, 61));

TEST(ModelCheckOracleTest, OracleFindsAllPairsNotJustWitnesses) {
  // Three unordered writers: the oracle reports all three pairs; the
  // production detector is allowed to as well (it does here), but the
  // oracle's completeness is what downstream assertions rely on.
  LogBuilder B(16);
  B.onThread(0).write(0x10, makePc(1, 1));
  B.onThread(1).write(0x10, makePc(2, 2));
  B.onThread(2).write(0x10, makePc(3, 3));
  RaceReport Oracle;
  ASSERT_TRUE(detectRacesReference(B.build(), Oracle));
  EXPECT_EQ(Oracle.numStaticRaces(), 3u);
  EXPECT_EQ(Oracle.numDynamicSightings(), 3u);
}

TEST(ModelCheckOracleTest, OracleRespectsAllSyncKinds) {
  LogBuilder B(16);
  SyncVar E = makeSyncVar(SyncObjectKind::Event, 0x1);
  SyncVar A = makeSyncVar(SyncObjectKind::Atomic, 0x2);
  B.onThread(0).write(0x10, makePc(1, 1)).release(E);
  B.onThread(1).acquire(E).write(0x10, makePc(2, 2)).acqRel(A);
  B.onThread(2).acqRel(A).write(0x10, makePc(3, 3));
  RaceReport Oracle;
  ASSERT_TRUE(detectRacesReference(B.build(), Oracle));
  EXPECT_EQ(Oracle.numStaticRaces(), 0u);
}

TEST(ModelCheckOracleTest, AccessCountsAreComplete) {
  LogBuilder B(16);
  B.onThread(0).write(0x10, 1).read(0x20, 2).read(0x10, 3);
  ReferenceDetector Ref;
  ASSERT_TRUE(replayTrace(B.build(), Ref));
  EXPECT_EQ(Ref.accessesRecorded(), 3u);
}

TEST(ModelCheckWorkloadTest, HBDetectorIsSoundOnARealWorkloadTrace) {
  // End-to-end soundness on a real (small) ConcRT Messaging run: every
  // pair the production detector reports must be oracle-confirmed.
  auto W = makeWorkload(WorkloadKind::ConcRTMessaging);
  WorkloadParams Params;
  Params.Scale = 0.02;
  ExperimentRun Run = executeExperiment(*W, Params);

  RaceReport Oracle, HB;
  ASSERT_TRUE(detectRacesReference(Run.TraceData, Oracle));
  ASSERT_TRUE(detectRaces(Run.TraceData, HB));
  expectSound(HB, Oracle, 0, "HBDetector(workload)");
  EXPECT_EQ(HB.racyAddresses(), Oracle.racyAddresses());
}

} // namespace
