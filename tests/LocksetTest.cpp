//===-- tests/LocksetTest.cpp - Eraser-style lockset baseline --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Verifies the lockset baseline's behavior AND the reason the paper chose
// happens-before instead: lockset reports false positives on
// synchronization it does not model (fork/join, events), which
// happens-before handles precisely (§2, §6.1).
//
//===----------------------------------------------------------------------===//

#include "detector/LocksetDetector.h"

#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr SyncVar L = makeSyncVar(SyncObjectKind::Mutex, 0x1000);
constexpr SyncVar L2 = makeSyncVar(SyncObjectKind::Mutex, 0x2000);
constexpr SyncVar E = makeSyncVar(SyncObjectKind::Event, 0x3000);
constexpr uint64_t X = 0xbeef0;
constexpr Pc PcA = makePc(1, 1);
constexpr Pc PcB = makePc(2, 2);

RaceReport lockset(const LogBuilder &B) {
  RaceReport Report;
  EXPECT_TRUE(detectLocksetViolations(B.build(), Report));
  return Report;
}

TEST(LocksetTest, ConsistentLockDisciplineIsSilent) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcA).unlock(L);
  B.onThread(1).lock(L).write(X, PcB).unlock(L);
  EXPECT_EQ(lockset(B).numStaticRaces(), 0u);
}

TEST(LocksetTest, InconsistentLocksAreReported) {
  LogBuilder B(1024);
  B.onThread(0).lock(L).write(X, PcA).unlock(L);
  B.onThread(1).lock(L2).write(X, PcB).unlock(L2);
  EXPECT_EQ(lockset(B).numStaticRaces(), 1u);
}

TEST(LocksetTest, NoLocksAtAllIsReported) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcA);
  B.onThread(1).write(X, PcB);
  EXPECT_EQ(lockset(B).numStaticRaces(), 1u);
}

TEST(LocksetTest, InitializationByOwnerToleratedUntilShared) {
  LogBuilder B(16);
  // Exclusive phase: the allocating thread initializes without locks.
  B.onThread(0).write(X, PcA).write(X, PcA).write(X, PcA);
  // Then consistent locking from everyone.
  B.onThread(0).lock(L).write(X, PcA).unlock(L);
  B.onThread(1).lock(L).read(X, PcB).unlock(L);
  EXPECT_EQ(lockset(B).numStaticRaces(), 0u);
}

TEST(LocksetTest, SharedReadOnlyIsNotReported) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcA); // Exclusive init.
  B.onThread(1).read(X, PcB);  // Shared, never modified after sharing.
  B.onThread(2).read(X, PcB);
  EXPECT_EQ(lockset(B).numStaticRaces(), 0u);
}

TEST(LocksetTest, ReportsEachAddressOnce) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcA);
  B.onThread(1).write(X, PcB).write(X, PcB).write(X, PcB);
  RaceReport R = lockset(B);
  EXPECT_EQ(R.numDynamicSightings(), 1u);
}

// --- The paper's core argument: lockset is imprecise. ---

TEST(LocksetTest, FalsePositiveOnForkJoinStyleOrdering) {
  constexpr SyncVar Fork = makeSyncVar(SyncObjectKind::ThreadFork, 9);
  LogBuilder B(16);
  // Parent initializes X, then forks a child that writes X. Perfectly
  // ordered — no lock needed.
  B.onThread(0).write(X, PcA).release(Fork);
  B.onThread(1).acquire(Fork).write(X, PcB);
  Trace T = B.build();

  RaceReport HB;
  EXPECT_TRUE(detectRaces(T, HB));
  EXPECT_EQ(HB.numStaticRaces(), 0u) << "happens-before is precise here";

  RaceReport LS;
  EXPECT_TRUE(detectLocksetViolations(T, LS));
  EXPECT_EQ(LS.numStaticRaces(), 1u)
      << "lockset cannot model fork/join and cries wolf";
}

TEST(LocksetTest, FalsePositiveOnEventHandoff) {
  LogBuilder B(16);
  // Producer/consumer handoff through an event: ordered, lock-free.
  B.onThread(0).write(X, PcA).release(E);
  B.onThread(1).acquire(E).write(X, PcB);
  Trace T = B.build();

  RaceReport HB;
  EXPECT_TRUE(detectRaces(T, HB));
  EXPECT_EQ(HB.numStaticRaces(), 0u);

  RaceReport LS;
  EXPECT_TRUE(detectLocksetViolations(T, LS));
  EXPECT_EQ(LS.numStaticRaces(), 1u);
}

TEST(LocksetTest, CanPredictRacesHBMisses) {
  // Lockset's one advantage (§2): it can flag inconsistent locking even
  // when this particular interleaving happened to order the accesses.
  LogBuilder B(16);
  B.onThread(0).lock(L).lock(L2).write(X, PcA).unlock(L2).unlock(L);
  // T1 holds only L2 — but its access is HB-ordered after T0's via L2's
  // release/acquire chain, so happens-before stays silent.
  B.onThread(1).lock(L2).write(X, PcB).unlock(L2);
  Trace T = B.build();

  RaceReport HB;
  EXPECT_TRUE(detectRaces(T, HB));
  EXPECT_EQ(HB.numStaticRaces(), 0u);

  RaceReport LS;
  EXPECT_TRUE(detectLocksetViolations(T, LS));
  // C(X) = {L, L2} ∩ {L2} = {L2}: still consistent — refine further.
  // Third thread with only L:
  LogBuilder B2(16);
  B2.onThread(0).lock(L).lock(L2).write(X, PcA).unlock(L2).unlock(L);
  B2.onThread(1).lock(L2).write(X, PcB).unlock(L2);
  B2.onThread(1).lock(L).write(X, PcB).unlock(L);
  RaceReport LS2;
  EXPECT_TRUE(detectLocksetViolations(B2.build(), LS2));
  EXPECT_EQ(LS2.numStaticRaces(), 1u)
      << "no common lock protects every access";
}

TEST(LocksetTest, FlaggedAddressesAreTracked) {
  LogBuilder B(16);
  B.onThread(0).write(X, PcA);
  B.onThread(1).write(X, PcB);
  B.onThread(0).write(X + 8, PcA);
  B.onThread(1).write(X + 8, PcB);
  RaceReport Report;
  LocksetDetector D(Report);
  EXPECT_TRUE(replayTrace(B.build(), D));
  EXPECT_EQ(D.numFlaggedAddresses(), 2u);
}

} // namespace
