//===-- tests/TimestampTest.cpp - Logical timestamp counters --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TimestampManager.h"

#include <gtest/gtest.h>
#include <set>
#include <thread>
#include <vector>

using namespace literace;

namespace {

TEST(TimestampTest, DrawsStartAtOneAndIncrease) {
  TimestampManager TM(16);
  SyncVar S = makeSyncVar(SyncObjectKind::Mutex, 0x1000);
  EXPECT_EQ(TM.draw(S), 1u);
  EXPECT_EQ(TM.draw(S), 2u);
  EXPECT_EQ(TM.draw(S), 3u);
}

TEST(TimestampTest, SameSyncVarSameCounter) {
  TimestampManager TM(128);
  SyncVar S = makeSyncVar(SyncObjectKind::Event, 0xabcd);
  unsigned C = TM.counterFor(S);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(TM.counterFor(S), C);
}

TEST(TimestampTest, CounterMatchesFreeFunction) {
  TimestampManager TM(64);
  for (uint64_t V = 0; V != 200; ++V) {
    SyncVar S = makeSyncVar(SyncObjectKind::Atomic, V * 8);
    EXPECT_EQ(TM.counterFor(S), counterForSyncVar(S, 64));
  }
}

TEST(TimestampTest, CountersCoverTheRange) {
  // The hash should spread SyncVars across all counters.
  const unsigned N = 16;
  std::set<unsigned> Seen;
  for (uint64_t V = 0; V != 1000; ++V)
    Seen.insert(counterForSyncVar(
        makeSyncVar(SyncObjectKind::Mutex, 0x7f0000 + V * 64), N));
  EXPECT_EQ(Seen.size(), N);
}

TEST(TimestampTest, DifferentKindsDifferentSyncVars) {
  SyncVar A = makeSyncVar(SyncObjectKind::Mutex, 0x1234);
  SyncVar B = makeSyncVar(SyncObjectKind::Event, 0x1234);
  EXPECT_NE(A, B);
  EXPECT_EQ(syncVarKind(A), SyncObjectKind::Mutex);
  EXPECT_EQ(syncVarKind(B), SyncObjectKind::Event);
}

TEST(TimestampTest, ConcurrentDrawsAreUniqueAndDense) {
  TimestampManager TM(1); // Force all draws onto one counter.
  SyncVar S = makeSyncVar(SyncObjectKind::Mutex, 0x42);
  const unsigned PerThread = 20000;
  const unsigned NumThreads = 4;
  std::vector<std::vector<uint64_t>> Draws(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Draws[T].reserve(PerThread);
      for (unsigned I = 0; I != PerThread; ++I)
        Draws[T].push_back(TM.draw(S));
    });
  for (auto &Th : Threads)
    Th.join();

  std::set<uint64_t> All;
  for (const auto &V : Draws) {
    // Program order within a thread must be increasing.
    for (size_t I = 1; I < V.size(); ++I)
      ASSERT_LT(V[I - 1], V[I]);
    All.insert(V.begin(), V.end());
  }
  // Globally unique and dense 1..N.
  ASSERT_EQ(All.size(), PerThread * NumThreads);
  EXPECT_EQ(*All.begin(), 1u);
  EXPECT_EQ(*All.rbegin(), static_cast<uint64_t>(PerThread * NumThreads));
}

TEST(PcTest, PackAndUnpack) {
  Pc P = makePc(0x1234, 0x567);
  EXPECT_EQ(pcFunction(P), 0x1234u);
  EXPECT_EQ(pcSite(P), 0x567u);
}

} // namespace
