//===-- tests/LogBuilderTest.cpp - Synthetic trace builder -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/LogBuilder.h"

#include "detector/Replay.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x100);

TEST(LogBuilderTest, BuildsPerThreadStreams) {
  LogBuilder B(16);
  B.onThread(0).write(0x10, 7).onThread(2).read(0x20, 9);
  Trace T = B.build();
  ASSERT_EQ(T.PerThread.size(), 3u);
  ASSERT_EQ(T.PerThread[0].size(), 1u);
  EXPECT_EQ(T.PerThread[0][0].Kind, EventKind::Write);
  EXPECT_EQ(T.PerThread[0][0].Pc, 7u);
  EXPECT_TRUE(T.PerThread[1].empty());
  ASSERT_EQ(T.PerThread[2].size(), 1u);
  EXPECT_EQ(T.PerThread[2][0].Tid, 2u);
}

TEST(LogBuilderTest, TimestampsFollowCallOrder) {
  LogBuilder B(16);
  B.onThread(0).acquire(M);
  B.onThread(1).acquire(M);
  B.onThread(0).release(M);
  Trace T = B.build();
  EXPECT_EQ(T.PerThread[0][0].Ts, 1u);
  EXPECT_EQ(T.PerThread[1][0].Ts, 2u);
  EXPECT_EQ(T.PerThread[0][1].Ts, 3u);
}

TEST(LogBuilderTest, MemoryEventsCarryMask) {
  LogBuilder B(16);
  B.onThread(0).write(0x10, 1, 0x8003);
  Trace T = B.build();
  EXPECT_EQ(T.PerThread[0][0].Mask, 0x8003u);
  EXPECT_EQ(T.PerThread[0][0].Ts, 0u);
}

TEST(LogBuilderTest, BuiltTracesAreAlwaysReplayable) {
  LogBuilder B(4);
  SyncVar E = makeSyncVar(SyncObjectKind::Event, 0x200);
  B.onThread(0).threadStart().lock(M).write(0x1, 1).unlock(M).release(E);
  B.onThread(1).threadStart().acquire(E).lock(M).read(0x1, 2).unlock(M)
      .acqRel(makeSyncVar(SyncObjectKind::Atomic, 0x300)).threadEnd();
  B.onThread(0).alloc(makeSyncVar(SyncObjectKind::Page, 5))
      .free(makeSyncVar(SyncObjectKind::Page, 5)).threadEnd();

  struct Count : TraceConsumer {
    size_t N = 0;
    void onEvent(const EventRecord &) override { ++N; }
  } C;
  Trace T = B.build();
  EXPECT_TRUE(replayTrace(T, C));
  EXPECT_EQ(C.N, T.totalEvents());
}

TEST(LogBuilderTest, BuildIsASnapshot) {
  LogBuilder B(16);
  B.onThread(0).write(0x1, 1);
  Trace First = B.build();
  B.write(0x2, 2);
  Trace Second = B.build();
  EXPECT_EQ(First.totalEvents(), 1u);
  EXPECT_EQ(Second.totalEvents(), 2u);
}

TEST(LogBuilderTest, RawAppendsVerbatim) {
  LogBuilder B(16);
  EventRecord R;
  R.Kind = EventKind::Acquire;
  R.Addr = M;
  R.Ts = 999; // Deliberately bogus.
  B.onThread(0).raw(R);
  Trace T = B.build();
  EXPECT_EQ(T.PerThread[0][0].Ts, 999u);
}

} // namespace
