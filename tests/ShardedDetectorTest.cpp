//===-- tests/ShardedDetectorTest.cpp - Differential equivalence -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The sharded parallel pipeline must be indistinguishable from the serial
// detector: for any trace and any shard count, the merged report is
// byte-identical — same static races, same dynamic counts, same
// first-occurrence epochs (event indices), same example addresses, same
// describe() text. Two layers of evidence:
//
//   * ShardedDetectorTest.*: deterministic LogBuilder traces targeting
//     each mechanism (address partitioning, sync broadcast, first-
//     occurrence merge, queue backpressure). These spawn worker threads
//     but contain no real data races, so they also run under TSan (the
//     "detector" ctest label), race-checking the queue/worker code
//     itself.
//
//   * ShardedWorkloadEquivalence.*: every benchmark workload at small
//     scale, sharded at N ∈ {1, 2, 4, 8} vs the serial detector and the
//     brute-force ReferenceDetector oracle. Workloads seed REAL races by
//     design, so this suite is filtered out of sanitizer builds (see
//     tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "detector/OnlineDetector.h"
#include "detector/LogBuilder.h"
#include "detector/ReferenceDetector.h"
#include "detector/ShardedDetector.h"
#include "harness/DetectionExperiment.h"
#include "support/SpscRing.h"

#include <gtest/gtest.h>

#include <thread>

using namespace literace;

namespace {

/// Asserts that two reports are indistinguishable, field by field and as
/// rendered text.
void expectIdenticalReports(const RaceReport &Serial,
                            const RaceReport &Candidate,
                            const std::string &Label) {
  EXPECT_EQ(Serial.numDynamicSightings(), Candidate.numDynamicSightings())
      << Label;
  EXPECT_EQ(Serial.racyAddresses(), Candidate.racyAddresses()) << Label;
  auto Want = Serial.staticRaces();
  auto Got = Candidate.staticRaces();
  ASSERT_EQ(Want.size(), Got.size()) << Label;
  for (size_t I = 0; I != Want.size(); ++I) {
    EXPECT_EQ(Want[I].Key, Got[I].Key) << Label << " race " << I;
    EXPECT_EQ(Want[I].DynamicCount, Got[I].DynamicCount)
        << Label << " race " << I;
    EXPECT_EQ(Want[I].ExampleAddr, Got[I].ExampleAddr)
        << Label << " race " << I;
    EXPECT_EQ(Want[I].FirstEventIndex, Got[I].FirstEventIndex)
        << Label << " race " << I;
    EXPECT_EQ(Want[I].SawWriteWrite, Got[I].SawWriteWrite)
        << Label << " race " << I;
  }
  EXPECT_EQ(Serial.describe(), Candidate.describe()) << Label;
}

/// Runs serial and sharded detection over \p T and asserts equivalence at
/// every requested width.
void expectShardInvariant(const Trace &T,
                          std::initializer_list<unsigned> Widths = {1, 2, 4,
                                                                    8}) {
  RaceReport Serial;
  ASSERT_TRUE(detectRaces(T, Serial));
  for (unsigned N : Widths) {
    DetectorOptions Options;
    Options.Shards = N;
    RaceReport Sharded;
    ASSERT_TRUE(detectRaces(T, Sharded, ReplayOptions(), Options));
    expectIdenticalReports(Serial, Sharded,
                           "shards=" + std::to_string(N));
  }
}

TEST(ShardedDetectorTest, ShardAssignmentIsStableAndInRange) {
  for (unsigned Shards : {1u, 2u, 4u, 8u, 13u})
    for (uint64_t Addr : {0ull, 1ull, 0x7fffc0ffee00ull, ~0ull}) {
      unsigned S = shardOfAddress(Addr, Shards);
      EXPECT_LT(S, Shards);
      EXPECT_EQ(S, shardOfAddress(Addr, Shards)) << "unstable hash";
    }
}

TEST(ShardedDetectorTest, RacesOnManyAddressesMatchSerialExactly) {
  // 16 addresses; each raced by two threads, half also touched with
  // ordered accesses so the shadow state does some pruning work.
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x100);
  for (uint64_t A = 0; A != 16; ++A) {
    uint64_t Addr = 0x1000 + 0x40 * A;
    B.onThread(0).write(Addr, makePc(1, static_cast<uint32_t>(A)));
    B.onThread(1).write(Addr, makePc(2, static_cast<uint32_t>(A)));
  }
  // An ordered pair on a few addresses: lock-protected, so no race.
  for (uint64_t A = 0; A != 4; ++A) {
    uint64_t Addr = 0x9000 + 0x40 * A;
    B.onThread(0).lock(M).write(Addr, makePc(3, static_cast<uint32_t>(A)))
        .unlock(M);
    B.onThread(1).lock(M).write(Addr, makePc(4, static_cast<uint32_t>(A)))
        .unlock(M);
  }
  expectShardInvariant(B.build());
}

TEST(ShardedDetectorTest, SyncBroadcastPreservesHappensBefore) {
  // Thread 0 publishes over a mutex; thread 1's locked read is ordered,
  // its unlocked read of another address races. If a shard missed the
  // sync events, the locked pair would be misreported as a race there.
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x5);
  B.onThread(0).lock(M).write(0x10, makePc(1, 1)).unlock(M);
  B.onThread(0).write(0x20, makePc(1, 2));
  B.onThread(1).lock(M).read(0x10, makePc(2, 1)).unlock(M);
  B.onThread(1).read(0x20, makePc(2, 2));
  Trace T = B.build();

  RaceReport Serial;
  ASSERT_TRUE(detectRaces(T, Serial));
  ASSERT_EQ(Serial.numStaticRaces(), 1u);
  EXPECT_TRUE(Serial.contains(makePc(1, 2), makePc(2, 2)));
  expectShardInvariant(T);
}

TEST(ShardedDetectorTest, CoverageGapsMatchSerialExactly) {
  // A salvaged trace with a timestamp gap: the gap barrier must be
  // broadcast to every shard exactly like sync events, or per-shard
  // clocks would diverge from the serial detector's.
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x100);
  for (uint64_t A = 0; A != 8; ++A) {
    uint64_t Addr = 0x1000 + 0x40 * A;
    B.onThread(0).write(Addr, makePc(1, static_cast<uint32_t>(A)));
    B.onThread(1).write(Addr, makePc(2, static_cast<uint32_t>(A)));
  }
  B.onThread(0).lock(M);
  B.skipTimestamps(M, 2); // A dropped segment's unlock/lock pair.
  B.onThread(1).lock(M);
  for (uint64_t A = 0; A != 8; ++A) {
    uint64_t Addr = 0x5000 + 0x40 * A;
    B.onThread(0).write(Addr, makePc(3, static_cast<uint32_t>(A)));
    B.onThread(1).write(Addr, makePc(4, static_cast<uint32_t>(A)));
  }
  Trace T = B.build();

  ReplayOptions Replay;
  Replay.AllowTimestampGaps = true;
  RaceReport Serial;
  ASSERT_TRUE(detectRaces(T, Serial, Replay));
  for (unsigned Shards : {2u, 4u, 7u}) {
    DetectorOptions Options;
    Options.Shards = Shards;
    RaceReport Sharded;
    ASSERT_TRUE(detectRacesSharded(T, Sharded, Options, Replay));
    EXPECT_EQ(Sharded.keys(), Serial.keys()) << Shards << " shards";
    EXPECT_EQ(Sharded.describe(), Serial.describe()) << Shards << " shards";
  }
}

TEST(ShardedDetectorTest, FirstOccurrenceMergePicksSerialOrder) {
  // One static race key sighted on two different addresses, which land in
  // different shards at most widths. The merged ExampleAddr and
  // FirstEventIndex must come from the sighting the SERIAL replay sees
  // first, regardless of which shard got it.
  for (int FirstAddrIsLow = 0; FirstAddrIsLow != 2; ++FirstAddrIsLow) {
    LogBuilder B(16);
    uint64_t A1 = FirstAddrIsLow ? 0x1000u : 0x2000u;
    uint64_t A2 = FirstAddrIsLow ? 0x2000u : 0x1000u;
    B.onThread(0).write(A1, makePc(1, 7)).write(A2, makePc(1, 7));
    B.onThread(1).write(A1, makePc(2, 9)).write(A2, makePc(2, 9));
    Trace T = B.build();

    RaceReport Serial;
    ASSERT_TRUE(detectRaces(T, Serial));
    ASSERT_EQ(Serial.numStaticRaces(), 1u);
    EXPECT_EQ(Serial.staticRaces()[0].ExampleAddr, A1);
    expectShardInvariant(T);
  }
}

TEST(ShardedDetectorTest, MoreShardsThanAddressesIsHarmless) {
  LogBuilder B(16);
  B.onThread(0).write(0x10, makePc(1, 1));
  B.onThread(1).write(0x10, makePc(2, 1));
  expectShardInvariant(B.build(), {1, 2, 8, 16});
}

TEST(ShardedDetectorTest, TinyQueuesExerciseBackpressure) {
  // Queue capacity below the event count forces the producer through the
  // full/park path many times; the result must not change.
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x9);
  for (uint32_t I = 0; I != 2000; ++I) {
    uint64_t Addr = 0x1000 + 0x8 * (I % 64);
    B.onThread(I % 3).write(Addr, makePc(I % 3, I % 64));
    if (I % 50 == 0)
      B.onThread(I % 3).lock(M).unlock(M);
  }
  Trace T = B.build();

  RaceReport Serial;
  ASSERT_TRUE(detectRaces(T, Serial));
  DetectorOptions Options;
  Options.Shards = 4;
  Options.ShardQueueCapacity = 1; // Rounded up to the 16-slot minimum.
  RaceReport Sharded;
  ASSERT_TRUE(detectRaces(T, Sharded, ReplayOptions(), Options));
  expectIdenticalReports(Serial, Sharded, "tiny queues");
}

TEST(ShardedDetectorTest, SamplerFilteredViewsStayInvariant) {
  // The sampler-slot filter runs before fan-out; sharding must commute
  // with it.
  LogBuilder B(16);
  for (uint32_t I = 0; I != 32; ++I) {
    uint16_t Mask = static_cast<uint16_t>(FullLogMaskBit | (I % 2 ? 1 : 2));
    B.onThread(0).write(0x100 + 8 * I, makePc(1, I), Mask);
    B.onThread(1).write(0x100 + 8 * I, makePc(2, I), Mask);
  }
  Trace T = B.build();
  for (int Slot : {0, 1}) {
    ReplayOptions Replay;
    Replay.SamplerSlot = Slot;
    RaceReport Serial;
    ASSERT_TRUE(detectRaces(T, Serial, Replay));
    for (unsigned N : {2u, 4u}) {
      DetectorOptions Options;
      Options.Shards = N;
      RaceReport Sharded;
      ASSERT_TRUE(detectRaces(T, Sharded, Replay, Options));
      expectIdenticalReports(Serial, Sharded,
                             "slot " + std::to_string(Slot) + " shards " +
                                 std::to_string(N));
    }
  }
}

TEST(ShardedDetectorTest, OnlineShardedDrainMatchesOfflineKeys) {
  LogBuilder B(32);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x7);
  for (uint32_t I = 0; I != 200; ++I) {
    B.onThread(0).write(0x1000 + 8 * (I % 16), makePc(1, I % 16));
    B.onThread(1).write(0x1000 + 8 * (I % 16), makePc(2, I % 16));
    if (I % 10 == 0) {
      B.onThread(0).lock(M).write(0x5000, makePc(1, 99)).unlock(M);
      B.onThread(1).lock(M).write(0x5000, makePc(2, 99)).unlock(M);
    }
  }
  Trace T = B.build();

  RaceReport Offline;
  ASSERT_TRUE(detectRaces(T, Offline));

  RaceReport Online;
  {
    DetectorOptions Options;
    Options.Shards = 4;
    OnlineDetector D(32, Online, ReplayOptions(), Options);
    // Chunked, per-thread, in reverse thread order for good measure.
    for (ThreadId Tid = T.PerThread.size(); Tid-- > 0;) {
      const auto &Stream = T.PerThread[Tid];
      for (size_t At = 0; At < Stream.size(); At += 37)
        D.writeChunk(Tid, Stream.data() + At,
                     std::min<size_t>(37, Stream.size() - At));
    }
    ASSERT_TRUE(D.finish());
  }
  EXPECT_EQ(Offline.keys(), Online.keys());
  EXPECT_EQ(Offline.racyAddresses(), Online.racyAddresses());
}

TEST(ShardedDetectorTest, SpscRingDeliversInOrderUnderBackpressure) {
  // Direct exercise of the queue the pipeline rides on: a tiny ring, a
  // slow-start consumer, 100k items, FIFO order verified end to end.
  SpscRing<uint64_t> Ring(16);
  EXPECT_EQ(Ring.capacity(), 16u);
  constexpr uint64_t Count = 100000;
  std::thread Consumer([&] {
    uint64_t Expected = 0;
    uint64_t Value = 0;
    while (Ring.pop(Value)) {
      ASSERT_EQ(Value, Expected);
      ++Expected;
    }
    EXPECT_EQ(Expected, Count);
  });
  for (uint64_t I = 0; I != Count; ++I)
    Ring.push(I);
  Ring.close();
  Consumer.join();
}

// --- Workload differential suite (real races; not sanitizer-safe) --------

class ShardedWorkloadEquivalence
    : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(ShardedWorkloadEquivalence, AllShardWidthsMatchSerialAndOracle) {
  auto W = makeWorkload(GetParam());
  WorkloadParams Params;
  Params.Scale = 0.02;
  ExperimentRun Run = executeExperiment(*W, Params);
  const Trace &T = Run.TraceData;

  RaceReport Serial;
  ASSERT_TRUE(detectRaces(T, Serial)) << W->name();
  for (unsigned N : {1u, 2u, 4u, 8u}) {
    DetectorOptions Options;
    Options.Shards = N;
    RaceReport Sharded;
    ASSERT_TRUE(detectRaces(T, Sharded, ReplayOptions(), Options))
        << W->name();
    expectIdenticalReports(Serial, Sharded,
                           W->name() + " shards=" + std::to_string(N));
  }

  // Oracle cross-check (ModelCheckTest conventions): the sharded result —
  // equal to serial by the assertions above — must report a race on
  // exactly the addresses the brute-force oracle finds racy, and no pair
  // the oracle rejects.
  RaceReport Oracle;
  ASSERT_TRUE(detectRacesReference(T, Oracle)) << W->name();
  EXPECT_EQ(Serial.racyAddresses(), Oracle.racyAddresses()) << W->name();
  auto OracleKeys = Oracle.keys();
  for (const StaticRaceKey &Key : Serial.keys())
    EXPECT_TRUE(OracleKeys.count(Key))
        << W->name() << " reported a pair the oracle rejects: " << Key.first
        << "," << Key.second;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ShardedWorkloadEquivalence,
    ::testing::Values(WorkloadKind::ChannelWithStdLib, WorkloadKind::Channel,
                      WorkloadKind::ConcRTMessaging,
                      WorkloadKind::ConcRTScheduling, WorkloadKind::Httpd1,
                      WorkloadKind::Httpd2, WorkloadKind::BrowserStart,
                      WorkloadKind::BrowserRender, WorkloadKind::LKRHash,
                      WorkloadKind::LFList, WorkloadKind::SciComputeFn,
                      WorkloadKind::SciComputeLoop));

} // namespace
