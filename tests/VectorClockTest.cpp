//===-- tests/VectorClockTest.cpp - Vector clock algebra -------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/VectorClock.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <array>
#include <utility>

using namespace literace;

namespace {

TEST(VectorClockTest, DefaultIsAllZero) {
  VectorClock Clock;
  EXPECT_EQ(Clock.get(0), 0u);
  EXPECT_EQ(Clock.get(100), 0u);
  EXPECT_EQ(Clock.size(), 0u);
}

TEST(VectorClockTest, SetAndGet) {
  VectorClock Clock;
  Clock.set(3, 7);
  EXPECT_EQ(Clock.get(3), 7u);
  EXPECT_EQ(Clock.get(2), 0u);
  EXPECT_EQ(Clock.get(4), 0u);
  EXPECT_GE(Clock.size(), 4u);
}

TEST(VectorClockTest, TickIncrements) {
  VectorClock Clock;
  Clock.tick(5);
  EXPECT_EQ(Clock.get(5), 1u);
  Clock.tick(5);
  EXPECT_EQ(Clock.get(5), 2u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 5);
  A.set(1, 2);
  B.set(1, 9);
  B.set(2, 4);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 9u);
  EXPECT_EQ(A.get(2), 4u);
}

TEST(VectorClockTest, JoinWithShorterClockKeepsComponents) {
  VectorClock A, B;
  A.set(5, 10);
  B.set(0, 1);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 1u);
  EXPECT_EQ(A.get(5), 10u);
}

TEST(VectorClockTest, DominatesReflexive) {
  VectorClock A;
  A.set(0, 3);
  A.set(2, 1);
  EXPECT_TRUE(A.dominates(A));
}

TEST(VectorClockTest, DominatesChecksEveryComponent) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 3);
  B.set(0, 3);
  B.set(1, 4);
  EXPECT_FALSE(A.dominates(B));
  EXPECT_TRUE(B.dominates(A));
}

TEST(VectorClockTest, DominatesWithTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(7, 0); // Larger allocation, same logical value.
  EXPECT_TRUE(A.dominates(B));
  EXPECT_TRUE(B.dominates(A));
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, EqualityIgnoresAllocation) {
  VectorClock A, B;
  A.set(1, 2);
  B.set(1, 2);
  B.set(9, 0);
  EXPECT_TRUE(A == B);
  B.set(9, 1);
  EXPECT_FALSE(A == B);
}

TEST(VectorClockTest, TickGrowsInOnePass) {
  // tick() on a never-set component must behave exactly like
  // set(T, get(T) + 1): grow, see zero, land on one.
  VectorClock Clock;
  Clock.tick(9);
  EXPECT_EQ(Clock.get(9), 1u);
  EXPECT_EQ(Clock.get(8), 0u);
  EXPECT_GE(Clock.size(), 10u);
}

TEST(VectorClockTest, InlineUntilFourThreads) {
  VectorClock Clock;
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    Clock.set(T, T + 1);
  EXPECT_TRUE(Clock.isInline());
  // The fifth component forces the heap; values must survive the move.
  Clock.set(VectorClock::InlineCapacity, 99);
  EXPECT_FALSE(Clock.isInline());
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    EXPECT_EQ(Clock.get(T), T + 1u);
  EXPECT_EQ(Clock.get(VectorClock::InlineCapacity), 99u);
}

TEST(VectorClockTest, HugeComponentsCompareUnsigned) {
  // Components at and above 2^63 pin the SIMD unsigned-compare
  // emulation (signed compares would order these backwards).
  const uint64_t Big = uint64_t(1) << 63;
  VectorClock A, B;
  A.set(0, Big);
  B.set(0, Big - 1);
  EXPECT_TRUE(A.dominates(B));
  EXPECT_FALSE(B.dominates(A));
  B.joinWith(A);
  EXPECT_EQ(B.get(0), Big);
  // Same-high-half values exercise the SSE2 low-half tiebreak.
  A.set(1, Big + 7);
  B.set(1, Big + 9);
  EXPECT_FALSE(A.dominates(B));
  EXPECT_TRUE(B.dominates(A));
}

TEST(VectorClockTest, DominatesShorterThisAgainstLongerOther) {
  // This clock is shorter than Other: Other's surplus components read
  // as zero on our side, so a nonzero surplus breaks dominance even
  // when the common prefix dominates — including surplus that sits past
  // the shared SIMD block boundary.
  VectorClock Short, Long;
  Short.set(0, 5);
  Long.set(0, 1);
  Long.set(6, 1);
  EXPECT_FALSE(Short.dominates(Long));
  EXPECT_FALSE(Long.dominates(Short)); // Prefix 1 < 5.
  Long.set(6, 0); // Trailing explicit zero == omitted component.
  EXPECT_TRUE(Short.dominates(Long));
}

TEST(VectorClockTest, JoinAcrossInlineHeapBoundary) {
  // Join in both directions between an inline clock and a heap clock,
  // so whole-block SIMD joins run with mismatched allocation sizes.
  VectorClock Small, Wide;
  Small.set(1, 10);
  Wide.set(1, 3);
  Wide.set(9, 4);
  ASSERT_TRUE(Small.isInline());
  ASSERT_FALSE(Wide.isInline());

  VectorClock A = Small;
  A.joinWith(Wide);
  EXPECT_EQ(A.get(1), 10u);
  EXPECT_EQ(A.get(9), 4u);

  VectorClock B = Wide;
  B.joinWith(Small);
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, EqualityAtBlockBoundary) {
  // Sizes straddling the 4-word SIMD block boundary: equality must
  // treat the longer clock's surplus as significant only when nonzero.
  VectorClock A, B;
  A.set(3, 2); // Size 4: exactly one block.
  B.set(3, 2);
  B.set(4, 0); // Size 5: spills into a second block, all-zero surplus.
  EXPECT_TRUE(A == B);
  EXPECT_TRUE(B == A);
  B.set(7, 1); // Nonzero surplus in the second block.
  EXPECT_FALSE(A == B);
  EXPECT_FALSE(B == A);
}

TEST(VectorClockTest, StrFormatsComponents) {
  VectorClock Clock;
  Clock.set(0, 3);
  Clock.set(2, 7);
  EXPECT_EQ(Clock.str(), "[3, 0, 7]");
}

/// Property sweep: join is commutative, associative, idempotent, and
/// monotone, over randomized clocks.
class VectorClockPropertyTest : public ::testing::TestWithParam<uint64_t> {};

VectorClock randomClock(SplitMix64 &Rng) {
  VectorClock Clock;
  unsigned N = static_cast<unsigned>(Rng.nextBelow(8));
  for (unsigned I = 0; I != N; ++I)
    Clock.set(static_cast<ThreadId>(Rng.nextBelow(8)), Rng.nextBelow(100));
  return Clock;
}

TEST_P(VectorClockPropertyTest, JoinCommutative) {
  SplitMix64 Rng(GetParam());
  VectorClock A = randomClock(Rng), B = randomClock(Rng);
  VectorClock AB = A, BA = B;
  AB.joinWith(B);
  BA.joinWith(A);
  EXPECT_TRUE(AB == BA);
}

TEST_P(VectorClockPropertyTest, JoinAssociative) {
  SplitMix64 Rng(GetParam() ^ 0x1234);
  VectorClock A = randomClock(Rng), B = randomClock(Rng),
              C = randomClock(Rng);
  VectorClock Left = A;
  Left.joinWith(B);
  Left.joinWith(C);
  VectorClock BC = B;
  BC.joinWith(C);
  VectorClock Right = A;
  Right.joinWith(BC);
  EXPECT_TRUE(Left == Right);
}

TEST_P(VectorClockPropertyTest, JoinIdempotent) {
  SplitMix64 Rng(GetParam() ^ 0x9999);
  VectorClock A = randomClock(Rng);
  VectorClock AA = A;
  AA.joinWith(A);
  EXPECT_TRUE(AA == A);
}

TEST_P(VectorClockPropertyTest, JoinDominatesBothInputs) {
  SplitMix64 Rng(GetParam() ^ 0xabcd);
  VectorClock A = randomClock(Rng), B = randomClock(Rng);
  VectorClock J = A;
  J.joinWith(B);
  EXPECT_TRUE(J.dominates(A));
  EXPECT_TRUE(J.dominates(B));
}

TEST_P(VectorClockPropertyTest, DominanceIsPartialOrder) {
  SplitMix64 Rng(GetParam() ^ 0x7777);
  VectorClock A = randomClock(Rng), B = randomClock(Rng);
  if (A.dominates(B) && B.dominates(A)) {
    EXPECT_TRUE(A == B);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

/// Differential sweep against a scalar reference model: whatever SIMD
/// path the build selected (LITERACE_VECTORCLOCK_SIMD) must agree with
/// infinite-width map semantics on clocks of every size in [0, 12] —
/// covering the inline/heap boundary, whole-block tails, and huge
/// components that distinguish signed from unsigned lane compares.
using Model = std::array<uint64_t, 16>;

uint64_t randomComponent(SplitMix64 &Rng) {
  switch (Rng.nextBelow(4)) {
  case 0:
    return 0;
  case 1:
    return Rng.nextBelow(5);
  case 2:
    return (uint64_t(1) << 63) + Rng.nextBelow(5); // Sign-bit values.
  default:
    return Rng.next();
  }
}

std::pair<VectorClock, Model> randomWideClock(SplitMix64 &Rng) {
  VectorClock Clock;
  Model M{};
  const unsigned N = static_cast<unsigned>(Rng.nextBelow(13));
  for (unsigned I = 0; I != N; ++I) {
    const ThreadId T = static_cast<ThreadId>(Rng.nextBelow(12));
    const uint64_t V = randomComponent(Rng);
    Clock.set(T, V);
    M[T] = V;
  }
  return {std::move(Clock), M};
}

class VectorClockSimdDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorClockSimdDifferentialTest, MatchesScalarModel) {
  SCOPED_TRACE(std::string("SIMD path: ") + LITERACE_VECTORCLOCK_SIMD);
  SplitMix64 Rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (int Round = 0; Round != 200; ++Round) {
    auto [A, MA] = randomWideClock(Rng);
    auto [B, MB] = randomWideClock(Rng);

    bool ModelDom = true, ModelEq = true;
    for (size_t I = 0; I != MA.size(); ++I) {
      ModelDom &= MA[I] >= MB[I];
      ModelEq &= MA[I] == MB[I];
    }
    EXPECT_EQ(A.dominates(B), ModelDom);
    EXPECT_EQ(A == B, ModelEq);

    A.joinWith(B);
    for (size_t I = 0; I != MA.size(); ++I)
      EXPECT_EQ(A.get(static_cast<ThreadId>(I)), std::max(MA[I], MB[I]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockSimdDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
