//===-- tests/VectorClockTest.cpp - Vector clock algebra -------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/VectorClock.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

TEST(VectorClockTest, DefaultIsAllZero) {
  VectorClock Clock;
  EXPECT_EQ(Clock.get(0), 0u);
  EXPECT_EQ(Clock.get(100), 0u);
  EXPECT_EQ(Clock.size(), 0u);
}

TEST(VectorClockTest, SetAndGet) {
  VectorClock Clock;
  Clock.set(3, 7);
  EXPECT_EQ(Clock.get(3), 7u);
  EXPECT_EQ(Clock.get(2), 0u);
  EXPECT_EQ(Clock.get(4), 0u);
  EXPECT_GE(Clock.size(), 4u);
}

TEST(VectorClockTest, TickIncrements) {
  VectorClock Clock;
  Clock.tick(5);
  EXPECT_EQ(Clock.get(5), 1u);
  Clock.tick(5);
  EXPECT_EQ(Clock.get(5), 2u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 5);
  A.set(1, 2);
  B.set(1, 9);
  B.set(2, 4);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 9u);
  EXPECT_EQ(A.get(2), 4u);
}

TEST(VectorClockTest, JoinWithShorterClockKeepsComponents) {
  VectorClock A, B;
  A.set(5, 10);
  B.set(0, 1);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 1u);
  EXPECT_EQ(A.get(5), 10u);
}

TEST(VectorClockTest, DominatesReflexive) {
  VectorClock A;
  A.set(0, 3);
  A.set(2, 1);
  EXPECT_TRUE(A.dominates(A));
}

TEST(VectorClockTest, DominatesChecksEveryComponent) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 3);
  B.set(0, 3);
  B.set(1, 4);
  EXPECT_FALSE(A.dominates(B));
  EXPECT_TRUE(B.dominates(A));
}

TEST(VectorClockTest, DominatesWithTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(7, 0); // Larger allocation, same logical value.
  EXPECT_TRUE(A.dominates(B));
  EXPECT_TRUE(B.dominates(A));
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, EqualityIgnoresAllocation) {
  VectorClock A, B;
  A.set(1, 2);
  B.set(1, 2);
  B.set(9, 0);
  EXPECT_TRUE(A == B);
  B.set(9, 1);
  EXPECT_FALSE(A == B);
}

TEST(VectorClockTest, StrFormatsComponents) {
  VectorClock Clock;
  Clock.set(0, 3);
  Clock.set(2, 7);
  EXPECT_EQ(Clock.str(), "[3, 0, 7]");
}

/// Property sweep: join is commutative, associative, idempotent, and
/// monotone, over randomized clocks.
class VectorClockPropertyTest : public ::testing::TestWithParam<uint64_t> {};

VectorClock randomClock(SplitMix64 &Rng) {
  VectorClock Clock;
  unsigned N = static_cast<unsigned>(Rng.nextBelow(8));
  for (unsigned I = 0; I != N; ++I)
    Clock.set(static_cast<ThreadId>(Rng.nextBelow(8)), Rng.nextBelow(100));
  return Clock;
}

TEST_P(VectorClockPropertyTest, JoinCommutative) {
  SplitMix64 Rng(GetParam());
  VectorClock A = randomClock(Rng), B = randomClock(Rng);
  VectorClock AB = A, BA = B;
  AB.joinWith(B);
  BA.joinWith(A);
  EXPECT_TRUE(AB == BA);
}

TEST_P(VectorClockPropertyTest, JoinAssociative) {
  SplitMix64 Rng(GetParam() ^ 0x1234);
  VectorClock A = randomClock(Rng), B = randomClock(Rng),
              C = randomClock(Rng);
  VectorClock Left = A;
  Left.joinWith(B);
  Left.joinWith(C);
  VectorClock BC = B;
  BC.joinWith(C);
  VectorClock Right = A;
  Right.joinWith(BC);
  EXPECT_TRUE(Left == Right);
}

TEST_P(VectorClockPropertyTest, JoinIdempotent) {
  SplitMix64 Rng(GetParam() ^ 0x9999);
  VectorClock A = randomClock(Rng);
  VectorClock AA = A;
  AA.joinWith(A);
  EXPECT_TRUE(AA == A);
}

TEST_P(VectorClockPropertyTest, JoinDominatesBothInputs) {
  SplitMix64 Rng(GetParam() ^ 0xabcd);
  VectorClock A = randomClock(Rng), B = randomClock(Rng);
  VectorClock J = A;
  J.joinWith(B);
  EXPECT_TRUE(J.dominates(A));
  EXPECT_TRUE(J.dominates(B));
}

TEST_P(VectorClockPropertyTest, DominanceIsPartialOrder) {
  SplitMix64 Rng(GetParam() ^ 0x7777);
  VectorClock A = randomClock(Rng), B = randomClock(Rng);
  if (A.dominates(B) && B.dominates(A)) {
    EXPECT_TRUE(A == B);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
