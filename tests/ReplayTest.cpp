//===-- tests/ReplayTest.cpp - Replay scheduling ---------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/Replay.h"

#include "detector/LogBuilder.h"
#include "runtime/TimestampManager.h"

#include <gtest/gtest.h>
#include <vector>

using namespace literace;

namespace {

/// Records the order in which events are delivered.
struct Recorder : TraceConsumer {
  std::vector<EventRecord> Events;
  void onEvent(const EventRecord &R) override { Events.push_back(R); }
};

constexpr SyncVar MutexA = makeSyncVar(SyncObjectKind::Mutex, 0xA00);
constexpr SyncVar MutexB = makeSyncVar(SyncObjectKind::Mutex, 0xB00);

TEST(ReplayTest, SingleThreadDeliversProgramOrder) {
  LogBuilder B(16);
  B.onThread(0).threadStart().write(0x10, 1).acquire(MutexA).read(0x20, 2)
      .release(MutexA).threadEnd();
  Recorder R;
  EXPECT_TRUE(replayTrace(B.build(), R));
  ASSERT_EQ(R.Events.size(), 6u);
  EXPECT_EQ(R.Events[0].Kind, EventKind::ThreadStart);
  EXPECT_EQ(R.Events[1].Kind, EventKind::Write);
  EXPECT_EQ(R.Events[2].Kind, EventKind::Acquire);
  EXPECT_EQ(R.Events[3].Kind, EventKind::Read);
  EXPECT_EQ(R.Events[4].Kind, EventKind::Release);
  EXPECT_EQ(R.Events[5].Kind, EventKind::ThreadEnd);
}

TEST(ReplayTest, SyncEventsDeliveredInTimestampOrder) {
  // Thread 1's acquire has the earlier timestamp even though thread 1 is
  // visited second by the scheduler: the replay must deliver it first.
  LogBuilder B(16);
  B.onThread(1).acquire(MutexA); // ts 1
  B.onThread(0).acquire(MutexA); // ts 2
  Recorder R;
  EXPECT_TRUE(replayTrace(B.build(), R));
  ASSERT_EQ(R.Events.size(), 2u);
  EXPECT_EQ(R.Events[0].Tid, 1u);
  EXPECT_EQ(R.Events[1].Tid, 0u);
}

TEST(ReplayTest, CrossThreadInterleavingRespectsPerVarOrder) {
  // T0: lock(A) unlock(A); T1: lock(A) unlock(A) — T1's lock drawn after
  // T0's unlock, so T0's critical section must be fully delivered first.
  LogBuilder B(16);
  B.onThread(0).lock(MutexA).write(0x10, 1).unlock(MutexA);
  B.onThread(1).lock(MutexA).write(0x10, 2).unlock(MutexA);
  Recorder R;
  EXPECT_TRUE(replayTrace(B.build(), R));
  ASSERT_EQ(R.Events.size(), 6u);
  // All of T0's events precede all of T1's.
  for (unsigned I = 0; I != 3; ++I)
    EXPECT_EQ(R.Events[I].Tid, 0u);
  for (unsigned I = 3; I != 6; ++I)
    EXPECT_EQ(R.Events[I].Tid, 1u);
}

TEST(ReplayTest, IndependentSyncVarsInterleaveFreely) {
  LogBuilder B(1024); // Many counters: A and B land on different ones.
  B.onThread(0).lock(MutexA).unlock(MutexA);
  B.onThread(1).lock(MutexB).unlock(MutexB);
  Recorder R;
  EXPECT_TRUE(replayTrace(B.build(), R));
  EXPECT_EQ(R.Events.size(), 4u);
}

TEST(ReplayTest, FilterDropsUnsampledMemoryEventsOnly) {
  LogBuilder B(16);
  B.onThread(0)
      .write(0x10, 1, /*Mask=*/FullLogMaskBit | 0x1) // sampled by slot 0
      .write(0x20, 2, /*Mask=*/FullLogMaskBit)       // full log only
      .acquire(MutexA);
  ReplayOptions Options;
  Options.SamplerSlot = 0;
  Recorder R;
  EXPECT_TRUE(replayTrace(B.build(), R, Options));
  ASSERT_EQ(R.Events.size(), 2u);
  EXPECT_EQ(R.Events[0].Addr, 0x10u);
  EXPECT_EQ(R.Events[1].Kind, EventKind::Acquire); // Sync never filtered.
}

TEST(ReplayTest, NegativeSlotDeliversEverything) {
  LogBuilder B(16);
  B.onThread(0).write(0x10, 1, 0).write(0x20, 2, FullLogMaskBit);
  Recorder R;
  EXPECT_TRUE(replayTrace(B.build(), R));
  EXPECT_EQ(R.Events.size(), 2u);
}

TEST(ReplayTest, MissingTimestampMakesLogInconsistent) {
  // Draw a timestamp that is never logged: the next sync event on that
  // counter can never be enabled.
  LogBuilder B(1);
  B.onThread(0).acquire(MutexA); // ts 1
  B.onThread(0).acquire(MutexA); // ts 2
  Trace T = B.build();
  // Drop the ts=1 event.
  T.PerThread[0].erase(T.PerThread[0].begin());
  Recorder R;
  EXPECT_FALSE(replayTrace(T, R));
}

TEST(ReplayTest, DuplicateTimestampMakesLogInconsistent) {
  LogBuilder B(1);
  B.onThread(0).acquire(MutexA); // ts 1
  Trace T = B.build();
  EventRecord Dup = T.PerThread[0][0];
  T.PerThread.resize(2);
  T.PerThread[1].push_back(Dup); // Same ts on the same counter.
  Recorder R;
  EXPECT_FALSE(replayTrace(T, R));
}

TEST(ReplayTest, SyncEventWithZeroTimestampIsMalformed) {
  Trace T;
  T.NumTimestampCounters = 16;
  T.PerThread.resize(1);
  EventRecord R;
  R.Kind = EventKind::Acquire;
  R.Addr = MutexA;
  R.Ts = 0;
  T.PerThread[0].push_back(R);
  Recorder Rec;
  EXPECT_FALSE(replayTrace(T, Rec));
}

TEST(ReplayTest, EmptyTraceIsConsistent) {
  Trace T;
  T.NumTimestampCounters = 16;
  Recorder R;
  EXPECT_TRUE(replayTrace(T, R));
  EXPECT_TRUE(R.Events.empty());
}

TEST(ReplaySchedulerTest, DrainsIncrementally) {
  LogBuilder B(16);
  B.onThread(0).lock(MutexA).write(0x10, 1).unlock(MutexA);
  B.onThread(1).lock(MutexA).write(0x10, 2).unlock(MutexA);
  Trace T = B.build();

  ReplayScheduler Sched(16);
  Recorder R;
  // Feed thread 1 first: nothing can be delivered except... thread 1's
  // lock waits for thread 0's unlock.
  Sched.addEvents(1, T.PerThread[1].data(), T.PerThread[1].size());
  EXPECT_EQ(Sched.drain(R), 0u);
  EXPECT_FALSE(Sched.fullyDrained());
  EXPECT_EQ(Sched.pendingEvents(), 3u);

  Sched.addEvents(0, T.PerThread[0].data(), T.PerThread[0].size());
  EXPECT_EQ(Sched.drain(R), 6u);
  EXPECT_TRUE(Sched.fullyDrained());
  // Thread 0's critical section delivered before thread 1's.
  EXPECT_EQ(R.Events[0].Tid, 0u);
  EXPECT_EQ(R.Events[5].Tid, 1u);
}

TEST(ReplaySchedulerTest, PartialChunksDrainAsTheyArrive) {
  LogBuilder B(16);
  B.onThread(0).write(0x1, 1).write(0x2, 2).write(0x3, 3);
  Trace T = B.build();
  ReplayScheduler Sched(16);
  Recorder R;
  Sched.addEvents(0, T.PerThread[0].data(), 1);
  EXPECT_EQ(Sched.drain(R), 1u);
  Sched.addEvents(0, T.PerThread[0].data() + 1, 2);
  EXPECT_EQ(Sched.drain(R), 2u);
  EXPECT_TRUE(Sched.fullyDrained());
  EXPECT_EQ(R.Events.size(), 3u);
}

/// Also counts coverage-gap notifications.
struct GapRecorder : Recorder {
  uint64_t Gaps = 0;
  void onCoverageGap() override { ++Gaps; }
};

// skipTimestamps() is exactly what a dropped log segment looks like: the
// counter advanced in the original execution but the events carrying
// those timestamps are gone.

TEST(ReplayGapTest, StrictReplayFailsOnSkippedTimestamp) {
  LogBuilder B(16);
  B.onThread(0).acquire(MutexA); // ts 1
  B.skipTimestamps(MutexA);      // ts 2 lost with a dropped segment
  B.onThread(1).acquire(MutexA); // ts 3
  Recorder R;
  EXPECT_FALSE(replayTrace(B.build(), R));
}

TEST(ReplayGapTest, GapTolerantReplayDeliversEverything) {
  LogBuilder B(16);
  B.onThread(0).acquire(MutexA).write(0x10, 1);
  B.skipTimestamps(MutexA, 3);
  B.onThread(1).acquire(MutexA).write(0x20, 2);
  ReplayOptions Opts;
  Opts.AllowTimestampGaps = true;
  uint64_t Gaps = 0;
  Opts.OutTimestampGaps = &Gaps;
  GapRecorder R;
  EXPECT_TRUE(replayTrace(B.build(), R, Opts));
  EXPECT_EQ(R.Events.size(), 4u);
  // One stall: the counter jumps from 1 past the three lost draws.
  EXPECT_EQ(Gaps, 1u);
  EXPECT_EQ(R.Gaps, 1u);
}

TEST(ReplayGapTest, GapsOnSeveralCountersAllResolve) {
  LogBuilder B(16);
  B.onThread(0).acquire(MutexA).acquire(MutexB);
  B.skipTimestamps(MutexA);
  B.skipTimestamps(MutexB);
  B.onThread(1).acquire(MutexA).acquire(MutexB);
  ReplayOptions Opts;
  Opts.AllowTimestampGaps = true;
  GapRecorder R;
  EXPECT_TRUE(replayTrace(B.build(), R, Opts));
  EXPECT_EQ(R.Events.size(), 4u);
  EXPECT_EQ(R.Gaps, 2u);
}

TEST(ReplayGapTest, GapModeLeavesConsistentTracesUntouched) {
  // No gaps: the tolerant replay must deliver the identical order.
  LogBuilder B(16);
  B.onThread(0).lock(MutexA).write(0x10, 1).unlock(MutexA);
  B.onThread(1).lock(MutexA).write(0x10, 2).unlock(MutexA);
  Trace T = B.build();
  Recorder Strict;
  ASSERT_TRUE(replayTrace(T, Strict));
  ReplayOptions Opts;
  Opts.AllowTimestampGaps = true;
  GapRecorder Tolerant;
  ASSERT_TRUE(replayTrace(T, Tolerant, Opts));
  EXPECT_EQ(Tolerant.Gaps, 0u);
  ASSERT_EQ(Tolerant.Events.size(), Strict.Events.size());
  for (size_t I = 0; I != Strict.Events.size(); ++I) {
    EXPECT_EQ(Tolerant.Events[I].Tid, Strict.Events[I].Tid) << I;
    EXPECT_EQ(Tolerant.Events[I].Addr, Strict.Events[I].Addr) << I;
  }
}

TEST(ReplaySchedulerTest, DrainAllowingGapsUnblocksStalledStreams) {
  LogBuilder B(16);
  B.onThread(0).acquire(MutexA); // ts 1
  B.skipTimestamps(MutexA);      // ts 2 lost
  B.onThread(1).acquire(MutexA); // ts 3
  Trace T = B.build();
  ReplayScheduler Sched(16);
  GapRecorder R;
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
    Sched.addEvents(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                    T.PerThread[Tid].size());
  Sched.drain(R); // Thread 1's acquire stalls on the lost ts 2.
  EXPECT_FALSE(Sched.fullyDrained());
  EXPECT_GT(Sched.drainAllowingGaps(R), 0u);
  EXPECT_TRUE(Sched.fullyDrained());
  EXPECT_EQ(Sched.timestampGaps(), 1u);
  EXPECT_EQ(R.Events.size(), 2u);
}

TEST(ReplaySchedulerTest, BatchAndIncrementalGapReplayAgreeExactly) {
  // Regression: the batch path (replayTrace) and the incremental path
  // (drainAllowingGaps) used to implement gap-skip independently and
  // could diverge on which counter to advance first. Both now share
  // findEarliestBlockedEvent, so on the same gapped trace they must
  // deliver the identical event sequence and count identical gaps.
  LogBuilder B(16);
  B.onThread(0).acquire(MutexA).write(0x10, 1);
  B.skipTimestamps(MutexA, 2); // Gap on A's counter.
  B.onThread(1).acquire(MutexA).write(0x20, 2).acquire(MutexB);
  B.skipTimestamps(MutexB, 4); // Deeper gap on B's counter.
  B.onThread(2).acquire(MutexB).write(0x30, 3);
  B.skipTimestamps(MutexA); // Second gap on A.
  B.onThread(0).acquire(MutexA).write(0x40, 4).release(MutexA);
  Trace T = B.build();

  ReplayOptions Opts;
  Opts.AllowTimestampGaps = true;
  GapRecorder Batch;
  ASSERT_TRUE(replayTrace(T, Batch, Opts));

  ReplayScheduler Sched(T.NumTimestampCounters, Opts);
  GapRecorder Incremental;
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
    Sched.addEvents(static_cast<ThreadId>(Tid), T.PerThread[Tid].data(),
                    T.PerThread[Tid].size());
  Sched.drainAllowingGaps(Incremental);
  ASSERT_TRUE(Sched.fullyDrained());

  EXPECT_EQ(Incremental.Gaps, Batch.Gaps);
  EXPECT_EQ(Sched.timestampGaps(), Batch.Gaps);
  ASSERT_EQ(Incremental.Events.size(), Batch.Events.size());
  ASSERT_EQ(Batch.Events.size(), T.totalEvents());
  for (size_t I = 0; I != Batch.Events.size(); ++I) {
    EXPECT_EQ(Incremental.Events[I].Tid, Batch.Events[I].Tid) << I;
    EXPECT_EQ(Incremental.Events[I].Addr, Batch.Events[I].Addr) << I;
    EXPECT_EQ(Incremental.Events[I].Ts, Batch.Events[I].Ts) << I;
    EXPECT_EQ(Incremental.Events[I].Kind, Batch.Events[I].Kind) << I;
  }
}

} // namespace
