//===-- tests/AllocatorTest.cpp - §4.3 allocation monitoring ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sync/MonitoredAllocator.h"

#include "detector/HBDetector.h"
#include "sync/Primitives.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

class AllocatorTest : public ::testing::Test {
protected:
  AllocatorTest() : Sink(64) {
    RuntimeConfig Config;
    Config.Mode = RunMode::FullLogging;
    Config.TimestampCounters = 64;
    RT = std::make_unique<Runtime>(Config, &Sink);
    F = RT->registry().registerFunction("body");
  }

  RaceReport detect() {
    RaceReport Report;
    EXPECT_TRUE(detectRaces(Sink.takeTrace(), Report));
    return Report;
  }

  MemorySink Sink;
  std::unique_ptr<Runtime> RT;
  FunctionId F = 0;
};

TEST_F(AllocatorTest, PageSyncVarGranularity) {
  EXPECT_EQ(pageSyncVar(0x1000), pageSyncVar(0x1fff));
  EXPECT_NE(pageSyncVar(0x1000), pageSyncVar(0x2000));
  EXPECT_EQ(syncVarKind(pageSyncVar(0x1000)), SyncObjectKind::Page);
}

TEST_F(AllocatorTest, AllocateLogsAllocEventPerPage) {
  MonitoredAllocator Alloc;
  ThreadContext TC(*RT);
  // 3 pages' worth, likely spanning a page boundary either way.
  void *P = Alloc.allocate(TC, 3 * 4096);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(TC, P, 3 * 4096);
  TC.flush();
  Trace T = Sink.takeTrace();
  size_t Allocs = 0, Frees = 0;
  for (const EventRecord &R : T.PerThread[0]) {
    Allocs += R.Kind == EventKind::Alloc ? 1 : 0;
    Frees += R.Kind == EventKind::Free ? 1 : 0;
  }
  EXPECT_GE(Allocs, 3u);
  EXPECT_EQ(Allocs, Frees);
}

TEST_F(AllocatorTest, NullFreeIsIgnored) {
  MonitoredAllocator Alloc;
  ThreadContext TC(*RT);
  Alloc.deallocate(TC, nullptr, 64);
  TC.flush();
  EXPECT_EQ(Sink.takeTrace().totalEvents(), 1u); // ThreadStart only.
}

// --- The §4.3 scenario: memory recycled between threads must not be
// reported as racing across lifetimes. The "allocator" hands the same
// block to thread B after thread A frees it (real-time order enforced by
// an UNLOGGED std::atomic, standing in for the allocator's internal
// locking, which LiteRace likewise does not see). Only the page events
// keep the log ordered. ---
TEST_F(AllocatorTest, RecycledMemoryAcrossThreadsIsSilent) {
  alignas(64) static uint8_t Block[64]; // The recycled allocation.
  std::atomic<bool> Freed{false};
  SyncVar Page = pageSyncVar(reinterpret_cast<uint64_t>(Block));
  {
    ThreadContext Main(*RT);
    Thread A(*RT, Main, [&](ThreadContext &TC) {
      TC.logAllocation(Page, /*IsAlloc=*/true);
      TC.run(F, [&](auto &T) { T.store(&Block[0], uint8_t{1}, 1); });
      TC.logAllocation(Page, /*IsAlloc=*/false);
      Freed.store(true, std::memory_order_release);
    });
    Thread B(*RT, Main, [&](ThreadContext &TC) {
      while (!Freed.load(std::memory_order_acquire))
        std::this_thread::yield();
      TC.logAllocation(Page, /*IsAlloc=*/true);
      TC.run(F, [&](auto &T) { T.store(&Block[0], uint8_t{2}, 2); });
      TC.logAllocation(Page, /*IsAlloc=*/false);
    });
    A.join(Main);
    B.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

// Same scenario but WITHOUT allocation monitoring: if the block is
// recycled, a naive detector fabricates a race between the lifetimes.
// This is the false positive §4.3 eliminates. We emulate "no monitoring"
// by allocating through plain malloc and writing through the tracer with
// no page events; the semaphore is removed so there is no accidental
// ordering either.
TEST_F(AllocatorTest, WithoutMonitoringRecyclingLooksLikeARace) {
  uint8_t Block[64]; // Stands in for the recycled heap block.
  {
    ThreadContext Main(*RT);
    Thread A(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Block[0], uint8_t{1}, 1); });
    });
    Thread B(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Block[0], uint8_t{2}, 2); });
    });
    A.join(Main);
    B.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 1u);
}

TEST_F(AllocatorTest, CreateDestroyRoundTrip) {
  struct Widget {
    uint64_t A = 7;
    uint64_t B = 9;
  };
  MonitoredAllocator Alloc;
  ThreadContext TC(*RT);
  Widget *W = Alloc.create<Widget>(TC);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->A, 7u);
  EXPECT_EQ(W->B, 9u);
  Alloc.destroy(TC, W);
}

TEST_F(AllocatorTest, HeavyCrossThreadChurnStaysSilent) {
  // Allocation churn across threads with disjoint access patterns: the
  // page events must keep every cross-lifetime pair ordered.
  MonitoredAllocator Alloc;
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != 3; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&](ThreadContext &TC) {
            for (unsigned K = 0; K != 500; ++K) {
              auto *P = static_cast<uint64_t *>(Alloc.allocate(TC, 64));
              TC.run(F, [&](auto &T) {
                for (unsigned J = 0; J != 8; ++J)
                  T.store(&P[J], uint64_t{K + J}, 1);
                uint64_t Sum = 0;
                for (unsigned J = 0; J != 8; ++J)
                  Sum += T.load(&P[J], 2);
                EXPECT_EQ(Sum, 8u * K + 28u);
              });
              Alloc.deallocate(TC, P, 64);
            }
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

} // namespace
