//===-- tests/CompressedLogTest.cpp - Compressed log format ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompressedLog.h"

#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "harness/DetectionExperiment.h"
#include "support/SplitMix64.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <gtest/gtest.h>

using namespace literace;

namespace {

bool recordsEqual(const EventRecord &A, const EventRecord &B) {
  return A.Addr == B.Addr && A.Pc == B.Pc && A.Ts == B.Ts &&
         A.Tid == B.Tid && A.Kind == B.Kind && A.Mask == B.Mask;
}

bool tracesEqual(const Trace &A, const Trace &B) {
  if (A.NumTimestampCounters != B.NumTimestampCounters ||
      A.PerThread.size() != B.PerThread.size())
    return false;
  for (size_t T = 0; T != A.PerThread.size(); ++T) {
    if (A.PerThread[T].size() != B.PerThread[T].size())
      return false;
    for (size_t I = 0; I != A.PerThread[T].size(); ++I)
      if (!recordsEqual(A.PerThread[T][I], B.PerThread[T][I]))
        return false;
  }
  return true;
}

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

TEST(CompressedStreamTest, EmptyStream) {
  std::vector<uint8_t> Out;
  EXPECT_EQ(compressEventStream({}, Out), 0u);
  auto Back = decompressEventStream(Out.data(), Out.size(), 0);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(Back->empty());
}

TEST(CompressedStreamTest, RoundTripsAllKinds) {
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x8000);
  B.onThread(3)
      .threadStart()
      .write(0xdeadbeef, makePc(4, 7), 0x8003)
      .read(0xdeadbef7, makePc(4, 8), 0x8003)
      .acquire(M)
      .release(M)
      .acqRel(makeSyncVar(SyncObjectKind::Atomic, 0x9000))
      .alloc(makeSyncVar(SyncObjectKind::Page, 12))
      .free(makeSyncVar(SyncObjectKind::Page, 12))
      .threadEnd();
  Trace T = B.build();

  std::vector<uint8_t> Out;
  compressEventStream(T.PerThread[3], Out);
  auto Back = decompressEventStream(Out.data(), Out.size(), 3);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), T.PerThread[3].size());
  for (size_t I = 0; I != Back->size(); ++I)
    EXPECT_TRUE(recordsEqual((*Back)[I], T.PerThread[3][I])) << "record "
                                                             << I;
}

TEST(CompressedStreamTest, RandomStreamsRoundTripExactly) {
  SplitMix64 Rng(0xc0ffee);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<EventRecord> Stream;
    uint64_t Ts = 1;
    for (int I = 0; I != 500; ++I) {
      EventRecord R;
      R.Tid = 5;
      switch (Rng.nextBelow(4)) {
      case 0:
        R.Kind = EventKind::Read;
        break;
      case 1:
        R.Kind = EventKind::Write;
        break;
      case 2:
        R.Kind = EventKind::Acquire;
        R.Ts = Ts++;
        break;
      default:
        R.Kind = EventKind::Release;
        R.Ts = Ts++;
        break;
      }
      R.Addr = Rng.next() >> Rng.nextBelow(40); // Mixed magnitudes.
      R.Pc = makePc(static_cast<FunctionId>(Rng.nextBelow(100)),
                    static_cast<uint32_t>(Rng.nextBelow(300)));
      R.Mask = static_cast<uint16_t>(Rng.nextBelow(0x10000));
      Stream.push_back(R);
    }
    std::vector<uint8_t> Out;
    compressEventStream(Stream, Out);
    auto Back = decompressEventStream(Out.data(), Out.size(), 5);
    ASSERT_TRUE(Back.has_value());
    ASSERT_EQ(Back->size(), Stream.size());
    for (size_t I = 0; I != Stream.size(); ++I)
      ASSERT_TRUE(recordsEqual((*Back)[I], Stream[I]));
  }
}

TEST(CompressedStreamTest, TruncatedInputIsRejected) {
  LogBuilder B(16);
  B.onThread(0).write(0x1000, makePc(1, 1)).write(0x2000, makePc(1, 2));
  std::vector<uint8_t> Out;
  compressEventStream(B.build().PerThread[0], Out);
  for (size_t Cut = 1; Cut < Out.size(); ++Cut) {
    auto Back = decompressEventStream(Out.data(), Cut, 0);
    // Either cleanly rejected or a strict prefix; never garbage kinds.
    if (Back) {
      for (const EventRecord &R : *Back)
        EXPECT_LE(static_cast<uint8_t>(R.Kind),
                  static_cast<uint8_t>(EventKind::Free));
    }
  }
}

TEST(CompressedStreamTest, GarbageKindIsRejected) {
  uint8_t Garbage[] = {0x0f, 0x00, 0x00, 0x00}; // Kind 15 is invalid.
  EXPECT_FALSE(decompressEventStream(Garbage, sizeof(Garbage), 0));
}

TEST(CompressedStreamTest, PartialDecodeKeepsTheCleanPrefix) {
  LogBuilder B(16);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x8000);
  B.onThread(0)
      .threadStart()
      .write(0x1000, makePc(1, 1))
      .acquire(M)
      .read(0x2000, makePc(1, 2))
      .release(M)
      .threadEnd();
  std::vector<EventRecord> Stream = B.build().PerThread[0];
  std::vector<uint8_t> Out;
  compressEventStream(Stream, Out);

  PartialDecode Whole =
      decompressEventStreamPartial(Out.data(), Out.size(), 0);
  EXPECT_TRUE(Whole.Complete);
  EXPECT_EQ(Whole.BytesConsumed, Out.size());
  ASSERT_EQ(Whole.Events.size(), Stream.size());

  // Every truncation yields a prefix of the true stream, never garbage,
  // and the decoded length is monotone in the cut position.
  size_t Prev = 0;
  for (size_t Cut = 0; Cut <= Out.size(); ++Cut) {
    PartialDecode P = decompressEventStreamPartial(Out.data(), Cut, 0);
    // Complete means every supplied byte decoded cleanly — true exactly
    // when the cut lands on a record boundary (incl. the full stream).
    EXPECT_EQ(P.Complete, P.BytesConsumed == Cut);
    EXPECT_LE(P.BytesConsumed, Cut);
    ASSERT_LE(P.Events.size(), Stream.size());
    EXPECT_GE(P.Events.size(), Prev) << "cut=" << Cut;
    Prev = P.Events.size();
    for (size_t I = 0; I != P.Events.size(); ++I)
      EXPECT_TRUE(recordsEqual(P.Events[I], Stream[I])) << "cut=" << Cut;
  }
}

TEST(CompressedStreamTest, PartialDecodeOfGarbageIsEmptyNotFatal) {
  uint8_t Garbage[64];
  for (size_t I = 0; I != sizeof(Garbage); ++I)
    Garbage[I] = static_cast<uint8_t>(0xf0 | I); // Invalid kinds/flags.
  PartialDecode P =
      decompressEventStreamPartial(Garbage, sizeof(Garbage), 0);
  EXPECT_FALSE(P.Complete);
  EXPECT_TRUE(P.Events.empty());
  EXPECT_EQ(P.BytesConsumed, 0u);
}

TEST(CompressedStreamTest, VarintOverrunIsRejectedNotOverread) {
  // A header byte promising a delta, followed by continuation bits right
  // to the end of the buffer: the decoder must stop at the boundary.
  std::vector<uint8_t> Evil;
  Evil.push_back(0x01); // Kind = Read.
  for (int I = 0; I != 32; ++I)
    Evil.push_back(0xff); // Endless varint continuation.
  EXPECT_FALSE(decompressEventStream(Evil.data(), Evil.size(), 0));
  PartialDecode P = decompressEventStreamPartial(Evil.data(), Evil.size(), 0);
  EXPECT_FALSE(P.Complete);
  EXPECT_TRUE(P.Events.empty());
}

TEST(CompressedStreamTest, UnknownHeaderFlagBitsAreRejected) {
  // Only the low kind nibble and the has-mask flag are defined; anything
  // else is a future extension the current decoder must not guess at.
  uint8_t Evil[] = {0x41, 0x00, 0x00, 0x00}; // Kind 1 + undefined bit 6.
  EXPECT_FALSE(decompressEventStream(Evil, sizeof(Evil), 0));
}

TEST(CompressedFileSinkTest, ReaderRejectsOversizedStreamHeaders) {
  // Craft a file whose per-thread size field claims more bytes than the
  // file holds; the reader must bound allocations by the actual size.
  std::string Path = tempPath("compressed_oversize.bin");
  {
    LogBuilder B(16);
    B.onThread(0).write(0x10, makePc(1, 1));
    CompressedFileSink Sink(Path, 16);
    Trace T = B.build();
    Sink.writeChunk(0, T.PerThread[0].data(), T.PerThread[0].size());
    ASSERT_TRUE(Sink.close());
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  // Layout: u64 magic, u32 counters, u32 numThreads, then u64 stream size.
  std::fseek(F, 16, SEEK_SET);
  const uint64_t Huge = ~0ull >> 8;
  std::fwrite(&Huge, sizeof(Huge), 1, F);
  std::fclose(F);
  EXPECT_FALSE(readCompressedTraceFile(Path).has_value());
  std::remove(Path.c_str());
}

TEST(CompressedFileSinkTest, FullFileRoundTrip) {
  std::string Path = tempPath("compressed_roundtrip.bin");
  LogBuilder B(32);
  SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x100);
  B.onThread(0).lock(M).write(0x10, makePc(1, 1), 0x8001).unlock(M);
  B.onThread(1).lock(M).read(0x10, makePc(2, 2), 0x8000).unlock(M);
  Trace T = B.build();
  {
    CompressedFileSink Sink(Path, 32);
    for (ThreadId Tid = 0; Tid != T.PerThread.size(); ++Tid)
      Sink.writeChunk(Tid, T.PerThread[Tid].data(),
                      T.PerThread[Tid].size());
    EXPECT_TRUE(Sink.close());
    EXPECT_GT(Sink.compressedBytes(), 0u);
    EXPECT_LT(Sink.compressedBytes(), T.totalEvents() * sizeof(EventRecord));
  }
  auto Back = readCompressedTraceFile(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(tracesEqual(T, *Back));
  std::remove(Path.c_str());
}

TEST(CompressedFileSinkTest, MissingAndGarbageFiles) {
  EXPECT_FALSE(readCompressedTraceFile("/nonexistent/x.bin"));
  std::string Path = tempPath("compressed_garbage.bin");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("not a compressed literace log", F);
  std::fclose(F);
  EXPECT_FALSE(readCompressedTraceFile(Path));
  std::remove(Path.c_str());
}

TEST(CompressedFileSinkTest, WorkloadTraceShrinksAndDetectsIdentically) {
  // End to end: run a real workload into the compressed sink, read it
  // back, and verify (a) compression actually saves space and (b) the
  // detector sees exactly the same races as on the in-memory trace.
  std::string Path = tempPath("compressed_workload.bin");
  auto W = makeWorkload(WorkloadKind::Channel);
  WorkloadParams Params;
  Params.Scale = 0.05;

  ExperimentRun Reference = executeExperiment(*W, Params);
  RaceReport RefReport;
  ASSERT_TRUE(detectRaces(Reference.TraceData, RefReport));

  // Re-encode the reference trace through the compressed file format.
  {
    CompressedFileSink Sink(Path, 128);
    for (ThreadId Tid = 0; Tid != Reference.TraceData.PerThread.size();
         ++Tid)
      Sink.writeChunk(Tid, Reference.TraceData.PerThread[Tid].data(),
                      Reference.TraceData.PerThread[Tid].size());
    ASSERT_TRUE(Sink.close());
    uint64_t Raw = Reference.TraceData.totalEvents() * sizeof(EventRecord);
    EXPECT_LT(Sink.compressedBytes() * 2, Raw)
        << "expected at least 2x compression on a real trace";
  }
  auto Back = readCompressedTraceFile(Path);
  ASSERT_TRUE(Back.has_value());
  ASSERT_TRUE(tracesEqual(Reference.TraceData, *Back));
  RaceReport BackReport;
  ASSERT_TRUE(detectRaces(*Back, BackReport));
  EXPECT_EQ(BackReport.keys(), RefReport.keys());
  std::remove(Path.c_str());
}

} // namespace
