//===-- tests/AnalysisTest.cpp - Static-analysis pass ------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Covers the pre-execution static analysis (src/analysis): each of the
// three analyses on synthetic access models, the conservative elision
// rules, golden SitePolicy snapshots for every bundled workload, the
// runtime integration (tracer skips elided sites, --no-elide escape
// hatch, PolicyMeta log stamp), and the soundness audit — detection
// recall on seeded races is identical with and without elision at 100%
// sampling.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "detector/HBDetector.h"
#include "harness/ElisionExperiment.h"
#include "runtime/Runtime.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr Pc P(uint32_t Fn, uint32_t Site) { return makePc(Fn, Site); }

TEST(StaticAnalysisTest, PerThreadScopeIsThreadLocal) {
  AccessModel M;
  const RoleId Worker = M.declareRole("worker", 4);
  const VarId Scratch = M.declareVar("scratch", VarScope::PerThread);
  M.declareSite(P(1, 1), SiteAccess::Write, Scratch, {Worker});
  M.declareSite(P(1, 2), SiteAccess::Read, Scratch, {Worker});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Scratch].Kind, VarVerdictKind::ThreadLocal);
  EXPECT_EQ(R.ElidableSites, 2u);
  EXPECT_TRUE(R.Policy.elidable(P(1, 1)));
  EXPECT_TRUE(R.Policy.elidable(P(1, 2)));
}

TEST(StaticAnalysisTest, SingleInstanceRoleIsThreadLocal) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Workers = M.declareRole("workers", 3);
  const VarId Private = M.declareVar("main-only");
  M.declareSite(P(1, 1), SiteAccess::Write, Private, {Main});
  const VarId Shared = M.declareVar("worker-shared");
  M.declareSite(P(1, 2), SiteAccess::Write, Shared, {Workers});

  AnalysisResult R = analyzeAccessModel(M);
  // One thread can never race with itself...
  EXPECT_EQ(R.Vars[Private].Kind, VarVerdictKind::ThreadLocal);
  EXPECT_TRUE(R.Policy.elidable(P(1, 1)));
  // ...but a role with three instances escapes.
  EXPECT_EQ(R.Vars[Shared].Kind, VarVerdictKind::Racy);
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));
}

TEST(StaticAnalysisTest, ReadOnlyNeedsNoWriteSiteAnywhere) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 3);
  const VarId Table = M.declareVar("table");
  M.declareSite(P(1, 1), SiteAccess::Read, Table, {Workers});
  M.declareSite(P(2, 1), SiteAccess::Read, Table, {Workers});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Table].Kind, VarVerdictKind::ReadOnly);
  EXPECT_EQ(R.ElidableSites, 2u);

  // One write declaration anywhere forfeits the proof.
  AccessModel M2;
  const RoleId W2 = M2.declareRole("workers", 3);
  const VarId T2 = M2.declareVar("table");
  M2.declareSite(P(1, 1), SiteAccess::Read, T2, {W2});
  M2.declareSite(P(2, 1), SiteAccess::Write, T2, {W2});
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_EQ(R2.Vars[T2].Kind, VarVerdictKind::Racy);
  EXPECT_EQ(R2.ElidableSites, 0u);
}

TEST(StaticAnalysisTest, LocksetIntersectsHeldSetsAcrossSites) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const LockId A = M.declareLock("a");
  const LockId B = M.declareLock("b");
  const VarId Counter = M.declareVar("counter");
  // Sites hold {A,B} and {B}: intersection {B} is non-empty → consistent.
  M.declareSite(P(1, 1), SiteAccess::Write, Counter, {Workers}, {A, B});
  M.declareSite(P(1, 2), SiteAccess::Read, Counter, {Workers}, {B});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Counter].Kind, VarVerdictKind::LockConsistent);
  EXPECT_EQ(R.Vars[Counter].CommonLock, B);
  EXPECT_EQ(R.ElidableSites, 2u);

  // Disjoint locksets: no common lock, no proof.
  AccessModel M2;
  const RoleId W2 = M2.declareRole("workers", 4);
  const LockId A2 = M2.declareLock("a");
  const LockId B2 = M2.declareLock("b");
  const VarId C2 = M2.declareVar("counter");
  M2.declareSite(P(1, 1), SiteAccess::Write, C2, {W2}, {A2});
  M2.declareSite(P(1, 2), SiteAccess::Read, C2, {W2}, {B2});
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_EQ(R2.Vars[C2].Kind, VarVerdictKind::Racy);
  EXPECT_EQ(R2.ElidableSites, 0u);
}

TEST(StaticAnalysisTest, MultiVariableSiteElidedOnlyIfAllVarsSafe) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 2);
  const LockId L = M.declareLock("l");
  const VarId Safe = M.declareVar("safe");
  const VarId Racy = M.declareVar("racy");
  // One site touches both a lock-consistent and a racy variable.
  M.declareSite(P(1, 1), SiteAccess::Write, Safe, {Workers}, {L});
  M.declareSite(P(1, 1), SiteAccess::Write, Racy, {Workers});
  // A second site touches only the safe variable.
  M.declareSite(P(1, 2), SiteAccess::Read, Safe, {Workers}, {L});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Safe].Kind, VarVerdictKind::LockConsistent);
  EXPECT_EQ(R.Vars[Racy].Kind, VarVerdictKind::Racy);
  EXPECT_FALSE(R.Policy.elidable(P(1, 1)));
  EXPECT_TRUE(R.Policy.elidable(P(1, 2)));
  EXPECT_EQ(R.DeclaredSites, 2u);
  EXPECT_EQ(R.ElidableSites, 1u);
}

TEST(StaticAnalysisTest, UndeclaredSitesAreNeverElided) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const VarId V = M.declareVar("v");
  M.declareSite(P(1, 1), SiteAccess::Write, V, {Main});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_TRUE(R.Policy.elidable(P(1, 1)));
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));
  EXPECT_FALSE(R.Policy.elidable(P(2, 1)));
  EXPECT_FALSE(R.Policy.elidable(P(999, 7)));
}

TEST(SitePolicyTest, ViewExposesPerFunctionBits) {
  SitePolicy Policy;
  Policy.markElidable(P(3, 5));
  Policy.markElidable(P(3, 200));

  ElideView View = Policy.view(3);
  EXPECT_TRUE(View.test(5));
  EXPECT_TRUE(View.test(200));
  EXPECT_FALSE(View.test(6));
  EXPECT_FALSE(View.test(100000)); // Beyond the bitmap: safely false.
  ElideView Other = Policy.view(4);
  EXPECT_FALSE(Other.test(5));
  ElideView Empty; // Default view (no policy): everything logs.
  EXPECT_FALSE(Empty.test(0));
}

TEST(SitePolicyTest, FingerprintTracksContent) {
  SitePolicy Empty;
  SitePolicy One;
  One.markElidable(P(1, 1));
  SitePolicy Two;
  Two.markElidable(P(1, 1));
  Two.markElidable(P(2, 9));
  EXPECT_NE(Empty.fingerprint(), One.fingerprint());
  EXPECT_NE(One.fingerprint(), Two.fingerprint());

  SitePolicy OneAgain;
  OneAgain.markElidable(P(1, 1));
  EXPECT_EQ(One.fingerprint(), OneAgain.fingerprint());
  EXPECT_EQ(One.elidableSites(), std::vector<Pc>{P(1, 1)});
}

/// Renders a policy against a registry as sorted "function:site" labels.
std::vector<std::string> policyLabels(WorkloadKind Kind) {
  std::unique_ptr<Workload> W = makeWorkload(Kind);
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime RT(Config, nullptr);
  W->bind(RT);
  AnalysisResult R = analyzeAccessModel(RT.accessModel());
  std::vector<std::string> Labels;
  for (Pc Site : R.Policy.elidableSites())
    Labels.push_back(RT.registry().name(pcFunction(Site)) + ":" +
                     std::to_string(pcSite(Site)));
  return Labels;
}

TEST(GoldenPolicyTest, WorkloadPoliciesMatchSnapshots) {
  using Labels = std::vector<std::string>;
  EXPECT_EQ(policyLabels(WorkloadKind::Channel),
            (Labels{"chan.push:1", "chan.push:3", "chan.pop:20",
                    "chan.pop:22", "pipeline.produce:41",
                    "pipeline.consume:63"}));
  // With the instrumented stdlib bound, the payload folds alias the
  // library's caller-buffer writes, so they are no longer declared
  // read-only; the stdlib adds its per-thread format buffer instead.
  EXPECT_EQ(policyLabels(WorkloadKind::ChannelWithStdLib),
            (Labels{"chan.push:1", "chan.push:3", "chan.pop:20",
                    "chan.pop:22", "stdlib.formatUint:26"}));
  EXPECT_EQ(policyLabels(WorkloadKind::ConcRTMessaging),
            (Labels{"rt.enqueue:2", "rt.dequeue:20", "rt.execute:40",
                    "agent.send:80", "agent.receive:100"}));
  EXPECT_EQ(policyLabels(WorkloadKind::ConcRTScheduling),
            policyLabels(WorkloadKind::ConcRTMessaging));
  EXPECT_EQ(policyLabels(WorkloadKind::Httpd1),
            (Labels{"http.parse:6", "http.serveStatic:20",
                    "http.serveStatic:21", "http.serveStatic:27",
                    "http.serveStatic:28", "http.serveStatic:30",
                    "http.serveCgi:50", "http.serveCgi:51",
                    "http.logAccess:74", "srv.enqueue:90", "srv.dequeue:91",
                    "srv.scrub:151"}));
  EXPECT_EQ(policyLabels(WorkloadKind::Httpd2),
            policyLabels(WorkloadKind::Httpd1));
  EXPECT_EQ(policyLabels(WorkloadKind::BrowserStart),
            (Labels{"svc.loadItem:20", "svc.loadItem:21",
                    "reg.registerComponent:40", "reg.registerComponent:41",
                    "reg.lookup:60", "layout.measureText:180",
                    "style.resolve:200", "style.resolve:201",
                    "style.resolve:202", "render.paint:190",
                    "render.paint:191"}));
  EXPECT_EQ(policyLabels(WorkloadKind::BrowserRender),
            policyLabels(WorkloadKind::BrowserStart));
  EXPECT_EQ(policyLabels(WorkloadKind::LKRHash),
            (Labels{"lkr.insert:1", "lkr.insert:2", "lkr.insert:3",
                    "lkr.lookup:1", "lkr.lookup:4"}));
  // The lock-free list and the stencil kernel are correct via publication
  // ordering and band partitioning — facts beyond the three analyses, so
  // nothing may be elided.
  EXPECT_EQ(policyLabels(WorkloadKind::LFList), Labels{});
  EXPECT_EQ(policyLabels(WorkloadKind::SciComputeFn), Labels{});
  EXPECT_EQ(policyLabels(WorkloadKind::SciComputeLoop), Labels{});
}

TEST(RuntimeElisionTest, TracerSkipsElidedSitesAndCountsThem) {
  // LKRHash's policy covers every declared site, and all its memory
  // operations come from declared sites: with the policy installed,
  // nothing is logged at all.
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  NullSink Sink;
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::LKRHash);
  W->bind(RT);
  AnalysisResult R = analyzeAndInstall(RT);
  ASSERT_EQ(R.ElidableSites, R.DeclaredSites);
  W->run(RT, Params);
  EXPECT_EQ(RT.stats().MemOpsLogged, 0u);
  EXPECT_GT(RT.stats().MemOpsElided, 0u);
}

TEST(RuntimeElisionTest, NoElideEscapeHatchDisablesThePolicy) {
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.DisableElision = true;
  NullSink Sink;
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::LKRHash);
  W->bind(RT);
  analyzeAndInstall(RT);
  W->run(RT, Params);
  EXPECT_EQ(RT.stats().MemOpsElided, 0u);
  EXPECT_GT(RT.stats().MemOpsLogged, 0u);
}

TEST(RuntimeElisionTest, PolicyMetaStampIsLoggedAndReplayable) {
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  MemorySink Sink(/*NumTimestampCounters=*/128);
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::LKRHash);
  W->bind(RT);
  AnalysisResult R = analyzeAndInstall(RT);
  W->run(RT, Params);

  Trace T = Sink.takeTrace();
  ASSERT_FALSE(T.PerThread.empty());
  ASSERT_FALSE(T.PerThread[0].empty());
  const EventRecord &Stamp = T.PerThread[0].front();
  EXPECT_EQ(Stamp.Kind, EventKind::PolicyMeta);
  EXPECT_EQ(Stamp.Addr, R.Policy.fingerprint());
  EXPECT_EQ(Stamp.Pc, R.Policy.numElidableSites());

  // The stamped log must replay cleanly through the detector.
  RaceReport Report;
  EXPECT_TRUE(detectRaces(T, Report));
  EXPECT_EQ(Report.numStaticRaces(), 0u); // LKRHash is race-free.
}

TEST(SoundnessTest, ElisionHidesNoSeededRaceAtFullSampling) {
  // The satellite requirement: detection recall on seededRaces() must be
  // identical with and without elision at 100% sampling. The audit runs
  // one fully logged execution and applies the policy offline, so both
  // detector passes see the same interleaving.
  WorkloadParams Params;
  Params.Scale = 0.04;
  const WorkloadKind Kinds[] = {
      WorkloadKind::Channel,       WorkloadKind::ChannelWithStdLib,
      WorkloadKind::ConcRTScheduling, WorkloadKind::Httpd1,
      WorkloadKind::BrowserRender, WorkloadKind::LKRHash,
      WorkloadKind::SciComputeFn};
  for (WorkloadKind Kind : Kinds) {
    ElisionRow Row = runElisionExperiment(Kind, Params, /*Repeats=*/1);
    EXPECT_TRUE(Row.LogConsistent) << Row.Benchmark;
    EXPECT_TRUE(Row.Sound) << Row.Benchmark;
    EXPECT_EQ(Row.FamiliesFull, Row.FamiliesFiltered) << Row.Benchmark;
  }
}

TEST(SoundnessTest, ElisionMeasurablyReducesLogVolume) {
  // Acceptance criterion: measurable log-volume reduction on at least
  // three workloads.
  WorkloadParams Params;
  Params.Scale = 0.04;
  size_t Reduced = 0;
  const WorkloadKind Kinds[] = {WorkloadKind::Channel,
                                WorkloadKind::ConcRTScheduling,
                                WorkloadKind::Httpd1,
                                WorkloadKind::LKRHash};
  for (WorkloadKind Kind : Kinds) {
    ElisionRow Row = runElisionExperiment(Kind, Params, /*Repeats=*/1);
    EXPECT_GT(Row.logReduction(), 0.25) << Row.Benchmark;
    EXPECT_GT(Row.MemOpsElided, 0u) << Row.Benchmark;
    Reduced += Row.logReduction() > 0.25 ? 1 : 0;
  }
  EXPECT_GE(Reduced, 3u);
}

} // namespace
