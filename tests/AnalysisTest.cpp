//===-- tests/AnalysisTest.cpp - Static-analysis pass ------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Covers the pre-execution static analysis (src/analysis): each of the
// three analyses on synthetic access models, the conservative elision
// rules, golden SitePolicy snapshots for every bundled workload, the
// runtime integration (tracer skips elided sites, --no-elide escape
// hatch, PolicyMeta log stamp), and the soundness audit — detection
// recall on seeded races is identical with and without elision at 100%
// sampling.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModelMutation.h"
#include "analysis/StaticAnalysis.h"
#include "detector/HBDetector.h"
#include "harness/ElisionExperiment.h"
#include "runtime/Runtime.h"
#include "workloads/Workload.h"

#include <set>

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr Pc P(uint32_t Fn, uint32_t Site) { return makePc(Fn, Site); }

TEST(StaticAnalysisTest, PerThreadScopeIsThreadLocal) {
  AccessModel M;
  const RoleId Worker = M.declareRole("worker", 4);
  const VarId Scratch = M.declareVar("scratch", VarScope::PerThread);
  M.declareSite(P(1, 1), SiteAccess::Write, Scratch, {Worker});
  M.declareSite(P(1, 2), SiteAccess::Read, Scratch, {Worker});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Scratch].Kind, VarVerdictKind::ThreadLocal);
  EXPECT_EQ(R.ElidableSites, 2u);
  EXPECT_TRUE(R.Policy.elidable(P(1, 1)));
  EXPECT_TRUE(R.Policy.elidable(P(1, 2)));
}

TEST(StaticAnalysisTest, SingleInstanceRoleIsThreadLocal) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Workers = M.declareRole("workers", 3);
  const VarId Private = M.declareVar("main-only");
  M.declareSite(P(1, 1), SiteAccess::Write, Private, {Main});
  const VarId Shared = M.declareVar("worker-shared");
  M.declareSite(P(1, 2), SiteAccess::Write, Shared, {Workers});

  AnalysisResult R = analyzeAccessModel(M);
  // One thread can never race with itself...
  EXPECT_EQ(R.Vars[Private].Kind, VarVerdictKind::ThreadLocal);
  EXPECT_TRUE(R.Policy.elidable(P(1, 1)));
  // ...but a role with three instances escapes.
  EXPECT_EQ(R.Vars[Shared].Kind, VarVerdictKind::Racy);
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));
}

TEST(StaticAnalysisTest, ReadOnlyNeedsNoWriteSiteAnywhere) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 3);
  const VarId Table = M.declareVar("table");
  M.declareSite(P(1, 1), SiteAccess::Read, Table, {Workers});
  M.declareSite(P(2, 1), SiteAccess::Read, Table, {Workers});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Table].Kind, VarVerdictKind::ReadOnly);
  EXPECT_EQ(R.ElidableSites, 2u);

  // One write declaration anywhere forfeits the proof.
  AccessModel M2;
  const RoleId W2 = M2.declareRole("workers", 3);
  const VarId T2 = M2.declareVar("table");
  M2.declareSite(P(1, 1), SiteAccess::Read, T2, {W2});
  M2.declareSite(P(2, 1), SiteAccess::Write, T2, {W2});
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_EQ(R2.Vars[T2].Kind, VarVerdictKind::Racy);
  EXPECT_EQ(R2.ElidableSites, 0u);
}

TEST(StaticAnalysisTest, LocksetIntersectsHeldSetsAcrossSites) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const LockId A = M.declareLock("a");
  const LockId B = M.declareLock("b");
  const VarId Counter = M.declareVar("counter");
  // Sites hold {A,B} and {B}: intersection {B} is non-empty → consistent.
  M.declareSite(P(1, 1), SiteAccess::Write, Counter, {Workers}, {A, B});
  M.declareSite(P(1, 2), SiteAccess::Read, Counter, {Workers}, {B});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Counter].Kind, VarVerdictKind::LockConsistent);
  EXPECT_EQ(R.Vars[Counter].CommonLock, B);
  EXPECT_EQ(R.ElidableSites, 2u);

  // Disjoint locksets: no common lock, no proof.
  AccessModel M2;
  const RoleId W2 = M2.declareRole("workers", 4);
  const LockId A2 = M2.declareLock("a");
  const LockId B2 = M2.declareLock("b");
  const VarId C2 = M2.declareVar("counter");
  M2.declareSite(P(1, 1), SiteAccess::Write, C2, {W2}, {A2});
  M2.declareSite(P(1, 2), SiteAccess::Read, C2, {W2}, {B2});
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_EQ(R2.Vars[C2].Kind, VarVerdictKind::Racy);
  EXPECT_EQ(R2.ElidableSites, 0u);
}

TEST(StaticAnalysisTest, MultiVariableSiteElidedOnlyIfAllVarsSafe) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 2);
  const LockId L = M.declareLock("l");
  const VarId Safe = M.declareVar("safe");
  const VarId Racy = M.declareVar("racy");
  // One site touches both a lock-consistent and a racy variable.
  M.declareSite(P(1, 1), SiteAccess::Write, Safe, {Workers}, {L});
  M.declareSite(P(1, 1), SiteAccess::Write, Racy, {Workers});
  // A second site touches only the safe variable.
  M.declareSite(P(1, 2), SiteAccess::Read, Safe, {Workers}, {L});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Safe].Kind, VarVerdictKind::LockConsistent);
  EXPECT_EQ(R.Vars[Racy].Kind, VarVerdictKind::Racy);
  EXPECT_FALSE(R.Policy.elidable(P(1, 1)));
  EXPECT_TRUE(R.Policy.elidable(P(1, 2)));
  EXPECT_EQ(R.DeclaredSites, 2u);
  EXPECT_EQ(R.ElidableSites, 1u);
}

TEST(StaticAnalysisTest, UndeclaredSitesAreNeverElided) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const VarId V = M.declareVar("v");
  M.declareSite(P(1, 1), SiteAccess::Write, V, {Main});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_TRUE(R.Policy.elidable(P(1, 1)));
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));
  EXPECT_FALSE(R.Policy.elidable(P(2, 1)));
  EXPECT_FALSE(R.Policy.elidable(P(999, 7)));
}

TEST(MhpPassTest, OrderedPhasesProveRaceFreedom) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Workers = M.declareRole("workers", 4);
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  M.orderPhases(Init, Steady);
  const VarId Table = M.declareVar("table");
  // One init-phase write by the main thread, steady-phase worker reads:
  // the only conflicting pairs are (write, read) across ordered phases
  // and the write's self-pair, discharged by the single main instance.
  M.declareSite(P(1, 1), SiteAccess::Write, Table, {Main}, {}, Init);
  M.declareSite(P(2, 1), SiteAccess::Read, Table, {Workers}, {}, Steady);

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Table].Kind, VarVerdictKind::PhaseOrdered);
  EXPECT_EQ(R.Vars[Table].ProvedBy, AnalysisPass::Mhp);
  EXPECT_EQ(R.ElidableSites, 2u);

  // The same declarations WITHOUT the phase order stay racy: unordered
  // phases are MHP.
  AccessModel M2;
  const RoleId Main2 = M2.declareRole("main", 1);
  const RoleId Workers2 = M2.declareRole("workers", 4);
  const PhaseId Init2 = M2.declarePhase("init");
  const PhaseId Steady2 = M2.declarePhase("steady");
  const VarId T2 = M2.declareVar("table");
  M2.declareSite(P(1, 1), SiteAccess::Write, T2, {Main2}, {}, Init2);
  M2.declareSite(P(2, 1), SiteAccess::Read, T2, {Workers2}, {}, Steady2);
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_EQ(R2.Vars[T2].Kind, VarVerdictKind::Racy);
  EXPECT_EQ(R2.ElidableSites, 0u);
}

TEST(MhpPassTest, PhaseOrderIsTransitive) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  const PhaseId Teardown = M.declarePhase("teardown");
  M.orderPhases(Init, Steady);
  M.orderPhases(Steady, Teardown, PhaseOrderKind::Barrier);
  const RoleId Workers = M.declareRole("workers", 3);
  const VarId V = M.declareVar("v");
  // init < teardown only via the transitive closure through steady.
  M.declareSite(P(1, 1), SiteAccess::Write, V, {Main}, {}, Init);
  M.declareSite(P(3, 1), SiteAccess::Read, V, {Workers}, {}, Teardown);
  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[V].Kind, VarVerdictKind::PhaseOrdered);
}

TEST(MhpPassTest, WriteSelfPairNeedsItsOwnDischarge) {
  // A multi-instance role writing in one phase races with itself no
  // matter how the phases are ordered; only a pairwise common lock or a
  // single-instance role discharges the self-pair.
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  M.orderPhases(Init, Steady);
  const VarId V = M.declareVar("v");
  M.declareSite(P(1, 1), SiteAccess::Write, V, {Workers}, {}, Init);
  M.declareSite(P(2, 1), SiteAccess::Read, V, {Workers}, {}, Steady);
  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[V].Kind, VarVerdictKind::Racy);

  // With a lock held at the write site the self-pair is discharged and
  // the cross-phase pair is ordered: proven.
  AccessModel M2;
  const RoleId W2 = M2.declareRole("workers", 4);
  const LockId L2 = M2.declareLock("l");
  const PhaseId Init2 = M2.declarePhase("init");
  const PhaseId Steady2 = M2.declarePhase("steady");
  M2.orderPhases(Init2, Steady2);
  const VarId V2 = M2.declareVar("v");
  M2.declareSite(P(1, 1), SiteAccess::Write, V2, {W2}, {L2}, Init2);
  M2.declareSite(P(2, 1), SiteAccess::Read, V2, {W2}, {}, Steady2);
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_EQ(R2.Vars[V2].Kind, VarVerdictKind::PhaseOrdered);
}

TEST(MhpPassTest, UntaggedDeclarationsAreMhpWithEverything) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Workers = M.declareRole("workers", 4);
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  M.orderPhases(Init, Steady);
  const VarId V = M.declareVar("v");
  M.declareSite(P(1, 1), SiteAccess::Write, V, {Main}, {}, Init);
  M.declareSite(P(2, 1), SiteAccess::Read, V, {Workers}); // No phase.
  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[V].Kind, VarVerdictKind::Racy);
}

TEST(RedundancyPassTest, DominatedDuplicatesInARegionAreRedundant) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const VarId V = M.declareVar("v"); // Shared and written: racy.
  M.declareSite(P(1, 1), SiteAccess::Read, V, {Workers});
  M.declareSite(P(1, 2), SiteAccess::Write, V, {Workers});
  M.declareSite(P(1, 3), SiteAccess::Read, V, {Workers});
  M.declareRegion("block", {P(1, 1), P(1, 2), P(1, 3)});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[V].Kind, VarVerdictKind::Racy);
  // The first read and first write keep logging; the re-read after the
  // write is dominated.
  EXPECT_FALSE(R.Policy.elidable(P(1, 1)));
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));
  EXPECT_TRUE(R.Policy.elidable(P(1, 3)));
  EXPECT_EQ(R.Policy.elisionClass(P(1, 3)), ElisionClass::Redundant);
  EXPECT_EQ(R.RedundantSites, 1u);
}

TEST(RedundancyPassTest, WriteAfterReadIsNotRedundant) {
  // A read logs a read-event; a later write is a DIFFERENT conflict shape
  // (write/write races exist that read/read ones do not), so a write is
  // only dominated by a previous write.
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const VarId V = M.declareVar("v");
  M.declareSite(P(1, 1), SiteAccess::Read, V, {Workers});
  M.declareSite(P(1, 2), SiteAccess::Write, V, {Workers});
  M.declareRegion("block", {P(1, 1), P(1, 2)});
  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));

  AccessModel M2;
  const RoleId W2 = M2.declareRole("workers", 4);
  const VarId V2 = M2.declareVar("v");
  M2.declareSite(P(1, 1), SiteAccess::Write, V2, {W2});
  M2.declareSite(P(1, 2), SiteAccess::Write, V2, {W2});
  M2.declareRegion("block", {P(1, 1), P(1, 2)});
  AnalysisResult R2 = analyzeAccessModel(M2);
  EXPECT_FALSE(R2.Policy.elidable(P(1, 1)));
  EXPECT_TRUE(R2.Policy.elidable(P(1, 2)));
}

TEST(RedundancyPassTest, SiteTouchingAFreshVarIsNotRedundant) {
  // A site is Redundant only if EVERY declaration at it is dominated.
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const VarId A = M.declareVar("a");
  const VarId B = M.declareVar("b");
  // Both variables are racy (unlocked writes elsewhere keep the race-
  // freedom passes honest), so only the redundancy pass is in play.
  M.declareSite(P(2, 1), SiteAccess::Write, A, {Workers});
  M.declareSite(P(2, 2), SiteAccess::Write, B, {Workers});
  M.declareSite(P(1, 1), SiteAccess::Read, A, {Workers});
  M.declareSite(P(1, 2), SiteAccess::Read, A, {Workers}); // A dominated...
  M.declareSite(P(1, 2), SiteAccess::Read, B, {Workers}); // ...B fresh.
  M.declareRegion("block", {P(1, 1), P(1, 2)});
  AnalysisResult R = analyzeAccessModel(M);
  ASSERT_EQ(R.Vars[A].Kind, VarVerdictKind::Racy);
  ASSERT_EQ(R.Vars[B].Kind, VarVerdictKind::Racy);
  EXPECT_FALSE(R.Policy.elidable(P(1, 2)));
}

TEST(SitePolicyTest, ElisionClassesTrackSitesAndFoldIntoFingerprint) {
  SitePolicy RaceFree;
  RaceFree.markElidable(P(1, 1));
  SitePolicy Redundant;
  Redundant.markElidable(P(1, 1), ElisionClass::Redundant);
  // Same site set, different class: different policy identity, so a log
  // stamped by one is distinguishable from a log stamped by the other.
  EXPECT_NE(RaceFree.fingerprint(), Redundant.fingerprint());
  EXPECT_EQ(RaceFree.numRedundantSites(), 0u);
  EXPECT_EQ(Redundant.numRedundantSites(), 1u);
  EXPECT_EQ(Redundant.elisionClass(P(1, 1)), ElisionClass::Redundant);
  EXPECT_EQ(Redundant.elisionClass(P(9, 9)), ElisionClass::None);

  // The stronger RaceFree claim wins when a site earns both.
  SitePolicy Both;
  Both.markElidable(P(1, 1), ElisionClass::Redundant);
  Both.markElidable(P(1, 1), ElisionClass::RaceFree);
  EXPECT_EQ(Both.elisionClass(P(1, 1)), ElisionClass::RaceFree);
  EXPECT_EQ(Both.numRedundantSites(), 0u);
  EXPECT_EQ(Both.fingerprint(), RaceFree.fingerprint());
}

TEST(AnalysisOptionsTest, DisabledPassesProveNothing) {
  AccessModel M;
  const RoleId Workers = M.declareRole("workers", 4);
  const LockId L = M.declareLock("l");
  const VarId V = M.declareVar("v");
  M.declareSite(P(1, 1), SiteAccess::Write, V, {Workers}, {L});
  M.declareSite(P(1, 2), SiteAccess::Read, V, {Workers}, {L});

  EXPECT_EQ(analyzeAccessModel(M).ElidableSites, 2u);
  AnalysisResult None = analyzeAccessModel(M, AnalysisOptions::none());
  EXPECT_EQ(None.ElidableSites, 0u);
  EXPECT_EQ(None.Vars[V].Kind, VarVerdictKind::Racy);

  // Lockset alone proves it; with lockset off, the MHP pass still
  // discharges every pair via the pairwise common lock — so only
  // disabling BOTH loses the proof.
  AnalysisOptions NoLockset = AnalysisOptions::allExcept(AnalysisPass::Lockset);
  EXPECT_EQ(analyzeAccessModel(M, NoLockset).ElidableSites, 2u);
  NoLockset.set(AnalysisPass::Mhp, false);
  EXPECT_EQ(analyzeAccessModel(M, NoLockset).ElidableSites, 0u);

  for (size_t I = 0; I != kNumAnalysisPasses; ++I) {
    AnalysisOptions Opts = AnalysisOptions::allExcept(
        static_cast<AnalysisPass>(I));
    EXPECT_FALSE(Opts.enabled(static_cast<AnalysisPass>(I)));
    for (size_t J = 0; J != kNumAnalysisPasses; ++J)
      if (J != I)
        EXPECT_TRUE(Opts.enabled(static_cast<AnalysisPass>(J)));
  }
}

TEST(VerdictPriorityTest, HighestPriorityPassWinsAndAttributionIsExclusive) {
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Workers = M.declareRole("workers", 4);
  const LockId L = M.declareLock("l");
  // Provable by thread-escape AND read-only AND lockset: the verdict
  // must come from the highest-priority pass (thread-escape).
  const VarId Multi = M.declareVar("multi");
  M.declareSite(P(1, 1), SiteAccess::Read, Multi, {Main}, {L});
  // Provable by exactly one pass (lockset): shared, written, locked.
  const VarId Single = M.declareVar("single");
  M.declareSite(P(2, 1), SiteAccess::Write, Single, {Workers}, {L});
  M.declareSite(P(2, 2), SiteAccess::Read, Single, {Workers}, {L});

  AnalysisResult R = analyzeAccessModel(M);
  EXPECT_EQ(R.Vars[Multi].Kind, VarVerdictKind::ThreadLocal);
  EXPECT_EQ(R.Vars[Multi].ProvedBy, AnalysisPass::ThreadEscape);
  EXPECT_EQ(R.Vars[Single].Kind, VarVerdictKind::LockConsistent);

  // Differential attribution credits each site to AT MOST one pass: the
  // attribution sets are pairwise disjoint, and a site provable by two
  // passes (Multi's) is attributed to neither.
  std::set<Pc> Seen;
  for (size_t I = 0; I != kNumAnalysisPasses; ++I) {
    for (Pc Site : passAttribution(M, static_cast<AnalysisPass>(I))) {
      EXPECT_TRUE(Seen.insert(Site).second)
          << "site attributed to two passes";
    }
  }
  EXPECT_EQ(Seen.count(P(1, 1)), 0u);
  // Single's sites are the lockset pass's exclusive credit... except the
  // MHP pass can also discharge them pairwise via the common lock, so
  // with both enabled neither is charged. Verify by disabling MHP.
  std::vector<Pc> LocksetOnly = passAttribution(M, AnalysisPass::Lockset);
  EXPECT_TRUE(LocksetOnly.empty());
  AnalysisOptions NoMhp = AnalysisOptions::allExcept(AnalysisPass::Mhp);
  AnalysisOptions Neither = NoMhp;
  Neither.set(AnalysisPass::Lockset, false);
  EXPECT_EQ(analyzeAccessModel(M, NoMhp).Policy.elidable(P(2, 1)), true);
  EXPECT_EQ(analyzeAccessModel(M, Neither).Policy.elidable(P(2, 1)), false);
}

TEST(ConservatismFuzzerTest, BundledModelsSurviveRandomWeakening) {
  const WorkloadKind Kinds[] = {WorkloadKind::Channel,
                                WorkloadKind::Httpd1,
                                WorkloadKind::BrowserStart,
                                WorkloadKind::ConcRTMessaging};
  for (WorkloadKind Kind : Kinds) {
    std::unique_ptr<Workload> W = makeWorkload(Kind);
    RuntimeConfig Config;
    Config.Mode = RunMode::Baseline;
    Runtime RT(Config, nullptr);
    W->bind(RT);
    MutationFuzzResult Result =
        fuzzModelConservatism(RT.accessModel(), /*Trials=*/24);
    EXPECT_TRUE(Result.passed()) << Result.FirstViolation;
    EXPECT_EQ(Result.Trials, 24u);
    EXPECT_GT(Result.MutationsApplied, 0u);
  }
}

TEST(ConservatismFuzzerTest, WeakeningsAreMonotone) {
  // Directly check a cross-section of weakenings on a phase+region model:
  // each one may only SHRINK the elidable set.
  AccessModel M;
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Workers = M.declareRole("workers", 4);
  const LockId L = M.declareLock("l");
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  M.orderPhases(Init, Steady);
  const VarId A = M.declareVar("a");
  M.declareSite(P(1, 1), SiteAccess::Write, A, {Main}, {}, Init);
  M.declareSite(P(2, 1), SiteAccess::Read, A, {Workers}, {}, Steady);
  const VarId B = M.declareVar("b");
  M.declareSite(P(3, 1), SiteAccess::Read, B, {Workers}, {L});
  M.declareSite(P(3, 2), SiteAccess::Write, B, {Workers}, {L});
  M.declareSite(P(3, 3), SiteAccess::Read, B, {Workers}, {L});
  M.declareRegion("blk", {P(3, 1), P(3, 2), P(3, 3)});

  std::vector<Pc> BaseVec = analyzeAccessModel(M).Policy.elidableSites();
  std::set<Pc> Base(BaseVec.begin(), BaseVec.end());

  auto CheckSubset = [&](AccessModel Mutant, const char *What) {
    for (Pc Site : analyzeAccessModel(Mutant).Policy.elidableSites())
      EXPECT_TRUE(Base.count(Site)) << What;
  };
  {
    AccessModel Mut = M;
    Mut.weakenClearPhase(0);
    CheckSubset(Mut, "clear phase");
  }
  {
    AccessModel Mut = M;
    Mut.weakenDropPhaseOrder(0);
    CheckSubset(Mut, "drop order");
  }
  {
    AccessModel Mut = M;
    Mut.weakenDropRegion(0);
    CheckSubset(Mut, "drop region");
  }
  {
    AccessModel Mut = M;
    Mut.weakenDropRegionSite(0, 1);
    CheckSubset(Mut, "drop region site");
  }
  {
    AccessModel Mut = M;
    Mut.weakenWidenRole(Main);
    CheckSubset(Mut, "widen role");
  }
}

TEST(PassNotesTest, ExplainChainRecordsEveryAttemptedPass) {
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::Channel);
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime RT(Config, nullptr);
  W->bind(RT);
  const AccessModel &M = RT.accessModel();

  AnalysisResult R = analyzeAccessModel(M);
  for (const VarVerdict &V : R.Vars) {
    ASSERT_FALSE(V.PassNotes.empty()) << M.varName(V.Var);
    if (V.Kind != VarVerdictKind::Racy) {
      // The last race-freedom note is the winner's PROVED line.
      bool Proved = false;
      for (const std::string &Note : V.PassNotes)
        Proved |= Note.find("PROVED") != std::string::npos;
      EXPECT_TRUE(Proved) << M.varName(V.Var);
    }
  }

  // Disabled passes are marked so --explain shows why nothing fired.
  AnalysisResult None = analyzeAccessModel(M, AnalysisOptions::none());
  ASSERT_FALSE(None.Vars.empty());
  bool SawDisabled = false;
  for (const std::string &Note : None.Vars[0].PassNotes)
    SawDisabled |= Note.find("disabled") != std::string::npos;
  EXPECT_TRUE(SawDisabled);
}

TEST(SitePolicyTest, ViewExposesPerFunctionBits) {
  SitePolicy Policy;
  Policy.markElidable(P(3, 5));
  Policy.markElidable(P(3, 200));

  ElideView View = Policy.view(3);
  EXPECT_TRUE(View.test(5));
  EXPECT_TRUE(View.test(200));
  EXPECT_FALSE(View.test(6));
  EXPECT_FALSE(View.test(100000)); // Beyond the bitmap: safely false.
  ElideView Other = Policy.view(4);
  EXPECT_FALSE(Other.test(5));
  ElideView Empty; // Default view (no policy): everything logs.
  EXPECT_FALSE(Empty.test(0));
}

TEST(SitePolicyTest, FingerprintTracksContent) {
  SitePolicy Empty;
  SitePolicy One;
  One.markElidable(P(1, 1));
  SitePolicy Two;
  Two.markElidable(P(1, 1));
  Two.markElidable(P(2, 9));
  EXPECT_NE(Empty.fingerprint(), One.fingerprint());
  EXPECT_NE(One.fingerprint(), Two.fingerprint());

  SitePolicy OneAgain;
  OneAgain.markElidable(P(1, 1));
  EXPECT_EQ(One.fingerprint(), OneAgain.fingerprint());
  EXPECT_EQ(One.elidableSites(), std::vector<Pc>{P(1, 1)});
}

/// Renders a policy against a registry as sorted "function:site" labels.
std::vector<std::string> policyLabels(WorkloadKind Kind) {
  std::unique_ptr<Workload> W = makeWorkload(Kind);
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime RT(Config, nullptr);
  W->bind(RT);
  AnalysisResult R = analyzeAccessModel(RT.accessModel());
  std::vector<std::string> Labels;
  for (Pc Site : R.Policy.elidableSites())
    Labels.push_back(RT.registry().name(pcFunction(Site)) + ":" +
                     std::to_string(pcSite(Site)));
  return Labels;
}

TEST(GoldenPolicyTest, WorkloadPoliciesMatchSnapshots) {
  using Labels = std::vector<std::string>;
  // chan.push:2 / chan.pop:21 (the ring cells) are proven by the MHP
  // pass via the init<steady phase order plus the queue lock;
  // pipeline.consume:64/65 by steady<teardown; chan.push:8 / chan.pop:25
  // are dominated rechecks elided Redundant.
  EXPECT_EQ(policyLabels(WorkloadKind::Channel),
            (Labels{"chan.push:1", "chan.push:2", "chan.push:3",
                    "chan.push:8", "chan.pop:20", "chan.pop:21",
                    "chan.pop:22", "chan.pop:25", "pipeline.produce:41",
                    "pipeline.consume:63", "pipeline.consume:64",
                    "pipeline.consume:65"}));
  // With the instrumented stdlib bound, the payload folds alias the
  // library's caller-buffer writes, so they are no longer declared
  // read-only; the stdlib adds its per-thread format buffer instead.
  EXPECT_EQ(policyLabels(WorkloadKind::ChannelWithStdLib),
            (Labels{"chan.push:1", "chan.push:2", "chan.push:3",
                    "chan.push:8", "chan.pop:20", "chan.pop:21",
                    "chan.pop:22", "chan.pop:25", "pipeline.consume:64",
                    "pipeline.consume:65", "stdlib.formatUint:26"}));
  EXPECT_EQ(policyLabels(WorkloadKind::ConcRTMessaging),
            (Labels{"rt.enqueue:2", "rt.dequeue:20", "rt.execute:40",
                    "rt.execute:44", "agent.send:80", "agent.send:84",
                    "agent.receive:100"}));
  EXPECT_EQ(policyLabels(WorkloadKind::ConcRTScheduling),
            policyLabels(WorkloadKind::ConcRTMessaging));
  EXPECT_EQ(policyLabels(WorkloadKind::Httpd1),
            (Labels{"http.parse:6", "http.serveStatic:20",
                    "http.serveStatic:21", "http.serveStatic:27",
                    "http.serveStatic:28", "http.serveStatic:30",
                    "http.serveStatic:32", "http.serveStatic:33",
                    "http.serveCgi:50", "http.serveCgi:51",
                    "http.logAccess:74", "srv.enqueue:90", "srv.dequeue:91",
                    "srv.scrub:151"}));
  EXPECT_EQ(policyLabels(WorkloadKind::Httpd2),
            policyLabels(WorkloadKind::Httpd1));
  EXPECT_EQ(policyLabels(WorkloadKind::BrowserStart),
            (Labels{"svc.loadItem:20", "svc.loadItem:21", "svc.loadItem:24",
                    "reg.registerComponent:40", "reg.registerComponent:41",
                    "reg.lookup:60", "layout.reflowBox:167",
                    "layout.measureText:180", "style.resolve:200",
                    "style.resolve:201", "style.resolve:202",
                    "render.paint:190", "render.paint:191"}));
  EXPECT_EQ(policyLabels(WorkloadKind::BrowserRender),
            policyLabels(WorkloadKind::BrowserStart));
  // lkr.insert:6 is the slot-block recheck: elided RaceFree by the
  // lockset pass (which beats its Redundant re-mark).
  EXPECT_EQ(policyLabels(WorkloadKind::LKRHash),
            (Labels{"lkr.insert:1", "lkr.insert:2", "lkr.insert:3",
                    "lkr.insert:6", "lkr.lookup:1", "lkr.lookup:4"}));
  // The lock-free list is correct via publication ordering — a fact
  // beyond all five analyses — so only the publish-block recheck (a
  // dominated re-read of the key the activation just wrote) is elidable,
  // and only under the Redundant class.
  EXPECT_EQ(policyLabels(WorkloadKind::LFList), (Labels{"lfl.insert:5"}));
  // The stencil kernel is correct via band partitioning; nothing may be
  // elided.
  EXPECT_EQ(policyLabels(WorkloadKind::SciComputeFn), Labels{});
  EXPECT_EQ(policyLabels(WorkloadKind::SciComputeLoop), Labels{});
}

TEST(RuntimeElisionTest, TracerSkipsElidedSitesAndCountsThem) {
  // LKRHash's policy covers every declared site, and all its memory
  // operations come from declared sites: with the policy installed,
  // nothing is logged at all.
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  NullSink Sink;
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::LKRHash);
  W->bind(RT);
  AnalysisResult R = analyzeAndInstall(RT);
  ASSERT_EQ(R.ElidableSites, R.DeclaredSites);
  W->run(RT, Params);
  EXPECT_EQ(RT.stats().MemOpsLogged, 0u);
  EXPECT_GT(RT.stats().MemOpsElided, 0u);
}

TEST(RuntimeElisionTest, NoElideEscapeHatchDisablesThePolicy) {
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.DisableElision = true;
  NullSink Sink;
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::LKRHash);
  W->bind(RT);
  analyzeAndInstall(RT);
  W->run(RT, Params);
  EXPECT_EQ(RT.stats().MemOpsElided, 0u);
  EXPECT_GT(RT.stats().MemOpsLogged, 0u);
}

TEST(RuntimeElisionTest, PolicyMetaStampIsLoggedAndReplayable) {
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  MemorySink Sink(/*NumTimestampCounters=*/128);
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::LKRHash);
  W->bind(RT);
  AnalysisResult R = analyzeAndInstall(RT);
  W->run(RT, Params);

  Trace T = Sink.takeTrace();
  ASSERT_FALSE(T.PerThread.empty());
  ASSERT_FALSE(T.PerThread[0].empty());
  const EventRecord &Stamp = T.PerThread[0].front();
  EXPECT_EQ(Stamp.Kind, EventKind::PolicyMeta);
  EXPECT_EQ(Stamp.Addr, R.Policy.fingerprint());
  EXPECT_EQ(Stamp.Pc, R.Policy.numElidableSites());
  EXPECT_EQ(Stamp.Ts, R.RedundantSites); // 0: all RaceFree for LKRHash.

  // The stamped log must replay cleanly through the detector.
  RaceReport Report;
  EXPECT_TRUE(detectRaces(T, Report));
  EXPECT_EQ(Report.numStaticRaces(), 0u); // LKRHash is race-free.
}

TEST(RuntimeElisionTest, PolicyMetaStampRecordsRedundantCount) {
  WorkloadParams Params;
  Params.Scale = 0.02;
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  MemorySink Sink(/*NumTimestampCounters=*/128);
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(WorkloadKind::Channel);
  W->bind(RT);
  AnalysisResult R = analyzeAndInstall(RT);
  ASSERT_EQ(R.RedundantSites, 2u); // chan.push:8 and chan.pop:25.
  W->run(RT, Params);

  Trace T = Sink.takeTrace();
  ASSERT_FALSE(T.PerThread.empty());
  ASSERT_FALSE(T.PerThread[0].empty());
  const EventRecord &Stamp = T.PerThread[0].front();
  ASSERT_EQ(Stamp.Kind, EventKind::PolicyMeta);
  EXPECT_EQ(Stamp.Ts, 2u);
}

TEST(SoundnessTest, PerPassAblationAttributesAndStaysSound) {
  WorkloadParams Params;
  Params.Scale = 0.04;
  ElisionRow Row =
      runElisionExperiment(WorkloadKind::Channel, Params, /*Repeats=*/1);
  ASSERT_EQ(Row.Ablations.size(), kNumAnalysisPasses);
  uint64_t TotalAttributed = 0;
  for (const PassAblation &Ablation : Row.Ablations) {
    EXPECT_TRUE(Ablation.Sound) << passName(Ablation.Pass);
    TotalAttributed += Ablation.RecordsAttributed;
  }
  // The new passes carry real, attributable log reduction on Channel.
  EXPECT_GT(
      Row.Ablations[static_cast<size_t>(AnalysisPass::Mhp)].SitesAttributed,
      0u);
  EXPECT_GT(Row.Ablations[static_cast<size_t>(AnalysisPass::Redundancy)]
                .SitesAttributed,
            0u);
  // Attribution can never credit more than the policy actually elides.
  EXPECT_LE(TotalAttributed, Row.ElidedMemRecords);
  EXPECT_EQ(Row.RedundantSites, 2u);
}

TEST(SoundnessTest, ElisionHidesNoSeededRaceAtFullSampling) {
  // The satellite requirement: detection recall on seededRaces() must be
  // identical with and without elision at 100% sampling. The audit runs
  // one fully logged execution and applies the policy offline, so both
  // detector passes see the same interleaving.
  WorkloadParams Params;
  Params.Scale = 0.04;
  const WorkloadKind Kinds[] = {
      WorkloadKind::Channel,       WorkloadKind::ChannelWithStdLib,
      WorkloadKind::ConcRTScheduling, WorkloadKind::Httpd1,
      WorkloadKind::BrowserRender, WorkloadKind::LKRHash,
      WorkloadKind::SciComputeFn};
  for (WorkloadKind Kind : Kinds) {
    ElisionRow Row = runElisionExperiment(Kind, Params, /*Repeats=*/1);
    EXPECT_TRUE(Row.LogConsistent) << Row.Benchmark;
    EXPECT_TRUE(Row.Sound) << Row.Benchmark;
    EXPECT_EQ(Row.FamiliesFull, Row.FamiliesFiltered) << Row.Benchmark;
  }
}

TEST(SoundnessTest, ElisionMeasurablyReducesLogVolume) {
  // Acceptance criterion: measurable log-volume reduction on at least
  // three workloads.
  WorkloadParams Params;
  Params.Scale = 0.04;
  size_t Reduced = 0;
  const WorkloadKind Kinds[] = {WorkloadKind::Channel,
                                WorkloadKind::ConcRTScheduling,
                                WorkloadKind::Httpd1,
                                WorkloadKind::LKRHash};
  for (WorkloadKind Kind : Kinds) {
    ElisionRow Row = runElisionExperiment(Kind, Params, /*Repeats=*/1);
    EXPECT_GT(Row.logReduction(), 0.25) << Row.Benchmark;
    EXPECT_GT(Row.MemOpsElided, 0u) << Row.Benchmark;
    Reduced += Row.logReduction() > 0.25 ? 1 : 0;
  }
  EXPECT_GE(Reduced, 3u);
}

} // namespace
