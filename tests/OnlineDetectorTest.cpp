//===-- tests/OnlineDetectorTest.cpp - Concurrent detection ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/OnlineDetector.h"

#include "detector/LogBuilder.h"
#include "sync/Primitives.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr SyncVar L = makeSyncVar(SyncObjectKind::Mutex, 0x100);
constexpr uint64_t X = 0xfeed0;
constexpr Pc PcA = makePc(1, 1);
constexpr Pc PcB = makePc(2, 2);

TEST(OnlineDetectorTest, MatchesOfflineOnSyntheticTrace) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcA).unlock(L).write(X + 8, PcA);
  B.onThread(1).write(X, PcB).write(X + 8, PcB).lock(L).unlock(L);
  Trace T = B.build();

  RaceReport Offline;
  EXPECT_TRUE(detectRaces(T, Offline));

  RaceReport Online;
  OnlineDetector D(16, Online);
  for (ThreadId Tid = 0; Tid != T.PerThread.size(); ++Tid)
    D.writeChunk(Tid, T.PerThread[Tid].data(), T.PerThread[Tid].size());
  EXPECT_TRUE(D.finish());
  EXPECT_EQ(D.eventsProcessed(), T.totalEvents());
  EXPECT_EQ(Online.keys(), Offline.keys());
}

TEST(OnlineDetectorTest, HandlesOutOfOrderChunkArrival) {
  LogBuilder B(16);
  B.onThread(0).lock(L).write(X, PcA).unlock(L);
  B.onThread(1).lock(L).write(X, PcB).unlock(L);
  Trace T = B.build();

  RaceReport Report;
  OnlineDetector D(16, Report);
  // Thread 1's chunk (which must be processed second) arrives first.
  D.writeChunk(1, T.PerThread[1].data(), T.PerThread[1].size());
  D.writeChunk(0, T.PerThread[0].data(), T.PerThread[0].size());
  EXPECT_TRUE(D.finish());
  EXPECT_EQ(Report.numStaticRaces(), 0u);
}

TEST(OnlineDetectorTest, ReportsInconsistentStream) {
  LogBuilder B(1);
  B.onThread(0).acquire(L); // ts 1
  B.onThread(0).acquire(L); // ts 2
  Trace T = B.build();
  RaceReport Report;
  OnlineDetector D(1, Report);
  // Deliver only the ts=2 event: ts=1 never arrives.
  D.writeChunk(0, T.PerThread[0].data() + 1, 1);
  EXPECT_FALSE(D.finish());
}

TEST(OnlineDetectorTest, FinishIsIdempotent) {
  RaceReport Report;
  OnlineDetector D(16, Report);
  EXPECT_TRUE(D.finish());
  EXPECT_TRUE(D.finish());
}

TEST(OnlineDetectorTest, WorksAsLiveRuntimeSink) {
  // §4.4 / §7: attach the online detector directly as the Runtime's log
  // sink and find a race while the program runs.
  RaceReport Report;
  OnlineDetector D(64, Report);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.TimestampCounters = 64;
  Config.ThreadBufferRecords = 16; // Small chunks: exercise streaming.
  Runtime RT(Config, &D);
  FunctionId F = RT.registry().registerFunction("body");
  uint64_t Racy = 0;
  uint64_t Guarded = 0;
  Mutex M;
  {
    ThreadContext Main(RT);
    Thread A(RT, Main, [&](ThreadContext &TC) {
      for (int I = 0; I != 200; ++I)
        TC.run(F, [&](auto &T) {
          T.store(&Racy, uint64_t{1}, 10);
          M.lock(TC);
          T.store(&Guarded, uint64_t{1}, 11);
          M.unlock(TC);
        });
    });
    Thread B(RT, Main, [&](ThreadContext &TC) {
      for (int I = 0; I != 200; ++I)
        TC.run(F, [&](auto &T) {
          T.store(&Racy, uint64_t{2}, 20);
          M.lock(TC);
          T.store(&Guarded, uint64_t{2}, 21);
          M.unlock(TC);
        });
    });
    A.join(Main);
    B.join(Main);
  }
  EXPECT_TRUE(D.finish());
  EXPECT_TRUE(Report.contains(makePc(F, 10), makePc(F, 20)));
  EXPECT_FALSE(Report.contains(makePc(F, 11), makePc(F, 21)));
}

} // namespace
