//===-- tests/HarnessTest.cpp - Experiment harness and table printers ------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Tables.h"

#include "support/TableFormatter.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace literace;

namespace {

TEST(TableFormatterTest, AlignsColumnsAndUnderlinesHeader) {
  TableFormatter Table("T");
  Table.addRow({"Name", "Value"});
  Table.addRow({"a", "1"});
  Table.addRow({"longer", "22"});
  std::string Out = Table.str();
  EXPECT_NE(Out.find("== T =="), std::string::npos);
  EXPECT_NE(Out.find("Name    Value"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(TableFormatterTest, Formatters) {
  EXPECT_EQ(TableFormatter::percent(0.714), "71.4%");
  EXPECT_EQ(TableFormatter::percent(0.018, 1), "1.8%");
  EXPECT_EQ(TableFormatter::times(2.4), "2.40x");
  EXPECT_EQ(TableFormatter::num(3.14159, 2), "3.14");
}

TEST(TableFormatterTest, SeparatorRendersRule) {
  TableFormatter Table;
  Table.addRow({"h"});
  Table.addSeparator();
  Table.addRow({"x"});
  std::string Out = Table.str();
  EXPECT_NE(Out.find("-"), std::string::npos);
}

TEST(ValidateManifestTest, DetectsFamiliesBySitePairs) {
  RaceReport Report;
  RaceSighting S;
  S.FirstPc = 10;
  S.SecondPc = 20;
  Report.record(S);

  std::vector<SeededRaceSpec> Manifest;
  Manifest.push_back({"found", {10, 20, 30}, false});
  Manifest.push_back({"missing", {40, 50}, false});
  auto [Detected, AllWithin] = validateAgainstManifest(Report, Manifest);
  EXPECT_EQ(Detected, 1u);
  EXPECT_TRUE(AllWithin);
}

TEST(ValidateManifestTest, FlagsRacesOutsideEveryFamily) {
  RaceReport Report;
  RaceSighting S;
  S.FirstPc = 10;
  S.SecondPc = 99; // 99 is in no family.
  Report.record(S);
  std::vector<SeededRaceSpec> Manifest;
  Manifest.push_back({"family", {10, 20}, false});
  auto [Detected, AllWithin] = validateAgainstManifest(Report, Manifest);
  EXPECT_EQ(Detected, 0u);
  EXPECT_FALSE(AllWithin);
}

TEST(ValidateManifestTest, BothSitesMustBeInTheSameFamily) {
  RaceReport Report;
  RaceSighting S;
  S.FirstPc = 10;
  S.SecondPc = 40; // Sites from two different families.
  Report.record(S);
  std::vector<SeededRaceSpec> Manifest;
  Manifest.push_back({"a", {10, 20}, false});
  Manifest.push_back({"b", {40, 50}, false});
  auto [Detected, AllWithin] = validateAgainstManifest(Report, Manifest);
  EXPECT_EQ(Detected, 0u);
  EXPECT_FALSE(AllWithin);
}

TEST(ParamsFromEnvTest, ReadsScaleAndSeed) {
  setenv("LITERACE_SCALE", "0.25", 1);
  setenv("LITERACE_SEED", "777", 1);
  WorkloadParams P = paramsFromEnv();
  EXPECT_DOUBLE_EQ(P.Scale, 0.25);
  EXPECT_EQ(P.Seed, 777u);
  unsetenv("LITERACE_SCALE");
  unsetenv("LITERACE_SEED");
  WorkloadParams Default = paramsFromEnv();
  EXPECT_DOUBLE_EQ(Default.Scale, 1.0);

  setenv("LITERACE_REPEATS", "3", 1);
  EXPECT_EQ(repeatsFromEnv(1), 3u);
  unsetenv("LITERACE_REPEATS");
  EXPECT_EQ(repeatsFromEnv(2), 2u);
}

TEST(DetectionExperimentTest, ProducesSaneAggregates) {
  WorkloadParams Params;
  Params.Scale = 0.05;
  DetectionResult R =
      runDetectionExperiment(WorkloadKind::Channel, Params, 1);

  EXPECT_EQ(R.Benchmark, "Dryad Channel");
  EXPECT_TRUE(R.LogConsistent);
  EXPECT_GT(R.MemOps, 0u);
  EXPECT_GT(R.SyncOps, 0u);
  EXPECT_GT(R.NumFunctions, 5u);
  EXPECT_GT(R.NumThreads, 5u);
  EXPECT_EQ(R.StaticTotal, R.RareTotal + R.FrequentTotal);
  EXPECT_EQ(R.SeededDetected, R.SeededTotal);
  EXPECT_TRUE(R.AllDetectedWithinSeededSites);

  ASSERT_EQ(R.Samplers.size(), 7u);
  for (const SamplerOutcome &S : R.Samplers) {
    EXPECT_GE(S.DetectionRate, 0.0);
    EXPECT_LE(S.DetectionRate, 1.0);
    EXPECT_GE(S.EffectiveSamplingRate, 0.0);
    EXPECT_LE(S.EffectiveSamplingRate, 1.0);
    EXPECT_LE(S.StaticFound, R.StaticTotal);
  }
  // ESR sanity: UCP logs almost everything; random samplers hit their
  // configured rates; TL-Ad stays in low single digits.
  EXPECT_GT(R.Samplers[6].EffectiveSamplingRate, 0.9);  // UCP
  EXPECT_NEAR(R.Samplers[4].EffectiveSamplingRate, 0.10, 0.02);
  EXPECT_NEAR(R.Samplers[5].EffectiveSamplingRate, 0.25, 0.03);
  EXPECT_LT(R.Samplers[0].EffectiveSamplingRate, 0.2); // TL-Ad
}

TEST(DetectionExperimentTest, RepeatsAggregateMedians) {
  WorkloadParams Params;
  Params.Scale = 0.05;
  DetectionResult R =
      runDetectionExperiment(WorkloadKind::ConcRTMessaging, Params, 3);
  EXPECT_TRUE(R.LogConsistent);
  EXPECT_EQ(R.SeededDetected, R.SeededTotal);
  EXPECT_EQ(R.StaticTotal, R.RareTotal + R.FrequentTotal);
}

TEST(OverheadExperimentTest, MeasuresAllConfigurations) {
  WorkloadParams Params;
  Params.Scale = 0.05;
  OverheadRow Row = runOverheadExperiment(WorkloadKind::LKRHash, Params, 1,
                                          ::testing::TempDir());
  EXPECT_EQ(Row.Benchmark, "LKRHash");
  EXPECT_GT(Row.BaselineSec, 0.0);
  EXPECT_GT(Row.DispatchOnlySec, 0.0);
  EXPECT_GT(Row.SyncLoggingSec, 0.0);
  EXPECT_GT(Row.LiteRaceSec, 0.0);
  EXPECT_GT(Row.FullLoggingSec, 0.0);
  // Full logging writes strictly more than LiteRace (same sync ops, all
  // memory ops instead of a sample).
  EXPECT_GT(Row.FullLogBytes, Row.LiteRaceLogBytes);
  EXPECT_GT(Row.LiteRaceLogBytes, 0u);
  EXPECT_GT(Row.fullLogMBps(), 0.0);
  EXPECT_GE(Row.liteRaceSlowdown(), 0.5); // Sanity, not a perf assertion.
}

TEST(TablePrintersTest, RenderWithoutCrashing) {
  WorkloadParams Params;
  Params.Scale = 0.05;
  std::vector<DetectionResult> Results;
  Results.push_back(
      runDetectionExperiment(WorkloadKind::Channel, Params, 1));
  // Printers write to stdout; gtest captures it. We only require that
  // they do not crash and produce non-trivial output.
  ::testing::internal::CaptureStdout();
  printTable2(Results);
  printTable3(Results);
  printFigure4(Results);
  printFigure5(Results);
  printTable4(Results);
  std::string Out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(Out.find("Table 2"), std::string::npos);
  EXPECT_NE(Out.find("TL-Ad"), std::string::npos);
  EXPECT_NE(Out.find("Dryad Channel"), std::string::npos);
  EXPECT_NE(Out.find("Figure 5"), std::string::npos);

  std::vector<OverheadRow> Rows;
  OverheadRow Row;
  Row.Benchmark = "LKRHash";
  Row.BaselineSec = 1.0;
  Row.DispatchOnlySec = 1.1;
  Row.SyncLoggingSec = 1.8;
  Row.LiteRaceSec = 2.4;
  Row.FullLoggingSec = 14.7;
  Row.LiteRaceLogBytes = 1000000;
  Row.FullLogBytes = 30000000;
  Rows.push_back(Row);
  ::testing::internal::CaptureStdout();
  printTable5(Rows);
  printFigure6(Rows);
  Out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(Out.find("Table 5"), std::string::npos);
  EXPECT_NE(Out.find("2.40x"), std::string::npos);
  EXPECT_NE(Out.find("14.70x"), std::string::npos);
  EXPECT_NE(Out.find("Figure 6"), std::string::npos);
}

} // namespace
