//===-- tests/SyncPrimitivesTest.cpp - Logged synchronization --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Each primitive is checked twice: (1) it really synchronizes (functional
// behavior under std::thread), and (2) the happens-before edges it logs
// make properly synchronized programs detection-silent.
//
//===----------------------------------------------------------------------===//

#include "sync/Primitives.h"

#include "detector/HBDetector.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

/// Test fixture giving each test a FullLogging runtime and helpers to run
/// instrumented threads and detect races over the produced trace.
class SyncPrimitivesTest : public ::testing::Test {
protected:
  SyncPrimitivesTest() : Sink(64) {
    RuntimeConfig Config;
    Config.Mode = RunMode::FullLogging;
    Config.TimestampCounters = 64;
    RT = std::make_unique<Runtime>(Config, &Sink);
    F = RT->registry().registerFunction("body");
  }

  RaceReport detect() {
    RaceReport Report;
    EXPECT_TRUE(detectRaces(Sink.takeTrace(), Report));
    return Report;
  }

  MemorySink Sink;
  std::unique_ptr<Runtime> RT;
  FunctionId F = 0;
};

TEST_F(SyncPrimitivesTest, MutexProtectsCounter) {
  Mutex M;
  uint64_t Counter = 0;
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != 4; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&](ThreadContext &TC) {
            for (unsigned K = 0; K != 1000; ++K) {
              TC.run(F, [&](auto &T) {
                M.lock(TC);
                T.store(&Counter, T.load(&Counter, 1) + 1, 2);
                M.unlock(TC);
              });
            }
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  EXPECT_EQ(Counter, 4000u);
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, MutexGuardReleasesOnScopeExit) {
  Mutex M;
  uint64_t Value = 0;
  {
    ThreadContext Main(*RT);
    Thread Worker(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) {
        MutexGuard Guard(M, TC);
        T.store(&Value, uint64_t{42}, 1);
      });
    });
    Worker.join(Main);
    Main.run(F, [&](auto &T) {
      MutexGuard Guard(M, Main);
      EXPECT_EQ(T.load(&Value, 2), 42u);
    });
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, EventHandoffPublishesData) {
  ManualResetEvent Ready;
  uint64_t Payload = 0;
  {
    ThreadContext Main(*RT);
    Thread Producer(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Payload, uint64_t{7}, 1); });
      Ready.set(TC);
    });
    Thread Consumer(*RT, Main, [&](ThreadContext &TC) {
      Ready.wait(TC);
      TC.run(F, [&](auto &T) { EXPECT_EQ(T.load(&Payload, 2), 7u); });
    });
    Producer.join(Main);
    Consumer.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, EventResetAndIsSet) {
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime Bare(Config, nullptr);
  ThreadContext TC(Bare);
  ManualResetEvent E;
  EXPECT_FALSE(E.isSet());
  E.set(TC);
  EXPECT_TRUE(E.isSet());
  E.wait(TC); // Must not block once set.
  E.reset();
  EXPECT_FALSE(E.isSet());
}

TEST_F(SyncPrimitivesTest, SemaphoreOrdersProducerConsumer) {
  Semaphore Items(0);
  uint64_t Slot = 0;
  {
    ThreadContext Main(*RT);
    Thread Producer(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Slot, uint64_t{99}, 1); });
      Items.release(TC);
    });
    Thread Consumer(*RT, Main, [&](ThreadContext &TC) {
      Items.acquire(TC);
      TC.run(F, [&](auto &T) { EXPECT_EQ(T.load(&Slot, 2), 99u); });
    });
    Producer.join(Main);
    Consumer.join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, SemaphoreCountsPermits) {
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime Bare(Config, nullptr);
  ThreadContext TC(Bare);
  Semaphore Sem(2);
  Sem.acquire(TC);
  Sem.acquire(TC); // Two initial permits.
  Sem.release(TC, 3);
  Sem.acquire(TC);
  Sem.acquire(TC);
  Sem.acquire(TC); // Exactly three more.
  SUCCEED();
}

TEST_F(SyncPrimitivesTest, BarrierOrdersPhases) {
  constexpr unsigned Workers = 3;
  Barrier Phase(Workers);
  uint64_t Cells[Workers] = {};
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != Workers; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&, I](ThreadContext &TC) {
            // Phase 1: write own cell. Phase 2: read everyone's.
            TC.run(F, [&](auto &T) {
              T.store(&Cells[I], uint64_t{I + 1}, 1);
            });
            Phase.arriveAndWait(TC);
            TC.run(F, [&](auto &T) {
              uint64_t Sum = 0;
              for (unsigned K = 0; K != Workers; ++K)
                Sum += T.load(&Cells[K], 2);
              EXPECT_EQ(Sum, 1u + 2u + 3u);
            });
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, BarrierIsReusableAcrossGenerations) {
  constexpr unsigned Workers = 2;
  constexpr unsigned Rounds = 50;
  Barrier Phase(Workers);
  uint64_t Token = 0;
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != Workers; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&, I](ThreadContext &TC) {
            for (unsigned Round = 0; Round != Rounds; ++Round) {
              // Alternate the writer each round; everyone reads after.
              if (Round % Workers == I)
                TC.run(F, [&](auto &T) {
                  T.store(&Token, uint64_t{Round}, 1);
                });
              Phase.arriveAndWait(TC);
              TC.run(F, [&](auto &T) {
                EXPECT_EQ(T.load(&Token, 2), Round);
              });
              Phase.arriveAndWait(TC);
            }
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, ThreadForkJoinOrdersParentAndChild) {
  uint64_t Before = 0, After = 0;
  {
    ThreadContext Main(*RT);
    Main.run(F, [&](auto &T) { T.store(&Before, uint64_t{1}, 1); });
    Thread Child(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) {
        EXPECT_EQ(T.load(&Before, 2), 1u); // Sees pre-fork write.
        T.store(&After, uint64_t{2}, 3);
      });
    });
    Child.join(Main);
    Main.run(F, [&](auto &T) {
      EXPECT_EQ(T.load(&After, 4), 2u); // Sees child's write after join.
    });
  }
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, UnjoinedSiblingWritesAreRaces) {
  uint64_t Cell = 0;
  {
    ThreadContext Main(*RT);
    Thread A(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Cell, uint64_t{1}, 10); });
    });
    Thread B(*RT, Main, [&](ThreadContext &TC) {
      TC.run(F, [&](auto &T) { T.store(&Cell, uint64_t{2}, 20); });
    });
    A.join(Main);
    B.join(Main);
  }
  RaceReport R = detect();
  EXPECT_EQ(R.numStaticRaces(), 1u);
  EXPECT_TRUE(R.contains(makePc(F, 10), makePc(F, 20)));
}

TEST_F(SyncPrimitivesTest, AtomicCounterIsExactAndSilent) {
  AtomicU64 Counter(0);
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != 4; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&](ThreadContext &TC) {
            for (unsigned K = 0; K != 2000; ++K)
              Counter.fetchAdd(TC, 1);
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  EXPECT_EQ(Counter.peek(), 8000u);
  EXPECT_EQ(detect().numStaticRaces(), 0u);
}

TEST_F(SyncPrimitivesTest, CasPublishesLikeALock) {
  // A hand-rolled spinlock over compareExchange (§4.2's motivating case).
  AtomicU64 SpinFlag(0);
  uint64_t Guarded = 0;
  {
    ThreadContext Main(*RT);
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned I = 0; I != 3; ++I)
      Threads.push_back(std::make_unique<Thread>(
          *RT, Main, [&](ThreadContext &TC) {
            for (unsigned K = 0; K != 100; ++K) {
              uint64_t Expected = 0;
              while (!SpinFlag.compareExchange(TC, Expected, 1)) {
                Expected = 0;
                std::this_thread::yield();
              }
              TC.run(F, [&](auto &T) {
                T.store(&Guarded, T.load(&Guarded, 1) + 1, 2);
              });
              SpinFlag.store(TC, 0);
            }
          }));
    for (auto &Th : Threads)
      Th->join(Main);
  }
  EXPECT_EQ(Guarded, 300u);
  EXPECT_EQ(detect().numStaticRaces(), 0u)
      << "without the §4.2 timestamping critical section this would "
         "report hundreds of false races";
}

TEST_F(SyncPrimitivesTest, AtomicExchangeAndLoad) {
  RuntimeConfig Config;
  Config.Mode = RunMode::Baseline;
  Runtime Bare(Config, nullptr);
  ThreadContext TC(Bare);
  AtomicU64 Cell(5);
  EXPECT_EQ(Cell.load(TC), 5u);
  EXPECT_EQ(Cell.exchange(TC, 9), 5u);
  EXPECT_EQ(Cell.peek(), 9u);
  uint64_t Expected = 3;
  EXPECT_FALSE(Cell.compareExchange(TC, Expected, 11));
  EXPECT_EQ(Expected, 9u); // Updated with the observed value.
  EXPECT_TRUE(Cell.compareExchange(TC, Expected, 11));
  EXPECT_EQ(Cell.peek(), 11u);
}

TEST_F(SyncPrimitivesTest, MutexTimestampPlacementOrdersCriticalSections) {
  // Direct check of §4.2: the unlock timestamp is smaller than the next
  // lock's timestamp on the same mutex, in the log.
  Mutex M;
  {
    ThreadContext Main(*RT);
    Thread A(*RT, Main, [&](ThreadContext &TC) {
      for (int I = 0; I != 200; ++I) {
        M.lock(TC);
        M.unlock(TC);
      }
    });
    Thread B(*RT, Main, [&](ThreadContext &TC) {
      for (int I = 0; I != 200; ++I) {
        M.lock(TC);
        M.unlock(TC);
      }
    });
    A.join(Main);
    B.join(Main);
  }
  Trace T = Sink.takeTrace();
  // Collect this mutex's events; timestamps must alternate ACQ/REL in
  // strictly increasing order.
  std::vector<std::pair<uint64_t, EventKind>> Ops;
  for (const auto &Stream : T.PerThread)
    for (const EventRecord &R : Stream)
      if (R.Addr == M.syncVar() && isSyncKind(R.Kind))
        Ops.emplace_back(R.Ts, R.Kind);
  std::sort(Ops.begin(), Ops.end());
  ASSERT_EQ(Ops.size(), 800u);
  for (size_t I = 0; I != Ops.size(); ++I) {
    EXPECT_EQ(Ops[I].second,
              I % 2 ? EventKind::Release : EventKind::Acquire)
        << "critical sections must serialize as ACQ,REL,ACQ,REL,...";
  }
}

} // namespace
