//===-- tests/RacePairsTest.cpp - Race/no-race ground-truth pairs ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Minimal program pairs — one trace with a race, one differing only in the
// synchronization that removes it — pushed through EVERY detector backend
// (serial HB, sharded HB, FastTrack, and the online sink), asserting the
// exact verdict on each. Each pair isolates one happens-before edge kind:
// mutexes, release/acquire message passing, fork, join, and allocator
// recycling. The suite is the detectors' ground-truth contract: a backend
// that diverges on one of these six-event traces is wrong, full stop.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "detector/LogBuilder.h"
#include "detector/OnlineDetector.h"
#include "detector/ShardedDetector.h"

#include <gtest/gtest.h>

using namespace literace;

namespace {

constexpr unsigned Counters = 16;
constexpr SyncVar M = makeSyncVar(SyncObjectKind::Mutex, 0x100);
constexpr SyncVar Chan = makeSyncVar(SyncObjectKind::User, 0x200);
constexpr SyncVar Fork = makeSyncVar(SyncObjectKind::ThreadFork, 0x300);
constexpr SyncVar Exit = makeSyncVar(SyncObjectKind::ThreadExit, 0x400);
constexpr SyncVar Page = makeSyncVar(SyncObjectKind::Page, 0x500);
constexpr uint64_t X = 0xabc0;
constexpr Pc PcA = makePc(1, 1);
constexpr Pc PcB = makePc(2, 2);

/// Runs \p T through all four backends. Asserts they agree with each
/// other, and returns the serial verdict: the set of static race keys.
std::set<StaticRaceKey> verdictAllBackends(const Trace &T) {
  RaceReport Serial;
  EXPECT_TRUE(detectRaces(T, Serial)) << "serial replay inconsistent";

  RaceReport Sharded;
  DetectorOptions Opts;
  Opts.Shards = 4;
  EXPECT_TRUE(detectRacesSharded(T, Sharded, Opts));
  EXPECT_EQ(Sharded.keys(), Serial.keys()) << "sharded != serial";

  // FastTrack's epoch optimization can keep a different witness pair for
  // the same racy location, so the comparable unit is the address set.
  RaceReport FastTrack;
  EXPECT_TRUE(detectRacesFastTrack(T, FastTrack));
  EXPECT_EQ(FastTrack.racyAddresses(), Serial.racyAddresses())
      << "fasttrack != serial";

  RaceReport Online;
  OnlineDetector D(Counters, Online);
  for (ThreadId Tid = 0; Tid != T.PerThread.size(); ++Tid)
    D.writeChunk(Tid, T.PerThread[Tid].data(), T.PerThread[Tid].size());
  EXPECT_TRUE(D.finish());
  EXPECT_EQ(Online.keys(), Serial.keys()) << "online != serial";

  return Serial.keys();
}

/// The expected verdict of every racy pair member: exactly one static
/// race, between PcA and PcB.
const std::set<StaticRaceKey> OneRaceAB = {makeStaticRaceKey(PcA, PcB)};
const std::set<StaticRaceKey> NoRace = {};

TEST(RacePairsTest, UnsynchronizedWritesRace) {
  LogBuilder B(Counters);
  B.onThread(0).write(X, PcA);
  B.onThread(1).write(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), OneRaceAB);
}

TEST(RacePairsTest, MutexProtectedWritesDoNot) {
  LogBuilder B(Counters);
  B.onThread(0).lock(M).write(X, PcA).unlock(M);
  B.onThread(1).lock(M).write(X, PcB).unlock(M);
  EXPECT_EQ(verdictAllBackends(B.build()), NoRace);
}

TEST(RacePairsTest, WriteThenUnorderedReadRaces) {
  LogBuilder B(Counters);
  B.onThread(0).write(X, PcA);
  B.onThread(1).read(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), OneRaceAB);
}

TEST(RacePairsTest, ReleaseAcquireMessagePassingDoesNot) {
  // The flag-handoff pattern: write, publish (release), observe
  // (acquire), read. Dropping either half of the edge is the racy twin
  // above.
  LogBuilder B(Counters);
  B.onThread(0).write(X, PcA).release(Chan);
  B.onThread(1).acquire(Chan).read(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), NoRace);
}

TEST(RacePairsTest, ReadsNeverRace) {
  LogBuilder B(Counters);
  B.onThread(0).read(X, PcA);
  B.onThread(1).read(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), NoRace);
}

TEST(RacePairsTest, SiblingWritesWithoutJoinRace) {
  // Both children are forked from thread 0 (so each is ordered after the
  // parent) but never ordered against each other.
  LogBuilder B(Counters);
  B.onThread(0).release(Fork).release(makeSyncVar(
      SyncObjectKind::ThreadFork, 0x301));
  B.onThread(1).acquire(Fork).write(X, PcA);
  B.onThread(2)
      .acquire(makeSyncVar(SyncObjectKind::ThreadFork, 0x301))
      .write(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), OneRaceAB);
}

TEST(RacePairsTest, ForkEdgeOrdersParentBeforeChild) {
  LogBuilder B(Counters);
  B.onThread(0).write(X, PcA).release(Fork);
  B.onThread(1).acquire(Fork).write(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), NoRace);
}

TEST(RacePairsTest, ParentWriteAfterSpawnRacesWithChild) {
  // The racy twin of the fork edge: the parent writes AFTER releasing the
  // fork variable, so nothing orders it against the child's write.
  LogBuilder B(Counters);
  B.onThread(0).release(Fork).write(X, PcA);
  B.onThread(1).acquire(Fork).write(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), OneRaceAB);
}

TEST(RacePairsTest, JoinEdgeOrdersChildBeforeParent) {
  LogBuilder B(Counters);
  B.onThread(1).write(X, PcB).release(Exit);
  B.onThread(0).acquire(Exit).write(X, PcA);
  EXPECT_EQ(verdictAllBackends(B.build()), NoRace);
}

TEST(RacePairsTest, MissingJoinAcquireRaces) {
  LogBuilder B(Counters);
  B.onThread(1).write(X, PcB).release(Exit);
  B.onThread(0).write(X, PcA);
  EXPECT_EQ(verdictAllBackends(B.build()), OneRaceAB);
}

TEST(RacePairsTest, RecycledAllocationDoesNotRace) {
  // T0 frees the page; T1's allocation of the same page establishes the
  // edge, so reusing the address is ordered.
  LogBuilder B(Counters);
  B.onThread(0).write(X, PcA).free(Page);
  B.onThread(1).alloc(Page).write(X, PcB);
  EXPECT_EQ(verdictAllBackends(B.build()), NoRace);
}

TEST(RacePairsTest, ReuseWithoutAllocatorEdgeRaces) {
  LogBuilder B(Counters);
  B.onThread(0).write(X, PcA);
  B.onThread(1).write(X, PcB);
  // Same shape as the recycled-allocation pair but with the free/alloc
  // edge removed: the reuse is now a plain unordered conflict.
  EXPECT_EQ(verdictAllBackends(B.build()), OneRaceAB);
}

} // namespace
