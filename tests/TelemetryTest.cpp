//===-- tests/TelemetryTest.cpp - Metrics registry and timeline -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Covers the telemetry subsystem (docs/TELEMETRY.md): exact aggregation
// under concurrent per-thread increments, torn-free snapshots taken while
// writers run, histogram bucket boundaries, the literace.metrics.v1 JSON
// round-trip, the LITERACE_TELEMETRY kill-switch parser, the Chrome
// trace-event validator, and the runtime plane's counter exactness
// (sampled + unsampled == dispatch checks once threads have detached).
//
// This suite is part of the "tsan" tier: it must stay clean under
// -fsanitize=thread, which mechanically checks the registry's lock-free
// slab design.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

#include "harness/DetectionExperiment.h"
#include "runtime/ThreadContext.h"
#include "telemetry/Json.h"
#include "telemetry/Timeline.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace literace;
using namespace literace::telemetry;

namespace {

TEST(TelemetryTest, ConcurrentIncrementsAggregateExactly) {
  MetricsRegistry Registry;
  CounterId Ones = Registry.counter("test.ones");
  CounterId Bulk = Registry.counter("test.bulk");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 200000;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      ThreadSlab &Slab = Registry.threadSlab();
      for (uint64_t I = 0; I != PerThread; ++I) {
        Slab.add(Ones);
        Slab.add(Bulk, 3);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Snap.counter("test.ones"), Threads * PerThread);
  EXPECT_EQ(Snap.counter("test.bulk"), Threads * PerThread * 3);
  EXPECT_EQ(Registry.numSlabs(), Threads);
}

TEST(TelemetryTest, SnapshotDuringUpdatesIsTornFreeAndMonotonic) {
  MetricsRegistry Registry;
  CounterId C = Registry.counter("test.racing");
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Written{0};

  std::thread Writer([&] {
    ThreadSlab &Slab = Registry.threadSlab();
    while (!Stop.load(std::memory_order_relaxed)) {
      Slab.add(C);
      Written.fetch_add(1, std::memory_order_release);
    }
  });

  // Each observed value must be a real prefix of the writer's work: no
  // torn reads (64-bit atomic cells), never ahead of what was completed,
  // and monotone across successive snapshots.
  uint64_t Last = 0;
  for (int I = 0; I != 200; ++I) {
    uint64_t Value = Registry.snapshot().counter("test.racing");
    uint64_t UpperBound = Written.load(std::memory_order_acquire) + 1;
    EXPECT_LE(Value, UpperBound);
    EXPECT_GE(Value, Last);
    Last = Value;
  }
  Stop.store(true);
  Writer.join();
  EXPECT_EQ(Registry.snapshot().counter("test.racing"),
            Written.load(std::memory_order_relaxed));
}

TEST(TelemetryTest, HistogramBucketBoundaries) {
  // Bucket 0 holds the value 0; bucket b holds 2^(b-1) <= v < 2^b.
  EXPECT_EQ(histogramBucket(0), 0u);
  EXPECT_EQ(histogramBucket(1), 1u);
  EXPECT_EQ(histogramBucket(2), 2u);
  EXPECT_EQ(histogramBucket(3), 2u);
  EXPECT_EQ(histogramBucket(4), 3u);
  EXPECT_EQ(histogramBucket(1023), 10u);
  EXPECT_EQ(histogramBucket(1024), 11u);
  EXPECT_EQ(histogramBucket(UINT64_MAX), HistogramBuckets - 1);

  EXPECT_EQ(histogramBucketUpperBound(0), 0u);
  EXPECT_EQ(histogramBucketUpperBound(1), 1u);
  EXPECT_EQ(histogramBucketUpperBound(11), 2047u);
  EXPECT_EQ(histogramBucketUpperBound(HistogramBuckets - 1), UINT64_MAX);

  MetricsRegistry Registry;
  HistogramId H = Registry.histogram("test.hist");
  ThreadSlab &Slab = Registry.threadSlab();
  Slab.record(H, 0);
  Slab.record(H, 1);
  Slab.record(H, 2);
  Slab.record(H, 3);
  Slab.record(H, 1024);
  MetricsSnapshot Snap = Registry.snapshot();
  const HistogramValue *Value = Snap.histogram("test.hist");
  ASSERT_NE(Value, nullptr);
  EXPECT_EQ(Value->Count, 5u);
  EXPECT_EQ(Value->Sum, 1030u);
  EXPECT_EQ(Value->Buckets[0], 1u);
  EXPECT_EQ(Value->Buckets[1], 1u);
  EXPECT_EQ(Value->Buckets[2], 2u);
  EXPECT_EQ(Value->Buckets[11], 1u);
  EXPECT_DOUBLE_EQ(Value->mean(), 206.0);
  EXPECT_EQ(Value->quantileUpperBound(0.5), 3u);
  EXPECT_EQ(Value->quantileUpperBound(0.99), 2047u);
}

TEST(TelemetryTest, GaugeTakesMaxAcrossThreads) {
  MetricsRegistry Registry;
  GaugeId G = Registry.gaugeMax("test.highwater");
  std::vector<std::thread> Workers;
  for (uint64_t T = 1; T <= 4; ++T)
    Workers.emplace_back([&Registry, G, T] {
      ThreadSlab &Slab = Registry.threadSlab();
      Slab.gaugeMax(G, T * 10);
      Slab.gaugeMax(G, T); // Lower value must not regress the gauge.
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Registry.snapshot().gauge("test.highwater"), 40u);
}

TEST(TelemetryTest, JsonSchemaRoundTrip) {
  MetricsRegistry Registry;
  CounterId C = Registry.counter("plane.counter");
  GaugeId G = Registry.gaugeMax("plane.gauge");
  HistogramId H = Registry.histogram("plane.hist");
  ThreadSlab &Slab = Registry.threadSlab();
  Slab.add(C, 42);
  Slab.gaugeMax(G, 7);
  Slab.record(H, 100);
  Slab.record(H, 5000);

  MetricsSnapshot Snap = Registry.snapshot();
  std::optional<MetricsSnapshot> Parsed =
      MetricsSnapshot::fromJson(Snap.toJson());
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->counter("plane.counter"), 42u);
  EXPECT_EQ(Parsed->gauge("plane.gauge"), 7u);
  const HistogramValue *Hist = Parsed->histogram("plane.hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_EQ(Hist->Count, 2u);
  EXPECT_EQ(Hist->Sum, 5100u);
  EXPECT_EQ(Hist->Buckets, Snap.histogram("plane.hist")->Buckets);
  // Serialization is deterministic, so the round trip is a fixed point.
  EXPECT_EQ(Parsed->toJson(), Snap.toJson());
}

TEST(TelemetryTest, JsonRejectsMalformedAndForeignDocuments) {
  EXPECT_FALSE(MetricsSnapshot::fromJson("").has_value());
  EXPECT_FALSE(MetricsSnapshot::fromJson("{").has_value());
  EXPECT_FALSE(MetricsSnapshot::fromJson("[1,2]").has_value());
  EXPECT_FALSE(MetricsSnapshot::fromJson("{\"counters\": {}}").has_value());
  EXPECT_FALSE(
      MetricsSnapshot::fromJson("{\"schema\": \"somebody.else.v9\"}")
          .has_value());
  // Trailing garbage after a well-formed document is rejected too.
  MetricsSnapshot Empty;
  EXPECT_TRUE(MetricsSnapshot::fromJson(Empty.toJson()).has_value());
  EXPECT_FALSE(MetricsSnapshot::fromJson(Empty.toJson() + "x").has_value());
}

TEST(TelemetryTest, SnapshotMergeAddsCountersAndMaxesGauges) {
  MetricsSnapshot A;
  A.setCounter("c", 10);
  A.setGauge("g", 5);
  MetricsSnapshot B;
  B.setCounter("c", 32);
  B.setCounter("only.b", 1);
  B.setGauge("g", 3);
  A.merge(B);
  EXPECT_EQ(A.counter("c"), 42u);
  EXPECT_EQ(A.counter("only.b"), 1u);
  EXPECT_EQ(A.gauge("g"), 5u);
}

TEST(TelemetryTest, KillSwitchParser) {
  EXPECT_TRUE(parseTelemetryEnabled(nullptr));
  EXPECT_TRUE(parseTelemetryEnabled(""));
  EXPECT_TRUE(parseTelemetryEnabled("on"));
  EXPECT_TRUE(parseTelemetryEnabled("1"));
  EXPECT_FALSE(parseTelemetryEnabled("off"));
  EXPECT_FALSE(parseTelemetryEnabled("OFF"));
  EXPECT_FALSE(parseTelemetryEnabled("0"));
  EXPECT_FALSE(parseTelemetryEnabled("False"));
}

TEST(TelemetryTest, ResolveRegistryPrecedence) {
  MetricsRegistry Override;
  EXPECT_EQ(resolveRegistry(&Override), &Override);
  EXPECT_EQ(resolveRegistry(&Override, /*ForceOff=*/true), nullptr);
  EXPECT_EQ(resolveRegistry(nullptr, /*ForceOff=*/true), nullptr);
}

TEST(TelemetryTest, TraceJsonValidatorAcceptsOurOutputOnly) {
  TraceWriter Writer;
  Writer.nameProcess(1, "runtime \"quoted\"\nname"); // must escape cleanly
  Writer.nameThread(1, 3, "worker");
  TraceEvent Span;
  Span.Name = "burst";
  Span.Cat = "runtime.sampler";
  Span.Phase = 'X';
  Span.TsUs = 10;
  Span.DurUs = 4;
  Span.Pid = 1;
  Span.Tid = 3;
  Span.Args = {{"ops", 17}};
  Writer.add(Span);
  TraceEvent Counter;
  Counter.Name = "memops";
  Counter.Phase = 'C';
  Counter.Pid = 1;
  Counter.Args = {{"logged", 5}};
  Writer.add(Counter);

  std::string Error;
  EXPECT_TRUE(validateChromeTraceJson(Writer.toJson(), &Error)) << Error;

  EXPECT_FALSE(validateChromeTraceJson("not json", &Error));
  EXPECT_FALSE(validateChromeTraceJson("{}", &Error));
  EXPECT_FALSE(validateChromeTraceJson("{\"traceEvents\": 3}", &Error));
  // A complete slice without its duration must be rejected.
  EXPECT_FALSE(validateChromeTraceJson(
      "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 1}]}",
      &Error));
}

TEST(TelemetryTest, RuntimeCountersAreExactOnceThreadsDetach) {
  MetricsRegistry Registry;
  RuntimeConfig Config;
  Config.Mode = RunMode::DispatchOnly;
  Config.Metrics = &Registry;
  Runtime RT(Config, nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  FunctionId Cold = RT.registry().registerFunction("cold");

  constexpr uint64_t Threads = 4;
  constexpr uint64_t Calls = 50000;
  std::vector<std::thread> Workers;
  for (uint64_t T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      ThreadContext TC(RT);
      for (uint64_t I = 0; I != Calls; ++I)
        TC.run(F, [](auto &) {});
      TC.run(Cold, [](auto &) {});
    });
  for (std::thread &W : Workers)
    W.join();

  // Unsampled activations are credited a gap at a time (bulk credit);
  // once every ThreadContext is destroyed the reconciliation makes the
  // split exact: each dispatch check was exactly one of sampled or
  // unsampled, and the total is derived from the two.
  MetricsSnapshot Snap = RT.metricsSnapshot();
  const uint64_t Total = Threads * (Calls + 1);
  EXPECT_EQ(Snap.counter("runtime.sampled_activations") +
                Snap.counter("runtime.unsampled_activations"),
            Total);
  EXPECT_EQ(Snap.counter("runtime.dispatch_checks"), Total);
  EXPECT_GT(Snap.counter("runtime.sampled_activations"), 0u);
  EXPECT_GT(Snap.counter("runtime.unsampled_activations"), 0u);
  EXPECT_EQ(Snap.gauge("runtime.threads"), Threads);
  // The adaptive schedule backed off at least once over 50k calls.
  EXPECT_GT(Snap.counter("runtime.sampler.backoffs"), 0u);
}

TEST(TelemetryTest, DisabledTelemetryLeavesRegistryUntouched) {
  MetricsRegistry Registry;
  RuntimeConfig Config;
  Config.Mode = RunMode::DispatchOnly;
  Config.Metrics = &Registry;
  Config.DisableTelemetry = true;
  Runtime RT(Config, nullptr);
  EXPECT_EQ(RT.metrics(), nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  {
    ThreadContext TC(RT);
    for (int I = 0; I != 1000; ++I)
      TC.run(F, [](auto &) {});
  }
  EXPECT_TRUE(RT.metricsSnapshot().empty());
}

TEST(TelemetryTest, ExperimentRunCarriesAMetricsSnapshot) {
  MetricsRegistry Registry;
  auto W = makeWorkload(WorkloadKind::ConcRTMessaging);
  WorkloadParams Params;
  Params.Scale = 0.05;
  ExperimentRun Run = executeExperiment(*W, Params, &Registry);
  // The harness snapshot and the classic RuntimeStats must agree on the
  // logger plane.
  EXPECT_EQ(Run.Metrics.counter("runtime.memops_logged"),
            Run.Stats.MemOpsLogged);
  EXPECT_EQ(Run.Metrics.counter("runtime.syncops_logged"),
            Run.Stats.SyncOps);
  EXPECT_EQ(Run.Metrics.gauge("runtime.threads"), Run.NumThreads);
  EXPECT_GT(Run.Metrics.counter("runtime.log.flushes"), 0u);
}

TEST(TelemetryTest, TimelineFromTraceValidates) {
  MetricsRegistry Registry;
  auto W = makeWorkload(WorkloadKind::ConcRTMessaging);
  WorkloadParams Params;
  Params.Scale = 0.05;
  ExperimentRun Run = executeExperiment(*W, Params, &Registry);
  TraceWriter Timeline = buildTraceTimeline(Run.TraceData);
  EXPECT_GT(Timeline.size(), 0u);
  std::string Error;
  EXPECT_TRUE(validateChromeTraceJson(Timeline.toJson(), &Error)) << Error;
}

} // namespace
