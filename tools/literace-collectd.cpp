//===-- tools/literace-collectd.cpp - Collection daemon CLI ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Always-on collection daemon (docs/COLLECTOR.md): listens on an AF_UNIX
// socket for v2 segment streams from concurrent `literace-run --connect`
// processes, detects races incrementally per session, and pushes every
// finding through the triage pipeline (dedup by site pair, suppression
// file, per-race rate limit). Live state is served over HTTP/1.0:
// /metrics (Prometheus text exposition), /status and /races (JSON).
//
// Usage:
//   literace-collectd <ingest-socket>
//                     [--http-socket <path>] [--http <port>]
//                     [--port-file <path>] [--shards <n>]
//                     [--suppressions <file>] [--rate-limit <per-sec>]
//                     [--rate-burst <n>] [--exit-after-clients <n>]
//                     [--status-json <path>] [--races-json <path>]
//                     [--quiet]
//
//   --http-socket  serve the HTTP endpoint on a unix socket (tests, local
//                  triage via curl --unix-socket)
//   --http         serve the HTTP endpoint on 127.0.0.1:<port>; 0 picks an
//                  ephemeral port (printed, and written to --port-file)
//   --shards       per-session detection shards (1 = serial; live
//                  mid-session race updates need the serial detector)
//   --suppressions Valgrind-style suppression file (docs/COLLECTOR.md)
//   --rate-limit   per-race emitted updates per second once the burst is
//                  spent (default 1; 0 = unlimited)
//   --rate-burst   per-race burst budget (default 5)
//   --exit-after-clients
//                  exit after this many sessions completed (tests/CI);
//                  without it the daemon runs until SIGINT/SIGTERM
//   --status-json / --races-json
//                  dump the final /status and /races documents to files
//                  at shutdown (CI artifacts)
//   --spool-dir    crash-only operation (docs/ROBUSTNESS.md): journal
//                  every session's raw bytes to this directory before
//                  detection, checkpoint triage state there, and recover
//                  both on the next start. Resumable clients reconnect
//                  across a daemon restart and resume from the journaled
//                  position.
//   --checkpoint-every
//                  triage checkpoint cadence in emitted race updates
//                  (default 64; always checkpoints at session boundaries)
//   --session-timeout-ms
//                  finalize a detached resumable session (client gone,
//                  not reconnecting) after this long (default 30000)
//   --ack-every-bytes
//                  ack journaled progress to resumable clients every N
//                  stream bytes (default 1 MiB; tests lower it)
//   --kill-after-bytes
//                  fault injection for the recovery tests: SIGKILL this
//                  daemon once it has ingested N bytes (counting recovery
//                  replay), exactly like an operator's kill -9
//   --force-spill  test hook: journaled sessions defer every chunk to the
//                  journal replay, exercising the overload spill path
//
// Exit status: 0 when no unsuppressed race was collected, 3 when at least
// one was (matching literace-report), 1/2 on operational errors.
//
//===----------------------------------------------------------------------===//

#include "collector/Collector.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <signal.h>
#include <unistd.h>

using namespace literace;
using namespace literace::collector;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <ingest-socket> [--http-socket <path>] [--http <port>]\n"
      "          [--port-file <path>] [--shards <n>]\n"
      "          [--suppressions <file>] [--rate-limit <per-sec>]\n"
      "          [--rate-burst <n>] [--exit-after-clients <n>]\n"
      "          [--status-json <path>] [--races-json <path>] [--quiet]\n"
      "          [--spool-dir <dir>] [--checkpoint-every <n>]\n"
      "          [--session-timeout-ms <n>] [--ack-every-bytes <n>]\n"
      "          [--kill-after-bytes <n>] [--force-spill]\n",
      Argv0);
  return 2;
}

std::atomic<int> SignalSeen{0};

void onSignal(int Sig) { SignalSeen.store(Sig); }

bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  const bool Ok =
      std::fwrite(Text.data(), 1, Text.size(), File) == Text.size();
  std::fclose(File);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  const std::string IngestPath = Argv[1];
  std::string HttpSocketPath, PortFilePath, SuppressionsPath;
  std::string StatusJsonPath, RacesJsonPath;
  bool HttpTcp = false;
  uint16_t HttpPort = 0;
  unsigned Shards = 1;
  double RateLimit = 1.0, RateBurst = 5.0;
  uint64_t ExitAfterClients = 0;
  bool Quiet = false;
  std::string SpoolDir;
  uint64_t CheckpointEvery = 64;
  uint64_t SessionTimeoutMs = 30000;
  uint64_t AckEveryBytes = 1 << 20;
  uint64_t KillAfterBytes = 0;
  bool ForceSpill = false;

  for (int I = 2; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--http-socket" && I + 1 < Argc) {
      HttpSocketPath = Argv[++I];
    } else if (Arg == "--http" && I + 1 < Argc) {
      HttpTcp = true;
      HttpPort = static_cast<uint16_t>(std::atoi(Argv[++I]));
    } else if (Arg == "--port-file" && I + 1 < Argc) {
      PortFilePath = Argv[++I];
    } else if (Arg == "--shards" && I + 1 < Argc) {
      Shards = static_cast<unsigned>(std::atoi(Argv[++I]));
      if (Shards == 0)
        Shards = 1;
    } else if (Arg == "--suppressions" && I + 1 < Argc) {
      SuppressionsPath = Argv[++I];
    } else if (Arg == "--rate-limit" && I + 1 < Argc) {
      RateLimit = std::atof(Argv[++I]);
    } else if (Arg == "--rate-burst" && I + 1 < Argc) {
      RateBurst = std::atof(Argv[++I]);
    } else if (Arg == "--exit-after-clients" && I + 1 < Argc) {
      ExitAfterClients = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--status-json" && I + 1 < Argc) {
      StatusJsonPath = Argv[++I];
    } else if (Arg == "--races-json" && I + 1 < Argc) {
      RacesJsonPath = Argv[++I];
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--spool-dir" && I + 1 < Argc) {
      SpoolDir = Argv[++I];
    } else if (Arg == "--checkpoint-every" && I + 1 < Argc) {
      CheckpointEvery = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--session-timeout-ms" && I + 1 < Argc) {
      SessionTimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--ack-every-bytes" && I + 1 < Argc) {
      AckEveryBytes = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--kill-after-bytes" && I + 1 < Argc) {
      KillAfterBytes = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--force-spill") {
      ForceSpill = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  SuppressionSet Suppressions;
  if (!SuppressionsPath.empty()) {
    std::string Error;
    if (!Suppressions.loadFile(SuppressionsPath, &Error)) {
      std::fprintf(stderr, "error: bad suppression file '%s': %s\n",
                   SuppressionsPath.c_str(), Error.c_str());
      return 2;
    }
    std::fprintf(stderr, "loaded %zu suppression(s) from %s\n",
                 Suppressions.size(), SuppressionsPath.c_str());
  }

  CollectorConfig Config;
  Config.IngestSocketPath = IngestPath;
  Config.Shards = Shards;
  Config.Suppressions = &Suppressions;
  Config.Triage.RatePerSec = RateLimit;
  Config.Triage.Burst = RateBurst;
  Config.SpoolDir = SpoolDir;
  Config.CheckpointEveryUpdates = CheckpointEvery;
  Config.SessionIdleTimeoutMs = SessionTimeoutMs;
  Config.AckEveryBytes = AckEveryBytes;
  Config.TestForceSpill = ForceSpill;

  CollectorServer Server(std::move(Config));
  if (!Quiet) {
    Server.triage().setEmitter([](const TriagedRace &R, uint64_t Delta) {
      std::fprintf(stderr,
                   "race: fn%u:%u <-> fn%u:%u  x%llu (+%llu) in %llu "
                   "session(s)%s\n",
                   pcFunction(R.Key.first), pcSite(R.Key.first),
                   pcFunction(R.Key.second), pcSite(R.Key.second),
                   static_cast<unsigned long long>(R.DynamicCount),
                   static_cast<unsigned long long>(Delta),
                   static_cast<unsigned long long>(R.Sessions),
                   R.SawWriteWrite ? "  [write/write]" : "");
    });
  }

  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "listening for traces on %s\n", IngestPath.c_str());
  if (!SpoolDir.empty())
    std::fprintf(stderr, "spooling to %s (checkpoint every %llu updates)\n",
                 SpoolDir.c_str(),
                 static_cast<unsigned long long>(CheckpointEvery));

  // Deterministic daemon-kill fault injection: a watcher SIGKILLs this
  // process once the server has ingested N bytes (recovery replay
  // included, so a restarted daemon with a lower threshold dies again at
  // a reproducible point). No handler runs — recovery must work from
  // whatever the journals and checkpoint held at that instant.
  if (KillAfterBytes != 0) {
    std::thread([&Server, KillAfterBytes] {
      for (;;) {
        if (Server.bytesIngested() >= KillAfterBytes)
          ::kill(::getpid(), SIGKILL);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }).detach();
  }

  if (!HttpSocketPath.empty()) {
    if (!Server.serveHttpUnix(HttpSocketPath, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving http on %s\n", HttpSocketPath.c_str());
  }
  if (HttpTcp) {
    uint16_t Bound = 0;
    if (!Server.serveHttpTcp(HttpPort, &Bound, &Error)) {
      std::fprintf(stderr, "error: cannot serve http: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving http on 127.0.0.1:%u\n", Bound);
    if (!PortFilePath.empty())
      writeFile(PortFilePath, std::to_string(Bound) + "\n");
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // Poll instead of blocking in waitForSessions(): a signal must win the
  // race against a client that never finishes.
  for (;;) {
    if (SignalSeen.load() != 0)
      break;
    if (ExitAfterClients != 0 &&
        Server.sessionsCompleted() >= ExitAfterClients)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (const int Sig = SignalSeen.load())
    std::fprintf(stderr, "signal %d: shutting down\n", Sig);

  Server.stop();

  if (!StatusJsonPath.empty() && !writeFile(StatusJsonPath, Server.statusJson()))
    std::fprintf(stderr, "warning: cannot write '%s'\n",
                 StatusJsonPath.c_str());
  if (!RacesJsonPath.empty() && !writeFile(RacesJsonPath, Server.racesJson()))
    std::fprintf(stderr, "warning: cannot write '%s'\n",
                 RacesJsonPath.c_str());

  // Final triage summary, literace-report style.
  const std::vector<TriagedRace> Races = Server.triage().races();
  uint64_t Unsuppressed = 0;
  for (const TriagedRace &R : Races) {
    if (R.Suppressed)
      continue;
    ++Unsuppressed;
    std::fprintf(stderr, "  fn%u:%u <-> fn%u:%u  x%llu  in %llu session(s)%s\n",
                 pcFunction(R.Key.first), pcSite(R.Key.first),
                 pcFunction(R.Key.second), pcSite(R.Key.second),
                 static_cast<unsigned long long>(R.DynamicCount),
                 static_cast<unsigned long long>(R.Sessions),
                 R.SawWriteWrite ? "  [write/write]" : "");
  }
  std::fprintf(stderr,
               "collected %llu session(s): %zu distinct race(s), %llu "
               "unsuppressed, %llu sighting(s), %llu suppressed "
               "sighting(s), %llu rate-limited update(s)\n",
               static_cast<unsigned long long>(Server.sessionsCompleted()),
               Races.size(),
               static_cast<unsigned long long>(Unsuppressed),
               static_cast<unsigned long long>(
                   Server.triage().totalSightings()),
               static_cast<unsigned long long>(
                   Server.triage().suppressedSightings()),
               static_cast<unsigned long long>(
                   Server.triage().rateLimitedUpdates()));
  const std::string Used = Suppressions.describeUsed();
  if (!Used.empty())
    std::fprintf(stderr, "%s", Used.c_str());
  if (!SpoolDir.empty())
    std::fprintf(stderr, "durability: %llu checkpoint(s) written\n",
                 static_cast<unsigned long long>(
                     Server.checkpointsWritten()));

  return Unsuppressed != 0 ? 3 : 0;
}
