//===-- tools/literace-fuzz.cpp - Schedule-perturbation fuzzer ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Runs a workload under the deterministic schedule-perturbation engine
// (src/fuzz) across a range of seeds and reports per-family × per-sampler
// recall, backend agreement, and the canonical trace digest of every
// seed. A failing seed from CI is replayed exactly with --seed; the run
// is bit-reproducible because the engine serializes all threads on one
// token and every scheduling decision is a deterministic function of
// (seed, perturbation-point sequence).
//
// Usage:
//   literace-fuzz <workload> [--seed <n> | --seeds <count>]
//                 [--first-seed <n>] [--scale <x>] [--json[=PATH]]
//                 [--check-determinism] [--no-cross-check]
//                 [--preempt <p>] [--delay <p>] [--invert <p>]
//
// Exit codes: 0 ok, 2 usage error, 4 recall/validation failure (a log was
// inconsistent, a race escaped the seeded manifest, or backends
// disagreed), 5 determinism mismatch (same seed produced a different
// canonical trace or race report).
//
//===----------------------------------------------------------------------===//

#include "harness/FuzzExperiment.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

using namespace literace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <workload> [--seed <n> | --seeds <count>]\n"
      "          [--first-seed <n>] [--scale <x>] [--json[=PATH]]\n"
      "          [--check-determinism] [--no-cross-check]\n"
      "          [--preempt <p>] [--delay <p>] [--invert <p>]\n"
      "workloads:\n%s\n",
      Argv0, workloadNameList("  ").c_str());
  return 2;
}

std::optional<double> parseDouble(const char *S) {
  char *End = nullptr;
  double V = std::strtod(S, &End);
  if (End == S || *End != '\0')
    return std::nullopt;
  return V;
}

std::optional<uint64_t> parseU64(const char *S) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return std::nullopt;
  return static_cast<uint64_t>(V);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  std::optional<WorkloadKind> Kind = workloadKindByName(argv[1]);
  if (!Kind) {
    std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
    return usage(argv[0]);
  }

  FuzzSweepOptions Opts;
  bool CheckDeterminism = false;
  bool SingleSeed = false;
  bool Json = false;
  std::string JsonPath;

  for (int I = 2; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto takeValue = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--seed") {
      const char *V = takeValue();
      auto N = V ? parseU64(V) : std::nullopt;
      if (!N)
        return usage(argv[0]);
      Opts.FirstSeed = *N;
      Opts.NumSeeds = 1;
      SingleSeed = true;
    } else if (Arg == "--seeds") {
      const char *V = takeValue();
      auto N = V ? parseU64(V) : std::nullopt;
      if (!N || *N == 0)
        return usage(argv[0]);
      Opts.NumSeeds = static_cast<unsigned>(*N);
    } else if (Arg == "--first-seed") {
      const char *V = takeValue();
      auto N = V ? parseU64(V) : std::nullopt;
      if (!N)
        return usage(argv[0]);
      Opts.FirstSeed = *N;
    } else if (Arg == "--scale") {
      const char *V = takeValue();
      auto X = V ? parseDouble(V) : std::nullopt;
      if (!X || *X <= 0.0)
        return usage(argv[0]);
      Opts.Scale = *X;
    } else if (Arg == "--preempt") {
      const char *V = takeValue();
      auto P = V ? parseDouble(V) : std::nullopt;
      if (!P || *P < 0.0 || *P > 1.0)
        return usage(argv[0]);
      Opts.Perturb.PreemptProb = *P;
    } else if (Arg == "--delay") {
      const char *V = takeValue();
      auto P = V ? parseDouble(V) : std::nullopt;
      if (!P || *P < 0.0 || *P > 1.0)
        return usage(argv[0]);
      Opts.Perturb.DelayProb = *P;
    } else if (Arg == "--invert") {
      const char *V = takeValue();
      auto P = V ? parseDouble(V) : std::nullopt;
      if (!P || *P < 0.0 || *P > 1.0)
        return usage(argv[0]);
      Opts.Perturb.InvertProb = *P;
    } else if (Arg == "--check-determinism") {
      CheckDeterminism = true;
    } else if (Arg == "--no-cross-check") {
      Opts.CrossCheckBackends = false;
    } else if (Arg == "--json" || Arg.rfind("--json=", 0) == 0) {
      Json = true;
      if (Arg.size() > 7)
        JsonPath = Arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  if (CheckDeterminism) {
    FuzzDeterminismCheck Check =
        checkFuzzDeterminism(*Kind, Opts.FirstSeed, Opts);
    std::printf("determinism seed=%llu: digests %08x/%08x, races %zu/%zu "
                "=> %s\n",
                static_cast<unsigned long long>(Opts.FirstSeed),
                Check.DigestA, Check.DigestB, Check.RacesA, Check.RacesB,
                Check.Identical ? "identical" : "MISMATCH");
    if (!Check.Identical)
      return 5;
  }

  FuzzResult Result = runFuzzSweep(*Kind, Opts);
  printFuzzResult(Result);

  if (Json) {
    if (JsonPath.empty()) {
      writeFuzzJson(Result, std::cout);
    } else {
      std::ofstream Out(JsonPath);
      if (!Out) {
        std::fprintf(stderr, "cannot write '%s'\n", JsonPath.c_str());
        return 2;
      }
      writeFuzzJson(Result, Out);
    }
  }

  if (!Result.AllLogsConsistent) {
    std::fprintf(stderr, "FAIL: a replay found its log inconsistent\n");
    return 4;
  }
  if (!Result.AllWithinSeededSites) {
    std::fprintf(stderr,
                 "FAIL: a detected race lies outside every seeded family\n");
    return 4;
  }
  if (!Result.AllBackendsAgree) {
    std::fprintf(stderr, "FAIL: detector backends disagreed\n");
    return 4;
  }
  // In a sweep, every seeded family must manifest on at least one seed;
  // a single-seed repro run only reports.
  if (!SingleSeed) {
    bool AllManifested = true;
    for (const FuzzFamilyRecall &F : Result.Families)
      if (F.SeedsManifested == 0) {
        std::fprintf(stderr, "FAIL: family '%s' never manifested\n",
                     F.Label.c_str());
        AllManifested = false;
      }
    if (!AllManifested) {
      std::vector<uint64_t> Weak = Result.weakestSeeds();
      for (uint64_t Seed : Weak)
        std::fprintf(stderr, "repro: --seed %llu\n",
                     static_cast<unsigned long long>(Seed));
      return 4;
    }
  }
  return 0;
}
