//===-- tools/literace-fsck.cpp - Trace integrity checker -------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Integrity checker for recorded logs (docs/ROBUSTNESS.md): walks the
// file the same way the salvage reader does and reports what a detection
// run would actually see — per-segment CRC status, the footer, per-thread
// coverage, and the recovery percentage. Use it to answer "how much of
// the crashed run survived?" before spending detector time on it.
//
// Usage:
//   literace-fsck <log.bin> [--segments] [--quiet]
//   literace-fsck --spool <dir> [--quiet]
//
//   --segments  also print the per-frame inventory (v2 logs)
//   --spool     audit a collector spool directory instead of one log:
//               validates the triage checkpoint, salvages every session
//               journal through the same reader the daemon's recovery
//               uses, and cross-checks the two (journals the checkpoint
//               tracks, journal sizes vs. checkpointed positions). This
//               answers "what would a daemon restarted on this directory
//               recover?" without starting one.
//   --quiet     suppress everything except errors; rely on the exit code
//
// Exit codes:
//   0  clean: every byte accounted for, clean shutdown / consistent spool
//   4  recoverable: a coherent partial state was salvaged (some loss)
//   1  unreadable: not a literace log / no recoverable spool state
//   2  usage error
//
//===----------------------------------------------------------------------===//

#include "collector/Checkpoint.h"
#include "runtime/EventLog.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/stat.h>

using namespace literace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <log.bin> [--segments] [--quiet]\n"
               "       %s --spool <dir> [--quiet]\n",
               Argv0, Argv0);
  return 2;
}

const char *yesNo(bool B) { return B ? "yes" : "no"; }

/// Audits a collector spool directory (docs/ROBUSTNESS.md). Returns the
/// process exit code.
int auditSpool(const std::string &Dir, bool Quiet) {
  using namespace literace::collector;

  // 1. The checkpoint: must decode as literace.triage.v1 if present.
  CollectorCheckpoint Ckpt;
  bool HaveCkpt = false;
  bool CkptBad = false;
  std::string Text, CkptError;
  const std::string CkptPath = Dir + "/" + checkpointFileName();
  if (readFileInto(CkptPath, Text)) {
    if (decodeCheckpoint(Text, Ckpt, &CkptError))
      HaveCkpt = true;
    else
      CkptBad = true;
  }
  if (!Quiet) {
    std::printf("%s: collector spool\n", Dir.c_str());
    if (HaveCkpt)
      std::printf("  checkpoint:     ok (%zu race(s), %zu in-flight "
                  "session(s), next id %llu)\n",
                  Ckpt.Races.size(), Ckpt.Sessions.size(),
                  static_cast<unsigned long long>(Ckpt.NextSessionId));
    else if (CkptBad)
      std::printf("  checkpoint:     CORRUPT (%s)\n", CkptError.c_str());
    else
      std::printf("  checkpoint:     absent\n");
  }

  // 2. Every session journal: salvage it the way recovery would.
  const std::vector<std::string> Journals = listJournalFiles(Dir);
  bool AnyLoss = CkptBad;
  bool AnyReadable = HaveCkpt;
  uint64_t TotalEvents = 0;
  for (const std::string &Name : Journals) {
    uint64_t Id = 0, Hi = 0, Lo = 0;
    bool Resumable = false;
    parseJournalFileName(Name, Id, Hi, Lo, Resumable);
    const std::string Path = Dir + "/" + Name;
    struct stat St {};
    const uint64_t Size =
        ::stat(Path.c_str(), &St) == 0 ? static_cast<uint64_t>(St.st_size)
                                       : 0;

    const CheckpointSessionEntry *E = nullptr;
    for (const CheckpointSessionEntry &S : Ckpt.Sessions)
      if (S.Id == Id) {
        E = &S;
        break;
      }
    // A journal the checkpoint does not track is normal (created after
    // the last checkpoint, or the checkpoint is gone) — recovery replays
    // it with zero published counts. A checkpointed size *larger* than
    // the file is not: bytes the daemon acked as durable are missing.
    const bool ShortOfCheckpoint = E && E->JournalBytes > Size;

    const TraceReadResult R = readTrace(Path);
    if (R.readable())
      AnyReadable = true;
    const TraceReadStats &S = R.Stats;
    const uint64_t TotalSegments = S.SegmentsRecovered + S.SegmentsDropped;
    const double Pct =
        TotalSegments == 0
            ? 100.0
            : 100.0 * static_cast<double>(S.SegmentsRecovered) /
                  static_cast<double>(TotalSegments);
    TotalEvents += S.EventsRecovered;
    if (!R.readable() || S.SegmentsDropped != 0 || ShortOfCheckpoint)
      AnyLoss = true;
    if (!Quiet) {
      std::printf("  %s: session %llu %s", Name.c_str(),
                  static_cast<unsigned long long>(Id),
                  Resumable ? "(resumable)" : "(legacy)");
      if (!R.readable()) {
        std::printf(" UNREADABLE%s%s\n", R.Error.empty() ? "" : ": ",
                    R.Error.c_str());
        continue;
      }
      std::printf(": %llu event(s), %.1f%% of segments, footer %s",
                  static_cast<unsigned long long>(S.EventsRecovered), Pct,
                  yesNo(S.CleanShutdown));
      if (E)
        std::printf(", checkpointed at %llu/%llu byte(s)",
                    static_cast<unsigned long long>(E->JournalBytes),
                    static_cast<unsigned long long>(Size));
      else
        std::printf(", untracked by checkpoint");
      if (ShortOfCheckpoint)
        std::printf("  [MISSING ACKED BYTES]");
      std::printf("\n");
    }
  }

  // 3. Checkpointed sessions whose journal is gone: fine only when the
  // daemon finished them (checkpoint-then-unlink crash window), which a
  // later checkpoint would have pruned. Flag them as recoverable loss of
  // context, not data (their published counts are still in the totals).
  uint64_t Unbacked = 0;
  for (const CheckpointSessionEntry &S : Ckpt.Sessions) {
    bool Found = false;
    for (const std::string &Name : Journals) {
      uint64_t Id = 0, Hi = 0, Lo = 0;
      bool Resumable = false;
      parseJournalFileName(Name, Id, Hi, Lo, Resumable);
      if (Id == S.Id) {
        Found = true;
        break;
      }
    }
    if (!Found) {
      ++Unbacked;
      if (!Quiet)
        std::printf("  session %llu: in checkpoint but no journal "
                    "(finished in the unlink window)\n",
                    static_cast<unsigned long long>(S.Id));
    }
  }

  if (!Quiet)
    std::printf("  recoverable:    %llu event(s) across %zu journal(s)\n",
                static_cast<unsigned long long>(TotalEvents),
                Journals.size());
  if (!AnyReadable && !Journals.empty())
    return 1; // journals exist but nothing is salvageable
  if (!HaveCkpt && Journals.empty()) {
    if (CkptBad)
      return 1;
    if (!Quiet)
      std::printf("empty spool\n");
    return 0;
  }
  if (AnyLoss || Unbacked != 0) {
    if (!Quiet)
      std::printf("recoverable\n");
    return 4;
  }
  if (!Quiet)
    std::printf("clean\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Path;
  std::string SpoolDir;
  bool Segments = false;
  bool Quiet = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--segments")
      Segments = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--spool" && I + 1 < Argc)
      SpoolDir = Argv[++I];
    else if (Arg[0] != '-' && Path.empty())
      Path = Arg;
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }
  if (!SpoolDir.empty())
    return auditSpool(SpoolDir, Quiet);
  if (Path.empty())
    return usage(Argv[0]);

  TraceReadResult Read = readTrace(Path);
  if (!Read.readable()) {
    std::fprintf(stderr, "%s: unreadable%s%s\n", Path.c_str(),
                 Read.Error.empty() ? "" : ": ", Read.Error.c_str());
    return 1;
  }
  const TraceReadStats &S = Read.Stats;

  if (Segments && S.Format == TraceFormat::V2Segmented) {
    std::printf("    offset        tid     events    payload  crc\n");
    for (const SegmentInfo &Seg : scanSegments(Path)) {
      if (Seg.IsFooter) {
        std::printf("%10llu     footer                        %s\n",
                    static_cast<unsigned long long>(Seg.Offset),
                    Seg.HeaderOk && Seg.PayloadOk ? "ok" : "BAD");
        continue;
      }
      std::printf("%10llu %10u %10u %10u  %s\n",
                  static_cast<unsigned long long>(Seg.Offset), Seg.Tid,
                  Seg.EventCount, Seg.PayloadBytes,
                  !Seg.HeaderOk   ? "BAD header"
                  : !Seg.PayloadOk ? "BAD payload"
                                   : "ok");
    }
  }

  const uint64_t TotalSegments = S.SegmentsRecovered + S.SegmentsDropped;
  const double RecoveredPct =
      TotalSegments == 0
          ? 100.0
          : 100.0 * static_cast<double>(S.SegmentsRecovered) /
                static_cast<double>(TotalSegments);
  if (!Quiet) {
    std::printf("%s: %s\n", Path.c_str(), traceFormatName(S.Format));
    std::printf("  segments:       %llu recovered, %llu dropped (%.1f%% "
                "recovered)\n",
                static_cast<unsigned long long>(S.SegmentsRecovered),
                static_cast<unsigned long long>(S.SegmentsDropped),
                RecoveredPct);
    std::printf("  events:         %llu recovered\n",
                static_cast<unsigned long long>(S.EventsRecovered));
    if (S.BytesDropped != 0)
      std::printf("  bytes dropped:  %llu\n",
                  static_cast<unsigned long long>(S.BytesDropped));
    std::printf("  clean shutdown: %s\n", yesNo(S.CleanShutdown));
    std::printf("  truncated tail: %s\n", yesNo(S.TruncatedTail));
    if (S.EventsDroppedByWriter != 0)
      std::printf("  writer dropped: %llu event(s) (write failures or "
                  "async drop-policy backpressure)\n",
                  static_cast<unsigned long long>(S.EventsDroppedByWriter));
    if (S.FooterTotalsMismatch)
      std::printf("  footer totals:  disagree with recovered contents\n");
    if (S.SalvagedHeader)
      std::printf("  file header:    damaged (segments found by scan)\n");
    for (size_t T = 0; T != S.PerThreadRecovered.size(); ++T) {
      const uint64_t Rec = S.PerThreadRecovered[T];
      const uint64_t Drop =
          T < S.PerThreadDropped.size() ? S.PerThreadDropped[T] : 0;
      if (Rec == 0 && Drop == 0)
        continue;
      std::printf("  thread %-3zu      %llu event(s)%s", T,
                  static_cast<unsigned long long>(Rec),
                  Drop != 0 ? ", " : "\n");
      if (Drop != 0)
        std::printf("%llu dropped segment(s)\n",
                    static_cast<unsigned long long>(Drop));
    }
  }

  if (Read.Status == TraceReadStatus::Ok) {
    if (!Quiet)
      std::printf("clean\n");
    return 0;
  }
  if (!Quiet)
    std::printf("recoverable: %s\n", Read.Error.c_str());
  return 4;
}
