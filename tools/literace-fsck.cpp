//===-- tools/literace-fsck.cpp - Trace integrity checker -------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Integrity checker for recorded logs (docs/ROBUSTNESS.md): walks the
// file the same way the salvage reader does and reports what a detection
// run would actually see — per-segment CRC status, the footer, per-thread
// coverage, and the recovery percentage. Use it to answer "how much of
// the crashed run survived?" before spending detector time on it.
//
// Usage:
//   literace-fsck <log.bin> [--segments] [--quiet]
//
//   --segments  also print the per-frame inventory (v2 logs)
//   --quiet     suppress everything except errors; rely on the exit code
//
// Exit codes:
//   0  clean: every byte accounted for, clean shutdown
//   4  recoverable: a coherent partial trace was salvaged (some loss)
//   1  unreadable: not a literace log, or nothing could be recovered
//   2  usage error
//
//===----------------------------------------------------------------------===//

#include "runtime/EventLog.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace literace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s <log.bin> [--segments] [--quiet]\n",
               Argv0);
  return 2;
}

const char *yesNo(bool B) { return B ? "yes" : "no"; }

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Path = Argv[1];
  bool Segments = false;
  bool Quiet = false;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--segments")
      Segments = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  TraceReadResult Read = readTrace(Path);
  if (!Read.readable()) {
    std::fprintf(stderr, "%s: unreadable%s%s\n", Path.c_str(),
                 Read.Error.empty() ? "" : ": ", Read.Error.c_str());
    return 1;
  }
  const TraceReadStats &S = Read.Stats;

  if (Segments && S.Format == TraceFormat::V2Segmented) {
    std::printf("    offset        tid     events    payload  crc\n");
    for (const SegmentInfo &Seg : scanSegments(Path)) {
      if (Seg.IsFooter) {
        std::printf("%10llu     footer                        %s\n",
                    static_cast<unsigned long long>(Seg.Offset),
                    Seg.HeaderOk && Seg.PayloadOk ? "ok" : "BAD");
        continue;
      }
      std::printf("%10llu %10u %10u %10u  %s\n",
                  static_cast<unsigned long long>(Seg.Offset), Seg.Tid,
                  Seg.EventCount, Seg.PayloadBytes,
                  !Seg.HeaderOk   ? "BAD header"
                  : !Seg.PayloadOk ? "BAD payload"
                                   : "ok");
    }
  }

  const uint64_t TotalSegments = S.SegmentsRecovered + S.SegmentsDropped;
  const double RecoveredPct =
      TotalSegments == 0
          ? 100.0
          : 100.0 * static_cast<double>(S.SegmentsRecovered) /
                static_cast<double>(TotalSegments);
  if (!Quiet) {
    std::printf("%s: %s\n", Path.c_str(), traceFormatName(S.Format));
    std::printf("  segments:       %llu recovered, %llu dropped (%.1f%% "
                "recovered)\n",
                static_cast<unsigned long long>(S.SegmentsRecovered),
                static_cast<unsigned long long>(S.SegmentsDropped),
                RecoveredPct);
    std::printf("  events:         %llu recovered\n",
                static_cast<unsigned long long>(S.EventsRecovered));
    if (S.BytesDropped != 0)
      std::printf("  bytes dropped:  %llu\n",
                  static_cast<unsigned long long>(S.BytesDropped));
    std::printf("  clean shutdown: %s\n", yesNo(S.CleanShutdown));
    std::printf("  truncated tail: %s\n", yesNo(S.TruncatedTail));
    if (S.EventsDroppedByWriter != 0)
      std::printf("  writer dropped: %llu event(s) (write failures or "
                  "async drop-policy backpressure)\n",
                  static_cast<unsigned long long>(S.EventsDroppedByWriter));
    if (S.FooterTotalsMismatch)
      std::printf("  footer totals:  disagree with recovered contents\n");
    if (S.SalvagedHeader)
      std::printf("  file header:    damaged (segments found by scan)\n");
    for (size_t T = 0; T != S.PerThreadRecovered.size(); ++T) {
      const uint64_t Rec = S.PerThreadRecovered[T];
      const uint64_t Drop =
          T < S.PerThreadDropped.size() ? S.PerThreadDropped[T] : 0;
      if (Rec == 0 && Drop == 0)
        continue;
      std::printf("  thread %-3zu      %llu event(s)%s", T,
                  static_cast<unsigned long long>(Rec),
                  Drop != 0 ? ", " : "\n");
      if (Drop != 0)
        std::printf("%llu dropped segment(s)\n",
                    static_cast<unsigned long long>(Drop));
    }
  }

  if (Read.Status == TraceReadStatus::Ok) {
    if (!Quiet)
      std::printf("clean\n");
    return 0;
  }
  if (!Quiet)
    std::printf("recoverable: %s\n", Read.Error.c_str());
  return 4;
}
