//===-- tools/literace-stat.cpp - Telemetry triage CLI ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Triage tool for recorded logs (docs/TELEMETRY.md): merges everything we
// know about a run into one metrics snapshot and prints it — trace-derived
// profile (TraceStats), the recording runtime's counters from the
// <log>.metrics.json sidecar written by literace-run (sampled/unsampled
// activations, elided ops, flush latencies, sampler back-offs), and
// optionally a fresh sharded-detection pass whose pipeline counters
// (per-shard queue high-water marks, park counts, merge time) join the
// snapshot. Can export the merged snapshot as metrics.json and the trace
// as a Chrome trace-event / Perfetto timeline.
//
// Usage:
//   literace-stat <log.bin> [--metrics <sidecar.json>]... [--shards <n>]
//                 [--json <out.json>] [--prometheus <out.prom|->]
//                 [--perfetto <out.json>] [--quiet]
//
//   --metrics   explicit sidecar path (default: <log.bin>.metrics.json
//               when it exists). Repeatable: sidecars from multiple
//               concurrent processes merge (counters add, gauges max),
//               and their capture stamps order the merged snapshot
//   --shards    run sharded happens-before detection with <n> shards and
//               include detector-plane telemetry
//   --json      write the merged snapshot (literace.metrics.v1 schema)
//   --prometheus
//               write the merged snapshot in Prometheus text-exposition
//               format ('-' = stdout), same writer as the collector's
//               /metrics endpoint
//   --perfetto  write the timeline (load at ui.perfetto.dev)
//   --quiet     suppress the human-readable triage rendering
//
//===----------------------------------------------------------------------===//

#include "detector/ShardedDetector.h"
#include "runtime/EventLog.h"
#include "runtime/TraceStats.h"
#include "telemetry/Metrics.h"
#include "telemetry/Prometheus.h"
#include "telemetry/Timeline.h"

#include <vector>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace literace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <log.bin> [--metrics <sidecar.json>]... "
               "[--shards <n>] [--json <out.json>] "
               "[--prometheus <out.prom|->] "
               "[--perfetto <out.json>] [--quiet]\n",
               Argv0);
  return 2;
}

std::optional<std::string> readTextFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Data.append(Buf, N);
  std::fclose(File);
  return Data;
}

bool writeTextFile(const std::string &Path, const std::string &Data) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), File) == Data.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Path = Argv[1];
  std::vector<std::string> SidecarPaths;
  std::string JsonOut;
  std::string PrometheusOut;
  std::string PerfettoOut;
  unsigned Shards = 0;
  bool Quiet = false;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--metrics" && I + 1 < Argc)
      SidecarPaths.push_back(Argv[++I]);
    else if (Arg == "--prometheus" && I + 1 < Argc)
      PrometheusOut = Argv[++I];
    else if (Arg == "--shards" && I + 1 < Argc)
      Shards = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (Arg == "--json" && I + 1 < Argc)
      JsonOut = Argv[++I];
    else if (Arg == "--perfetto" && I + 1 < Argc)
      PerfettoOut = Argv[++I];
    else if (Arg == "--quiet")
      Quiet = true;
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  // Accept every on-disk format transparently; a damaged log is triaged
  // from its salvaged subset (with the loss folded into the snapshot).
  TraceReadResult Read = readTrace(Path);
  if (!Read.readable()) {
    std::fprintf(stderr, "error: '%s' is not a readable literace log%s%s\n",
                 Path.c_str(), Read.Error.empty() ? "" : ": ",
                 Read.Error.c_str());
    return 1;
  }
  const Trace *T = &Read.T;
  if (Read.Status == TraceReadStatus::Salvaged)
    std::fprintf(stderr,
                 "note: '%s' was salvaged (%llu segment(s) dropped); "
                 "figures cover the recovered subset\n",
                 Path.c_str(),
                 static_cast<unsigned long long>(
                     Read.Stats.SegmentsDropped));

  TraceStats Stats = TraceStats::compute(*T);
  telemetry::MetricsSnapshot Snap;

  // Plane 1: the recording runtimes' own counters, via sidecars. More
  // than one --metrics merges multi-process runs: counters add, gauges
  // max, and the capture stamps (time + pid) say which processes
  // contributed and how the snapshots order.
  const std::string DefaultSidecar = Path + ".metrics.json";
  if (SidecarPaths.empty())
    SidecarPaths.push_back(DefaultSidecar);
  bool HaveSidecar = false;
  for (const std::string &SidecarPath : SidecarPaths) {
    auto Sidecar = readTextFile(SidecarPath);
    if (!Sidecar) {
      if (SidecarPath != DefaultSidecar)
        std::fprintf(stderr, "warning: cannot read sidecar '%s'\n",
                     SidecarPath.c_str());
      continue;
    }
    if (auto Recorded = telemetry::MetricsSnapshot::fromJson(*Sidecar)) {
      Snap.merge(*Recorded);
      HaveSidecar = true;
    } else {
      std::fprintf(stderr, "warning: '%s' is not a literace metrics "
                           "document; ignoring it\n",
                   SidecarPath.c_str());
    }
  }

  // Plane 2: the trace itself.
  Snap.setCounter("trace.events", Stats.TotalEvents);
  Snap.setCounter("trace.reads", Stats.Reads);
  Snap.setCounter("trace.writes", Stats.Writes);
  Snap.setCounter("trace.sync_ops", Stats.SyncOps);
  Snap.setCounter("trace.distinct_addresses", Stats.DistinctAddresses);
  Snap.setCounter("trace.distinct_syncvars", Stats.DistinctSyncVars);
  Snap.setGauge("trace.threads", Stats.NumThreads);
  if (Read.Status == TraceReadStatus::Salvaged) {
    Snap.setCounter("trace.segments.recovered",
                    Read.Stats.SegmentsRecovered);
    Snap.setCounter("trace.segments.dropped", Read.Stats.SegmentsDropped);
  }

  // Plane 3 (optional): a sharded detection pass over the log, so the
  // pipeline's queue/stall behavior is measured on this machine.
  if (Shards > 0) {
    DetectorOptions DetOpts;
    DetOpts.Shards = Shards;
    ShardedHBDetector Detector(DetOpts);
    const bool Ok = replayTrace(*T, Detector);
    RaceReport Report;
    Detector.finish(Report);
    if (!Ok)
      std::fprintf(stderr, "warning: log replay was inconsistent; "
                           "detector telemetry covers the replayed "
                           "prefix\n");
    Snap.setCounter("report.static_races", Report.numStaticRaces());
    for (unsigned I = 0; I != Detector.numShards(); ++I) {
      const auto S = Detector.shardTelemetry(I);
      const std::string Prefix =
          "detector.shard" + std::to_string(I) + ".";
      Snap.setCounter(Prefix + "memory_events", S.MemoryEvents);
      Snap.setGauge(Prefix + "queue_highwater", S.QueueDepthHighWater);
      Snap.setCounter(Prefix + "producer_parks", S.ProducerParks);
      Snap.setCounter(Prefix + "consumer_parks", S.ConsumerParks);
    }
    // The registry-level fold (detector.* totals) happened in finish().
    if (telemetry::MetricsRegistry *M = telemetry::resolveRegistry(nullptr))
      Snap.merge(M->snapshot());
  }

  if (!Quiet) {
    std::printf("== trace profile ==\n%s", Stats.describe().c_str());
    std::printf("== metrics ==\n%s", Snap.describe().c_str());
    if (!HaveSidecar)
      std::printf("(no runtime sidecar at %s — record with literace-run "
                  "to capture runtime counters)\n",
                  DefaultSidecar.c_str());
  }

  if (!JsonOut.empty()) {
    if (!writeTextFile(JsonOut, Snap.toJson())) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonOut.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", JsonOut.c_str());
  }

  if (!PrometheusOut.empty()) {
    const std::string Text = telemetry::toPrometheusText(Snap);
    std::string Error;
    if (!telemetry::validatePrometheusText(Text, &Error)) {
      std::fprintf(stderr, "internal error: invalid exposition: %s\n",
                   Error.c_str());
      return 1;
    }
    if (PrometheusOut == "-") {
      std::fwrite(Text.data(), 1, Text.size(), stdout);
    } else if (!writeTextFile(PrometheusOut, Text)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   PrometheusOut.c_str());
      return 1;
    } else {
      std::fprintf(stderr, "wrote %s\n", PrometheusOut.c_str());
    }
  }

  if (!PerfettoOut.empty()) {
    telemetry::TraceWriter Timeline = telemetry::buildTraceTimeline(*T);
    Timeline.append(telemetry::TraceRecorder::global().drainWriter());
    std::string Json = Timeline.toJson();
    std::string Error;
    if (!telemetry::validateChromeTraceJson(Json, &Error)) {
      std::fprintf(stderr, "internal error: invalid trace JSON: %s\n",
                   Error.c_str());
      return 1;
    }
    if (!writeTextFile(PerfettoOut, Json)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   PerfettoOut.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu events; open in ui.perfetto.dev)\n",
                 PerfettoOut.c_str(), Timeline.size());
  }
  return 0;
}
