//===-- tools/literace-report.cpp - Offline race analyzer CLI ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The "analyzer side" of the paper's offline workflow (§4.4): reads a log
// file produced by literace-run (or any FileSink user), replays it, and
// reports data races. Three detector backends are available: the default
// vector-clock happens-before detector, the FastTrack-style epoch
// detector, and the Eraser-style lockset baseline (which may report false
// positives — it is included for comparison, as in the paper's §2).
//
// Usage:
//   literace-report <log.bin> [--detector hb|fasttrack|lockset]
//                   [--shards <n>] [--rare-threshold-memops <n>] [--quiet]
//                   [--salvage] [--strict]
//
// --shards=N runs the happens-before analysis on N parallel address-space
// shards (docs/DETECTOR.md); the report is byte-identical to --shards=1.
//
// Damaged logs: by default (--salvage) the reader recovers every intact
// checksummed segment and the replay tolerates the resulting timestamp
// gaps, so a crashed or corrupted recording still yields a report — over
// the recovered subset of the execution, with the coverage loss printed.
// --strict restores fail-stop behavior: any imperfection is exit 1.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "detector/LocksetDetector.h"
#include "runtime/EventLog.h"
#include "runtime/TraceStats.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Timeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace literace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <log.bin> [--detector hb|fasttrack|lockset] "
               "[--shards <n>] [--suppress <file>] [--stats] [--quiet] "
               "[--metrics <dir>] [--salvage] [--strict]\n"
               "--metrics writes <dir>/metrics.json and "
               "<dir>/trace.perfetto.json\n"
               "--salvage (default) recovers what it can from damaged "
               "logs; --strict fails instead\n",
               Argv0);
  return 2;
}

/// Writes \p Data to \p Path; reports on stderr.
bool writeTextFile(const std::string &Path, const std::string &Data) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), File) == Data.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

/// Reads \p Path whole; empty optional if unreadable.
std::optional<std::string> readTextFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Data.append(Buf, N);
  std::fclose(File);
  return Data;
}

/// Reads a suppression file: one pc per line (hex with 0x or decimal),
/// '#' comments. Returns false on I/O failure.
bool readSuppressions(const std::string &Path, std::set<Pc> &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "r");
  if (!File)
    return false;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), File)) {
    char *P = Line;
    while (*P == ' ' || *P == '\t')
      ++P;
    if (*P == '#' || *P == '\n' || *P == '\0')
      continue;
    Out.insert(std::strtoull(P, nullptr, 0));
  }
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Path = Argv[1];
  std::string Detector = "hb";
  std::string MetricsDir;
  bool Quiet = false;
  bool Stats = false;
  bool Metrics = false;
  bool Salvage = true;
  DetectorOptions DetOpts;
  std::set<Pc> Suppressed;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--detector" && I + 1 < Argc)
      Detector = Argv[++I];
    else if (Arg == "--metrics" && I + 1 < Argc) {
      Metrics = true;
      MetricsDir = Argv[++I];
    }
    else if (Arg == "--shards" && I + 1 < Argc)
      DetOpts.Shards = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (Arg.rfind("--shards=", 0) == 0)
      DetOpts.Shards =
          static_cast<unsigned>(std::atoi(Arg.c_str() + sizeof("--shards=") - 1));
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--salvage")
      Salvage = true;
    else if (Arg == "--strict")
      Salvage = false;
    else if (Arg == "--suppress" && I + 1 < Argc) {
      if (!readSuppressions(Argv[++I], Suppressed)) {
        std::fprintf(stderr, "error: cannot read suppressions '%s'\n",
                     Argv[I]);
        return 1;
      }
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  // Accept every on-disk format transparently; salvage damaged files
  // unless --strict.
  TraceReadOptions ReadOpts;
  ReadOpts.Salvage = Salvage;
  TraceReadResult Read = readTrace(Path, ReadOpts);
  if (!Read.readable()) {
    std::fprintf(stderr, "error: '%s' is not a readable literace log%s%s\n",
                 Path.c_str(), Read.Error.empty() ? "" : ": ",
                 Read.Error.c_str());
    return 1;
  }
  const Trace *T = &Read.T;
  const bool Salvaged = Read.Status == TraceReadStatus::Salvaged;
  if (Salvaged) {
    const TraceReadStats &RS = Read.Stats;
    std::fprintf(stderr,
                 "salvaged %s log: %llu segment(s) recovered, %llu "
                 "dropped, %llu event(s)%s%s%s — the report covers the "
                 "recovered subset of the execution\n",
                 traceFormatName(RS.Format),
                 static_cast<unsigned long long>(RS.SegmentsRecovered),
                 static_cast<unsigned long long>(RS.SegmentsDropped),
                 static_cast<unsigned long long>(RS.EventsRecovered),
                 RS.TruncatedTail ? ", truncated tail" : "",
                 RS.SalvagedHeader ? ", damaged file header" : "",
                 RS.CleanShutdown ? "" : ", no clean shutdown");
  }
  if (Stats)
    std::printf("%s", TraceStats::compute(*T).describe().c_str());
  std::fprintf(stderr,
               "%s: %zu threads, %zu events (%zu memory, %zu sync), "
               "%u timestamp counters\n",
               Path.c_str(), T->PerThread.size(), T->totalEvents(),
               T->memoryOps(), T->syncOps(), T->NumTimestampCounters);

  if (DetOpts.Shards == 0)
    DetOpts.Shards = 1;
  if (DetOpts.Shards > 1 && Detector != "hb") {
    std::fprintf(stderr, "note: --shards applies to the hb detector only; "
                         "running %s serially\n",
                 Detector.c_str());
    DetOpts.Shards = 1;
  }

  // A salvaged trace is missing sync events whose timestamps the replay
  // would otherwise wait on forever; let the scheduler skip those gaps
  // (the detectors conservatively over-order across each gap, so reported
  // races are a subset of the full-trace report — docs/ROBUSTNESS.md).
  ReplayOptions Replay;
  uint64_t TimestampGaps = 0;
  if (Salvaged) {
    Replay.AllowTimestampGaps = true;
    Replay.OutTimestampGaps = &TimestampGaps;
  }

  RaceReport Report;
  WallTimer Timer;
  bool Consistent;
  if (Detector == "hb") {
    if (DetOpts.Shards > 1)
      std::fprintf(stderr, "analyzing on %u address-space shards\n",
                   DetOpts.Shards);
    Consistent = detectRaces(*T, Report, Replay, DetOpts);
  } else if (Detector == "fasttrack") {
    Consistent = detectRacesFastTrack(*T, Report, Replay);
  } else if (Detector == "lockset") {
    std::fprintf(stderr, "note: the lockset detector may report FALSE "
                         "positives (see paper §2)\n");
    Consistent = detectLocksetViolations(*T, Report, Replay);
  } else {
    std::fprintf(stderr, "error: unknown detector '%s'\n",
                 Detector.c_str());
    return usage(Argv[0]);
  }
  double Seconds = Timer.seconds();
  if (!Consistent) {
    std::fprintf(stderr, "error: log is inconsistent (missing or "
                         "duplicated sync events)\n");
    return 1;
  }
  if (TimestampGaps != 0)
    std::fprintf(stderr,
                 "replay skipped %llu timestamp gap(s) left by dropped "
                 "segments\n",
                 static_cast<unsigned long long>(TimestampGaps));

  auto [Rare, Frequent] = Report.splitRareFrequent(T->memoryOps());
  std::printf("%zu static race(s): %zu rare, %zu frequent "
              "(3-per-million-memops rule)\n",
              Report.numStaticRaces(), Rare.size(), Frequent.size());
  size_t Remaining = Report.numStaticRaces();
  if (!Suppressed.empty()) {
    Remaining = Report.staticRacesExcluding(Suppressed).size();
    std::printf("%zu after suppressions (%zu suppressed)\n", Remaining,
                Report.numStaticRaces() - Remaining);
  }
  if (!Quiet)
    std::printf("%s", Report.describe().c_str());
  std::fprintf(stderr, "analyzed in %.3fs (%.1f M events/s)\n", Seconds,
               static_cast<double>(T->totalEvents()) / 1e6 / Seconds);

  if (Metrics) {
    // Merge every plane we have: detector counters folded into the
    // process registry during the analysis above, the recording run's
    // sidecar (if literace-run left one next to the log), and
    // trace/report-derived figures.
    telemetry::MetricsSnapshot Snap;
    if (telemetry::MetricsRegistry *M = telemetry::resolveRegistry(nullptr))
      Snap = M->snapshot();
    if (auto Sidecar = readTextFile(Path + ".metrics.json")) {
      if (auto Recorded = telemetry::MetricsSnapshot::fromJson(*Sidecar))
        Snap.merge(*Recorded);
      else
        std::fprintf(stderr, "warning: ignoring malformed sidecar "
                             "'%s.metrics.json'\n",
                     Path.c_str());
    }
    Snap.setCounter("trace.events", T->totalEvents());
    Snap.setCounter("trace.memory_ops", T->memoryOps());
    Snap.setCounter("trace.sync_ops", T->syncOps());
    Snap.setGauge("trace.threads", T->PerThread.size());
    Snap.setCounter("report.static_races", Report.numStaticRaces());
    Snap.setCounter("report.analysis_us",
                    static_cast<uint64_t>(Seconds * 1e6));
    if (Salvaged) {
      Snap.setCounter("trace.segments.recovered",
                      Read.Stats.SegmentsRecovered);
      Snap.setCounter("trace.segments.dropped", Read.Stats.SegmentsDropped);
      Snap.setCounter("report.timestamp_gaps", TimestampGaps);
    }
    const std::string MetricsPath = MetricsDir + "/metrics.json";
    const std::string TracePath = MetricsDir + "/trace.perfetto.json";
    telemetry::TraceWriter Timeline = telemetry::buildTraceTimeline(*T);
    Timeline.append(telemetry::TraceRecorder::global().drainWriter());
    if (writeTextFile(MetricsPath, Snap.toJson()) &&
        writeTextFile(TracePath, Timeline.toJson()))
      std::fprintf(stderr, "wrote %s and %s (%zu timeline events)\n",
                   MetricsPath.c_str(), TracePath.c_str(),
                   Timeline.size());
  }
  return Remaining == 0 ? 0 : 3;
}
