//===-- tools/literace-run.cpp - Workload recorder CLI ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Runs one of the bundled benchmark workloads under a chosen
// instrumentation mode and writes the event log to disk in the FileSink
// format, ready for literace-report. This is the "profiler side" of the
// paper's offline workflow (§4.4), packaged as a command-line tool.
//
// Usage:
//   literace-run <workload> <out.bin> [--mode <mode>] [--scale <x>]
//                [--seed <n>] [--elide] [--no-elide]
//
//   <workload>  channel-stdlib | channel | concrt-messaging |
//               concrt-scheduling | httpd-1 | httpd-2 | browser-start |
//               browser-render | lkrhash | lflist
//   <mode>      sync | literace (default) | full
//   --elide     run the pre-execution static analysis and skip logging
//               for sites it proves race-free (see literace-analyze)
//   --no-elide  escape hatch: force elision off even with --elide
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "telemetry/Metrics.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace literace;

namespace {

std::optional<WorkloadKind> parseWorkload(const std::string &Name) {
  if (Name == "channel-stdlib")
    return WorkloadKind::ChannelWithStdLib;
  if (Name == "channel")
    return WorkloadKind::Channel;
  if (Name == "concrt-messaging")
    return WorkloadKind::ConcRTMessaging;
  if (Name == "concrt-scheduling")
    return WorkloadKind::ConcRTScheduling;
  if (Name == "httpd-1")
    return WorkloadKind::Httpd1;
  if (Name == "httpd-2")
    return WorkloadKind::Httpd2;
  if (Name == "browser-start")
    return WorkloadKind::BrowserStart;
  if (Name == "browser-render")
    return WorkloadKind::BrowserRender;
  if (Name == "lkrhash")
    return WorkloadKind::LKRHash;
  if (Name == "lflist")
    return WorkloadKind::LFList;
  return std::nullopt;
}

std::optional<RunMode> parseMode(const std::string &Name) {
  if (Name == "sync")
    return RunMode::SyncLogging;
  if (Name == "literace")
    return RunMode::LiteRace;
  if (Name == "full")
    return RunMode::FullLogging;
  return std::nullopt;
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <workload> <out.bin> [--mode sync|literace|full]\n"
      "          [--scale <x>] [--seed <n>] [--elide] [--no-elide]\n"
      "workloads: channel-stdlib channel concrt-messaging\n"
      "           concrt-scheduling httpd-1 httpd-2 browser-start\n"
      "           browser-render lkrhash lflist\n",
      Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage(Argv[0]);

  auto Kind = parseWorkload(Argv[1]);
  if (!Kind) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Argv[1]);
    return usage(Argv[0]);
  }
  std::string OutPath = Argv[2];
  RunMode Mode = RunMode::LiteRace;
  bool Elide = false;
  bool NoElide = false;
  WorkloadParams Params;
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--elide") {
      Elide = true;
    } else if (Arg == "--no-elide") {
      NoElide = true;
    } else if (Arg == "--mode" && I + 1 < Argc) {
      auto Parsed = parseMode(Argv[++I]);
      if (!Parsed) {
        std::fprintf(stderr, "error: unknown mode '%s'\n", Argv[I]);
        return usage(Argv[0]);
      }
      Mode = *Parsed;
    } else if (Arg == "--scale" && I + 1 < Argc) {
      Params.Scale = std::atof(Argv[++I]);
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Params.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  FileSink Sink(OutPath, /*NumTimestampCounters=*/128);
  if (!Sink.ok()) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 OutPath.c_str());
    return 1;
  }
  RuntimeConfig Config;
  Config.Mode = Mode;
  Config.Seed = Params.Seed;
  Config.DisableElision = NoElide;
  Runtime RT(Config, &Sink);
  std::unique_ptr<Workload> W = makeWorkload(*Kind);
  W->bind(RT);
  if (Elide) {
    AnalysisResult Analysis = analyzeAndInstall(RT);
    std::fprintf(stderr, "static analysis: %zu/%zu declared sites %s\n",
                 Analysis.ElidableSites, Analysis.DeclaredSites,
                 NoElide ? "elidable (elision disabled by --no-elide)"
                         : "elided");
  }
  std::fprintf(stderr, "running %s in %s mode (scale %.2f)...\n",
               W->name().c_str(), runModeName(Mode), Params.Scale);
  W->run(RT, Params);
  Sink.close();

  RuntimeStats Stats = RT.stats();
  std::fprintf(stderr,
               "wrote %s: %.1f MB, %llu memory ops, %llu sync ops, "
               "%u threads, %zu functions\n",
               OutPath.c_str(),
               static_cast<double>(Sink.bytesWritten()) / 1e6,
               static_cast<unsigned long long>(Stats.MemOpsLogged),
               static_cast<unsigned long long>(Stats.SyncOps),
               RT.numThreads(), RT.registry().size());

  // Sidecar telemetry: the log format carries no runtime counters, so
  // literace-stat reads them from <out>.metrics.json. Suppressed by the
  // LITERACE_TELEMETRY kill switch along with all other telemetry.
  if (RT.metrics()) {
    telemetry::MetricsSnapshot Snap = RT.metricsSnapshot();
    const std::string MetricsPath = OutPath + ".metrics.json";
    if (std::FILE *File = std::fopen(MetricsPath.c_str(), "wb")) {
      const std::string Json = Snap.toJson();
      const bool Ok =
          std::fwrite(Json.data(), 1, Json.size(), File) == Json.size();
      std::fclose(File);
      if (Ok)
        std::fprintf(stderr, "wrote %s (%zu metrics)\n",
                     MetricsPath.c_str(),
                     Snap.Counters.size() + Snap.Gauges.size() +
                         Snap.Histograms.size());
    } else {
      std::fprintf(stderr, "warning: cannot write '%s'\n",
                   MetricsPath.c_str());
    }
  }
  return 0;
}
