//===-- tools/literace-run.cpp - Workload recorder CLI ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Runs one of the bundled benchmark workloads under a chosen
// instrumentation mode and writes the event log to disk, ready for
// literace-report. This is the "profiler side" of the paper's offline
// workflow (§4.4), packaged as a command-line tool.
//
// Crash consistency: the default output is the v2 segmented format, whose
// frames are durable the moment they are written. A signal/atexit path
// additionally flushes whatever the sink still buffers and writes the
// metrics sidecar best-effort, then re-raises so the caller sees the
// workload's abnormal exit (128+signal) rather than a silent 0.
//
// Usage:
//   literace-run <workload> <out.bin> [--mode <mode>] [--scale <x>]
//                [--seed <n>] [--elide] [--no-elide] [--format v1|v2|v2z]
//                [--flush sync|async] [--flush-policy block|drop]
//                [--kill-after-bytes <n>] [--abort-after-bytes <n>]
//                [--connect <socket>]
//
//   <workload>  channel-stdlib | channel | concrt-messaging |
//               concrt-scheduling | httpd-1 | httpd-2 | browser-start |
//               browser-render | lkrhash | lflist
//   <mode>      sync | literace (default) | full
//   --elide     run the pre-execution static analysis and skip logging
//               for sites it proves race-free (see literace-analyze)
//   --no-elide  escape hatch: force elision off even with --elide
//   --format    v2 (default, segmented+checksummed), v2z (segmented with
//               compressed payloads), v1 (legacy unframed FileSink)
//   --flush     sync (default): application threads write to the file
//               sink directly. async: chunks are handed to a bounded
//               queue and a dedicated flusher thread pays for framing,
//               compression, and write(2) — app threads never block on
//               trace I/O (docs/ROBUSTNESS.md)
//   --flush-policy
//               with --flush async: block (default, lossless
//               backpressure) or drop (discard whole chunks when the
//               queue is full; the loss is accounted in the v2 footer
//               and surfaces as a salvaged trace)
//   --kill-after-bytes / --abort-after-bytes
//               fault injection for the recovery tests: SIGKILL (no
//               handler can run) or abort() the process once the sink has
//               accepted that many payload bytes
//   --connect   additionally stream the v2 byte stream to a
//               literace-collectd daemon listening on the given unix
//               socket (docs/COLLECTOR.md). The on-disk file stays
//               authoritative. By default the connection is fault-
//               tolerant (docs/ROBUSTNESS.md): bytes are retained in a
//               bounded on-disk spool until the daemon acks them as
//               journaled, and a torn connection or daemon restart is
//               ridden out with capped exponential backoff + jitter and
//               a resume handshake, so the delivered stream stays byte-
//               identical. Loss happens only when the spool cap is hit,
//               and every shed byte is accounted in the metrics sidecar
//               (sink.tee.*). Requires --format v2/v2z.
//   --connect-strict
//               exit 1 when any streamed byte was lost (spool-cap trims
//               or an undrained tail at exit); without it loss only
//               degrades the stream and warns
//   --connect-spool <path>
//               spool file location (default <out.bin>.spool; unlinked
//               on clean exit)
//   --connect-spool-cap <bytes>
//               retained-unacked spool budget (default 64 MiB); hitting
//               it sheds the oldest unacked bytes
//   --connect-drain-ms <ms>
//               how long exit may keep reconnecting to drain the spool
//               backlog (default 5000)
//   --connect-legacy
//               use the fire-and-forget stream (no spool, no resume);
//               a broken connection degrades the run to file-only
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "runtime/AsyncSink.h"
#include "support/ByteOutput.h"
#include "telemetry/Metrics.h"
#include "workloads/Workload.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

using namespace literace;

namespace {

std::optional<RunMode> parseMode(const std::string &Name) {
  if (Name == "sync")
    return RunMode::SyncLogging;
  if (Name == "literace")
    return RunMode::LiteRace;
  if (Name == "full")
    return RunMode::FullLogging;
  return std::nullopt;
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <workload> <out.bin> [--mode sync|literace|full]\n"
      "          [--scale <x>] [--seed <n>] [--elide] [--no-elide]\n"
      "          [--format v1|v2|v2z] [--flush sync|async]\n"
      "          [--flush-policy block|drop] [--kill-after-bytes <n>]\n"
      "          [--abort-after-bytes <n>] [--connect <socket>]\n"
      "          [--connect-strict] [--connect-spool <path>]\n"
      "          [--connect-spool-cap <bytes>] [--connect-drain-ms <ms>]\n"
      "          [--connect-legacy]\n"
      "workloads:\n%s\n",
      Argv0, workloadNameList("  ").c_str());
  return 2;
}

/// Crash-path state shared with the signal handlers. Writes are ordered
/// before handler installation, so plain pointers are fine; Entered
/// serializes the (unlikely) case of a second fatal signal arriving while
/// the first is being handled.
LogSink *ActiveSink = nullptr;
Runtime *ActiveRuntime = nullptr;
const char *ActiveSidecarPath = nullptr;
std::atomic<bool> Entered{false};

void writeSidecarBestEffort() {
  if (!ActiveRuntime || !ActiveSidecarPath || !ActiveRuntime->metrics())
    return;
  telemetry::MetricsSnapshot Snap = ActiveRuntime->metricsSnapshot();
  Snap.stampCapture();
  if (std::FILE *File = std::fopen(ActiveSidecarPath, "wb")) {
    const std::string Json = Snap.toJson();
    std::fwrite(Json.data(), 1, Json.size(), File);
    std::fclose(File);
  }
}

/// Fatal-signal path: flush open segments so everything the workload
/// produced so far is recoverable, leave the sidecar if possible, then die
/// with the default disposition so the parent sees 128+sig. Not strictly
/// async-signal-safe (it allocates), but this runs only when the process
/// is about to die anyway — a secondary crash here loses nothing that was
/// not already lost.
void onFatalSignal(int Sig) {
  if (Entered.exchange(true)) {
    std::signal(Sig, SIG_DFL);
    std::raise(Sig);
    return;
  }
  if (ActiveSink)
    ActiveSink->flush();
  writeSidecarBestEffort();
  std::signal(Sig, SIG_DFL);
  std::raise(Sig);
}

void onExitFlush() {
  // Covers std::exit() from workload code: the sink's destructor would run
  // only for static-storage sinks, so flush explicitly.
  if (ActiveSink)
    ActiveSink->flush();
}

void installCrashPath() {
  static const int Fatal[] = {SIGINT,  SIGTERM, SIGHUP, SIGSEGV,
                              SIGBUS,  SIGILL,  SIGFPE, SIGABRT};
  for (int Sig : Fatal)
    std::signal(Sig, onFatalSignal);
  std::atexit(onExitFlush);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage(Argv[0]);

  auto Kind = workloadKindByName(Argv[1]);
  if (!Kind) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Argv[1]);
    return usage(Argv[0]);
  }
  std::string OutPath = Argv[2];
  RunMode Mode = RunMode::LiteRace;
  std::string Format = "v2";
  bool AsyncFlush = false;
  FlushPolicy Policy = FlushPolicy::Block;
  bool Elide = false;
  bool NoElide = false;
  uint64_t KillAfterBytes = 0;
  uint64_t AbortAfterBytes = 0;
  std::string ConnectPath;
  bool ConnectStrict = false;
  bool ConnectLegacy = false;
  std::string ConnectSpoolPath;
  uint64_t ConnectSpoolCap = 64ull << 20;
  uint64_t ConnectDrainMs = 5000;
  WorkloadParams Params;
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--elide") {
      Elide = true;
    } else if (Arg == "--no-elide") {
      NoElide = true;
    } else if (Arg == "--mode" && I + 1 < Argc) {
      auto Parsed = parseMode(Argv[++I]);
      if (!Parsed) {
        std::fprintf(stderr, "error: unknown mode '%s'\n", Argv[I]);
        return usage(Argv[0]);
      }
      Mode = *Parsed;
    } else if (Arg == "--format" && I + 1 < Argc) {
      Format = Argv[++I];
      if (Format != "v1" && Format != "v2" && Format != "v2z") {
        std::fprintf(stderr, "error: unknown format '%s'\n", Format.c_str());
        return usage(Argv[0]);
      }
    } else if ((Arg == "--flush" && I + 1 < Argc) ||
               Arg.rfind("--flush=", 0) == 0) {
      const std::string Val =
          Arg[7] == '=' ? Arg.substr(8) : std::string(Argv[++I]);
      if (Val == "sync") {
        AsyncFlush = false;
      } else if (Val == "async") {
        AsyncFlush = true;
      } else {
        std::fprintf(stderr, "error: unknown flush mode '%s'\n",
                     Val.c_str());
        return usage(Argv[0]);
      }
    } else if (Arg == "--flush-policy" && I + 1 < Argc) {
      const std::string Val = Argv[++I];
      if (Val == "block") {
        Policy = FlushPolicy::Block;
      } else if (Val == "drop") {
        Policy = FlushPolicy::Drop;
      } else {
        std::fprintf(stderr, "error: unknown flush policy '%s'\n",
                     Val.c_str());
        return usage(Argv[0]);
      }
    } else if (Arg == "--scale" && I + 1 < Argc) {
      Params.Scale = std::atof(Argv[++I]);
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Params.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--kill-after-bytes" && I + 1 < Argc) {
      KillAfterBytes = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--abort-after-bytes" && I + 1 < Argc) {
      AbortAfterBytes = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--connect" && I + 1 < Argc) {
      ConnectPath = Argv[++I];
    } else if (Arg == "--connect-strict") {
      ConnectStrict = true;
    } else if (Arg == "--connect-legacy") {
      ConnectLegacy = true;
    } else if (Arg == "--connect-spool" && I + 1 < Argc) {
      ConnectSpoolPath = Argv[++I];
    } else if (Arg == "--connect-spool-cap" && I + 1 < Argc) {
      ConnectSpoolCap = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--connect-drain-ms" && I + 1 < Argc) {
      ConnectDrainMs = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  // Pick the sink. v2 is the default: its frames are checksummed and
  // durable as written, so a crash costs at most the events still in
  // per-thread buffers (docs/ROBUSTNESS.md).
  std::unique_ptr<FileSink> V1;
  std::unique_ptr<SegmentedFileSink> V2;
  std::unique_ptr<AsyncLogSink> Async;
  std::unique_ptr<FileByteOutput> FileOut;
  std::unique_ptr<SocketByteOutput> SocketOut;
  std::unique_ptr<SpoolingSocketOutput> SpoolOut;
  std::unique_ptr<TeeByteOutput> Tee;
  LogSink *Sink = nullptr;
  if (!ConnectPath.empty() && Format == "v1") {
    std::fprintf(stderr,
                 "error: --connect streams the v2 segmented format; "
                 "it cannot be combined with --format v1\n");
    return 2;
  }
  if (Format == "v1") {
    V1 = std::make_unique<FileSink>(OutPath, /*NumTimestampCounters=*/128);
    if (!V1->ok()) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   OutPath.c_str());
      return 1;
    }
    Sink = V1.get();
  } else {
    SegmentedFileSink::Options SinkOpts;
    SinkOpts.Compress = (Format == "v2z");
    if (!ConnectPath.empty()) {
      // Tee the exact byte stream to the collector: the file stays
      // authoritative (its WriteResult governs retries), and only
      // file-accepted bytes are forwarded, so daemon and disk see
      // byte-identical v2 streams.
      FileOut = std::make_unique<FileByteOutput>(OutPath);
      if (!FileOut->ok()) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     OutPath.c_str());
        return 1;
      }
      ByteOutput *Secondary = nullptr;
      if (ConnectLegacy) {
        SocketOut = std::make_unique<SocketByteOutput>(ConnectPath);
        if (!SocketOut->ok()) {
          std::fprintf(stderr,
                       "error: cannot connect to collector socket '%s'\n",
                       ConnectPath.c_str());
          return 1;
        }
        Secondary = SocketOut.get();
      } else {
        // Fault-tolerant transport: the stream survives torn connections
        // and daemon restarts via the on-disk spool and the resume
        // handshake; a daemon that never appears only costs the spool.
        SpoolingSocketOutput::Options SpoolOpts;
        SpoolOpts.SocketPath = ConnectPath;
        SpoolOpts.SpoolPath = ConnectSpoolPath.empty()
                                  ? OutPath + ".spool"
                                  : ConnectSpoolPath;
        SpoolOpts.SpoolCapBytes = ConnectSpoolCap;
        SpoolOpts.DrainDeadlineMs = ConnectDrainMs;
        SpoolOpts.JitterSeed = Params.Seed + 1;
        SpoolOut = std::make_unique<SpoolingSocketOutput>(
            std::move(SpoolOpts));
        Secondary = SpoolOut.get();
      }
      Tee = std::make_unique<TeeByteOutput>(*FileOut, *Secondary);
      SinkOpts.Output = Tee.get();
    }
    V2 = std::make_unique<SegmentedFileSink>(
        OutPath, /*NumTimestampCounters=*/128, SinkOpts);
    if (!V2->ok()) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   OutPath.c_str());
      return 1;
    }
    Sink = V2.get();
  }
  // The durable sink, as distinct from the front the runtime writes to.
  // The fault-injection watcher below polls it so --kill-after-bytes
  // triggers on bytes the file actually accepted, not bytes queued.
  LogSink *Durable = Sink;
  if (AsyncFlush) {
    AsyncLogSink::Options AsyncOpts;
    AsyncOpts.Policy = Policy;
    Async = std::make_unique<AsyncLogSink>(*Sink, AsyncOpts);
    Sink = Async.get();
  }

  RuntimeConfig Config;
  Config.Mode = Mode;
  Config.Seed = Params.Seed;
  Config.DisableElision = NoElide;
  Runtime RT(Config, Sink);
  std::unique_ptr<Workload> W = makeWorkload(*Kind);
  W->bind(RT);
  if (Elide) {
    AnalysisResult Analysis = analyzeAndInstall(RT);
    std::fprintf(stderr, "static analysis: %zu/%zu declared sites %s\n",
                 Analysis.ElidableSites, Analysis.DeclaredSites,
                 NoElide ? "elidable (elision disabled by --no-elide)"
                         : "elided");
  }

  const std::string SidecarPath = OutPath + ".metrics.json";
  ActiveSink = Sink;
  ActiveRuntime = &RT;
  ActiveSidecarPath = SidecarPath.c_str();
  installCrashPath();

  // Deterministic fault injection for the recovery tests: a watcher kills
  // or aborts the process once the sink has accepted N payload bytes,
  // mid-run, exactly like a crashing production workload would.
  if (KillAfterBytes != 0 || AbortAfterBytes != 0) {
    std::thread([Durable, KillAfterBytes, AbortAfterBytes] {
      for (;;) {
        const uint64_t B = Durable->bytesWritten();
        if (KillAfterBytes != 0 && B >= KillAfterBytes)
          ::kill(::getpid(), SIGKILL);
        if (AbortAfterBytes != 0 && B >= AbortAfterBytes)
          std::abort();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }).detach();
  }

  std::fprintf(stderr, "running %s in %s mode (scale %.2f)...\n",
               W->name().c_str(), runModeName(Mode), Params.Scale);
  W->run(RT, Params);

  bool SinkClean = true;
  if (Async) {
    // Drain the hand-off queue and retire the flusher before sealing the
    // durable sink, so the footer covers every accepted chunk.
    const bool AsyncClean = Async->close();
    const MpscQueueStats QS = Async->queueStats();
    std::fprintf(stderr,
                 "async flush (%s): %llu chunk(s) enqueued, %llu dropped, "
                 "queue depth high-water %zu, %llu producer park(s)\n",
                 flushPolicyName(Policy),
                 static_cast<unsigned long long>(Async->chunksEnqueued()),
                 static_cast<unsigned long long>(Async->chunksDropped()),
                 QS.DepthHighWater,
                 static_cast<unsigned long long>(QS.ProducerParks));
    SinkClean = AsyncClean;
  }
  if (V2) {
    SinkClean = V2->close() && SinkClean;
    if (!SinkClean)
      std::fprintf(stderr,
                   "warning: %llu event(s) lost before reaching the file "
                   "(%llu retries)\n",
                   static_cast<unsigned long long>(V2->eventsDropped()),
                   static_cast<unsigned long long>(V2->retries()));
  } else {
    V1->close();
  }
  uint64_t StreamLost = 0;
  if (SpoolOut) {
    // Seal the transport: drains the spool backlog (reconnecting under
    // the --connect-drain-ms budget) before loss is assessed.
    SpoolOut->close();
    StreamLost = SpoolOut->bytesLost() + Tee->secondaryBytesLost();
    if (StreamLost == 0)
      std::fprintf(
          stderr,
          "streamed the trace to collector at %s "
          "(%llu reconnect(s), %llu byte(s) spooled, %llu replayed)\n",
          ConnectPath.c_str(),
          static_cast<unsigned long long>(SpoolOut->reconnects()),
          static_cast<unsigned long long>(SpoolOut->spooledBytes()),
          static_cast<unsigned long long>(SpoolOut->replayedBytes()));
    else
      std::fprintf(
          stderr,
          "warning: %llu streamed byte(s) lost (%llu spool-cap gap, "
          "%llu undelivered at exit; the on-disk trace is complete)\n",
          static_cast<unsigned long long>(StreamLost),
          static_cast<unsigned long long>(SpoolOut->gapBytes()),
          static_cast<unsigned long long>(SpoolOut->undeliveredBytes()));
  } else if (Tee) {
    StreamLost = Tee->secondaryBytesLost();
    if (Tee->secondaryOk())
      std::fprintf(stderr, "streamed the trace to collector at %s\n",
                   ConnectPath.c_str());
    else
      std::fprintf(stderr,
                   "warning: collector connection lost; %llu byte(s) were "
                   "not streamed (the on-disk trace is complete)\n",
                   static_cast<unsigned long long>(
                       Tee->secondaryBytesLost()));
  }
  // The run is over; keep the handlers but detach the sink (it is closed).
  ActiveSink = nullptr;

  RuntimeStats Stats = RT.stats();
  std::fprintf(stderr,
               "wrote %s (%s): %.1f MB, %llu memory ops, %llu sync ops, "
               "%u threads, %zu functions\n",
               OutPath.c_str(), Format.c_str(),
               static_cast<double>(Sink->bytesWritten()) / 1e6,
               static_cast<unsigned long long>(Stats.MemOpsLogged),
               static_cast<unsigned long long>(Stats.SyncOps),
               RT.numThreads(), RT.registry().size());

  // Streaming telemetry rides in the same sidecar so loss is always
  // visible post-hoc, strict mode or not: sink.tee.lost_bytes is the
  // one-number answer to "did the collector see everything?".
  if (RT.metrics() && Tee) {
    telemetry::MetricsRegistry *M = RT.metrics();
    telemetry::ThreadSlab &Slab = M->threadSlab();
    Slab.add(M->counter("sink.tee.lost_bytes"), StreamLost);
    if (SpoolOut) {
      Slab.add(M->counter("sink.tee.reconnects"), SpoolOut->reconnects());
      Slab.add(M->counter("sink.tee.spooled_bytes"),
               SpoolOut->spooledBytes());
      Slab.add(M->counter("sink.tee.replayed_bytes"),
               SpoolOut->replayedBytes());
      Slab.add(M->counter("sink.tee.cap_hits"), SpoolOut->capHits());
      Slab.add(M->counter("sink.tee.trimmed_bytes"),
               SpoolOut->trimmedBytes());
      Slab.add(M->counter("sink.tee.gap_bytes"), SpoolOut->gapBytes());
      Slab.add(M->counter("sink.tee.undelivered_bytes"),
               SpoolOut->undeliveredBytes());
      Slab.add(M->counter("sink.tee.spool_errors"),
               SpoolOut->spoolErrors());
    }
  }

  // Sidecar telemetry: the log format carries no runtime counters, so
  // literace-stat reads them from <out>.metrics.json. Suppressed by the
  // LITERACE_TELEMETRY kill switch along with all other telemetry.
  if (RT.metrics()) {
    telemetry::MetricsSnapshot Snap = RT.metricsSnapshot();
    // Stamp capture time and pid so sidecars from concurrent processes
    // merge and order unambiguously (literace-stat --metrics a --metrics b).
    Snap.stampCapture();
    if (std::FILE *File = std::fopen(SidecarPath.c_str(), "wb")) {
      const std::string Json = Snap.toJson();
      const bool Ok =
          std::fwrite(Json.data(), 1, Json.size(), File) == Json.size();
      std::fclose(File);
      if (Ok)
        std::fprintf(stderr, "wrote %s (%zu metrics)\n", SidecarPath.c_str(),
                     Snap.Counters.size() + Snap.Gauges.size() +
                         Snap.Histograms.size());
    } else {
      std::fprintf(stderr, "warning: cannot write '%s'\n",
                   SidecarPath.c_str());
    }
  }
  ActiveRuntime = nullptr;
  ActiveSidecarPath = nullptr;
  // Data lost at the sink means the log on disk under-represents the run;
  // report it in the exit code so scripted pipelines notice. Streaming
  // loss counts only under --connect-strict (the file stays complete).
  if (ConnectStrict && StreamLost != 0) {
    std::fprintf(stderr,
                 "error: --connect-strict: %llu streamed byte(s) lost\n",
                 static_cast<unsigned long long>(StreamLost));
    return 1;
  }
  return SinkClean ? 0 : 1;
}
