//===-- tools/literace-analyze.cpp - Static-analysis inspector --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Runs the pre-execution static analysis over a workload's declared access
// model and prints the resulting elision policy with per-variable
// justification: which pass (thread-escape, read-only, lockset, mhp)
// proved each variable race-free, and which sites therefore skip logging
// (including sites elided as Redundant by the redundancy pass). With
// --audit it additionally executes the workload fully logged, applies the
// policy offline, verifies that detection still finds every seeded race
// family found on the full trace, and repeats the check with each pass
// disabled in turn to attribute every elided site and log-reduction
// percentage point to exactly one pass. With --fuzz it runs the
// model-mutation conservatism fuzzer: random monotone weakenings of the
// model must never make a new site elidable.
//
// Usage:
//   literace-analyze <workload> [--audit] [--fuzz] [--explain <var>]
//                    [--passes <p1,p2,...|all>] [--json[=PATH]]
//                    [--scale <x>] [--seed <n>]
//
// Exit codes: 0 ok, 2 usage error (unknown workload, flag, pass, or
// variable), 4 audit failed (a seeded race family detected on the full
// trace disappeared after elision, in the full policy or any single-pass
// ablation), 5 conservatism fuzzer found a violation.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModelMutation.h"
#include "analysis/StaticAnalysis.h"
#include "detector/HBDetector.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

using namespace literace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <workload> [--audit] [--fuzz] [--explain <var>]\n"
      "          [--passes <p1,p2,...|all>] [--json[=PATH]]\n"
      "          [--scale <x>] [--seed <n>]\n"
      "passes: thread-escape read-only lockset mhp redundancy\n"
      "workloads:\n%s\n",
      Argv0, workloadNameList("  ").c_str());
  return 2;
}

std::string pcLabel(const FunctionRegistry &Reg, Pc Site) {
  return Reg.name(pcFunction(Site)) + ":" + std::to_string(pcSite(Site));
}

/// Labels of the seeded families \p Report detects, per \p Manifest.
std::set<std::string>
familiesDetected(const RaceReport &Report,
                 const std::vector<SeededRaceSpec> &Manifest) {
  std::vector<StaticRace> Races = Report.staticRaces();
  std::set<std::string> Found;
  for (const SeededRaceSpec &Spec : Manifest) {
    std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
    for (const StaticRace &Race : Races)
      if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second)) {
        Found.insert(Spec.Label);
        break;
      }
  }
  return Found;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += std::string("\\") + C;
    else if (static_cast<unsigned char>(C) < 0x20)
      Out += ' ';
    else
      Out += C;
  }
  return Out;
}

/// Everything the optional --json dump needs, accumulated as the run
/// progresses so audit/fuzz results land in the same document.
struct JsonState {
  bool AuditRan = false;
  bool AuditPassed = false;
  size_t MemFull = 0, MemFiltered = 0;
  size_t FamiliesTotal = 0, FamiliesFull = 0, FamiliesFiltered = 0;
  std::vector<std::string> Lost;
  struct PassRow {
    std::string Name;
    size_t Sites = 0;
    uint64_t Records = 0;
    double Points = 0.0;
    bool Sound = true;
  };
  std::vector<PassRow> Passes;
  bool FuzzRan = false;
  MutationFuzzResult Fuzz;
};

void writeJson(std::FILE *Out, const std::string &Workload,
               const AnalysisOptions &Opts, const AccessModel &Model,
               const AnalysisResult &Analysis, const FunctionRegistry &Reg,
               const JsonState &State) {
  std::fprintf(Out, "{\n  \"workload\": \"%s\",\n  \"passes\": [",
               jsonEscape(Workload).c_str());
  bool First = true;
  for (size_t I = 0; I != kNumAnalysisPasses; ++I)
    if (Opts.enabled(static_cast<AnalysisPass>(I))) {
      std::fprintf(Out, "%s\"%s\"", First ? "" : ", ",
                   passName(static_cast<AnalysisPass>(I)));
      First = false;
    }
  std::fprintf(Out,
               "],\n  \"declared_sites\": %zu,\n  \"elidable_sites\": %zu,\n"
               "  \"redundant_sites\": %zu,\n  \"fingerprint\": \"%016llx\",\n",
               Analysis.DeclaredSites, Analysis.ElidableSites,
               Analysis.RedundantSites,
               static_cast<unsigned long long>(Analysis.Policy.fingerprint()));
  std::fprintf(Out, "  \"vars\": [\n");
  for (size_t I = 0; I != Analysis.Vars.size(); ++I) {
    const VarVerdict &V = Analysis.Vars[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"verdict\": \"%s\", "
                 "\"sites_elided\": %zu, \"why\": \"%s\"",
                 jsonEscape(Model.varName(V.Var)).c_str(),
                 verdictName(V.Kind), V.SitesElided,
                 jsonEscape(V.Why).c_str());
    if (V.Kind != VarVerdictKind::Racy)
      std::fprintf(Out, ", \"proved_by\": \"%s\"", passName(V.ProvedBy));
    std::fprintf(Out, ", \"notes\": [");
    for (size_t N = 0; N != V.PassNotes.size(); ++N)
      std::fprintf(Out, "%s\"%s\"", N ? ", " : "",
                   jsonEscape(V.PassNotes[N]).c_str());
    std::fprintf(Out, "]}%s\n", I + 1 == Analysis.Vars.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n  \"elidable\": [\n");
  std::vector<Pc> Sites = Analysis.Policy.elidableSites();
  for (size_t I = 0; I != Sites.size(); ++I)
    std::fprintf(Out, "    {\"site\": \"%s\", \"class\": \"%s\"}%s\n",
                 jsonEscape(pcLabel(Reg, Sites[I])).c_str(),
                 elisionClassName(Analysis.Policy.elisionClass(Sites[I])),
                 I + 1 == Sites.size() ? "" : ",");
  std::fprintf(Out, "  ]");
  if (State.AuditRan) {
    std::fprintf(Out,
                 ",\n  \"audit\": {\"passed\": %s, \"mem_full\": %zu, "
                 "\"mem_filtered\": %zu, \"families\": %zu, "
                 "\"families_full\": %zu, \"families_filtered\": %zu, "
                 "\"lost\": [",
                 State.AuditPassed ? "true" : "false", State.MemFull,
                 State.MemFiltered, State.FamiliesTotal, State.FamiliesFull,
                 State.FamiliesFiltered);
    for (size_t I = 0; I != State.Lost.size(); ++I)
      std::fprintf(Out, "%s\"%s\"", I ? ", " : "",
                   jsonEscape(State.Lost[I]).c_str());
    std::fprintf(Out, "], \"per_pass\": [\n");
    for (size_t I = 0; I != State.Passes.size(); ++I) {
      const JsonState::PassRow &Row = State.Passes[I];
      std::fprintf(Out,
                   "    {\"pass\": \"%s\", \"sites\": %zu, \"records\": "
                   "%llu, \"reduction_points\": %.4f, \"sound\": %s}%s\n",
                   Row.Name.c_str(), Row.Sites,
                   static_cast<unsigned long long>(Row.Records), Row.Points,
                   Row.Sound ? "true" : "false",
                   I + 1 == State.Passes.size() ? "" : ",");
    }
    std::fprintf(Out, "  ]}");
  }
  if (State.FuzzRan)
    std::fprintf(Out,
                 ",\n  \"fuzz\": {\"trials\": %zu, \"mutations\": %zu, "
                 "\"violations\": %zu, \"first_violation\": \"%s\"}",
                 State.Fuzz.Trials, State.Fuzz.MutationsApplied,
                 State.Fuzz.Violations,
                 jsonEscape(State.Fuzz.FirstViolation).c_str());
  std::fprintf(Out, "\n}\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  auto Kind = workloadKindByName(Argv[1]);
  if (!Kind) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Argv[1]);
    return usage(Argv[0]);
  }
  bool Audit = false, Fuzz = false;
  std::string ExplainVar;
  bool Json = false;
  std::string JsonPath;
  AnalysisOptions Opts;
  WorkloadParams Params;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--audit") {
      Audit = true;
    } else if (Arg == "--fuzz") {
      Fuzz = true;
    } else if (Arg == "--explain" && I + 1 < Argc) {
      ExplainVar = Argv[++I];
    } else if (Arg == "--json" || Arg.rfind("--json=", 0) == 0) {
      Json = true;
      if (Arg.size() > 7)
        JsonPath = Arg.substr(7);
    } else if (Arg == "--passes" && I + 1 < Argc) {
      std::string List = Argv[++I];
      if (List != "all") {
        Opts = AnalysisOptions::none();
        size_t Pos = 0;
        while (Pos <= List.size()) {
          size_t Comma = List.find(',', Pos);
          std::string Name = List.substr(
              Pos, Comma == std::string::npos ? std::string::npos
                                              : Comma - Pos);
          bool Known = false;
          for (size_t P = 0; P != kNumAnalysisPasses; ++P)
            if (Name == passName(static_cast<AnalysisPass>(P))) {
              Opts.set(static_cast<AnalysisPass>(P), true);
              Known = true;
            }
          if (!Known) {
            std::fprintf(stderr, "error: unknown pass '%s'\n", Name.c_str());
            return usage(Argv[0]);
          }
          if (Comma == std::string::npos)
            break;
          Pos = Comma + 1;
        }
      }
    } else if (Arg == "--scale" && I + 1 < Argc) {
      Params.Scale = std::atof(Argv[++I]);
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Params.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  // Bind only: registers functions and declares the access model without
  // running a single workload thread — the point of a PRE-execution pass.
  std::unique_ptr<Workload> W = makeWorkload(*Kind);
  MemorySink Sink(/*NumTimestampCounters=*/128);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.Seed = Params.Seed;
  Runtime RT(Config, &Sink);
  W->bind(RT);

  const AccessModel &Model = RT.accessModel();
  AnalysisResult Analysis = analyzeAccessModel(Model, Opts);
  const FunctionRegistry &Reg = RT.registry();
  JsonState State;
  // Bare --json replaces the human-readable report on stdout; --json=PATH
  // keeps the report and writes the dump to the file.
  bool Quiet = Json && JsonPath.empty();

  if (!ExplainVar.empty()) {
    std::optional<VarId> Target;
    for (VarId V = 0; V != Model.numVars(); ++V)
      if (Model.varName(V) == ExplainVar)
        Target = V;
    if (!Target) {
      std::fprintf(stderr, "error: unknown variable '%s'\nvariables:\n",
                   ExplainVar.c_str());
      for (VarId V = 0; V != Model.numVars(); ++V)
        std::fprintf(stderr, "  %s\n", Model.varName(V).c_str());
      return 2;
    }
    const VarVerdict &V = Analysis.Vars[*Target];
    std::printf("%s: %s\n", ExplainVar.c_str(), verdictName(V.Kind));
    std::printf("  %s\n", V.Why.c_str());
    std::printf("proof chain (passes in priority order):\n");
    for (const std::string &Note : V.PassNotes)
      std::printf("  %s\n", Note.c_str());
    std::printf("sites elided: %zu\n", V.SitesElided);
    for (Pc Site : Analysis.Policy.elidableSites()) {
      bool Mine = false;
      for (const SiteDecl &D : Model.declarations())
        if (D.Site == Site && D.Var == *Target)
          Mine = true;
      if (Mine)
        std::printf("  %s (%s)\n", pcLabel(Reg, Site).c_str(),
                    elisionClassName(Analysis.Policy.elisionClass(Site)));
    }
  } else if (!Quiet) {
    std::printf("%s: %zu vars, %zu locks, %zu roles, %zu declared sites\n",
                W->name().c_str(), Model.numVars(), Model.numLocks(),
                Model.numRoles(), Analysis.DeclaredSites);
    std::printf(
        "policy: %zu/%zu sites elidable (%zu redundant), fingerprint "
        "%016llx\n\n",
        Analysis.ElidableSites, Analysis.DeclaredSites,
        Analysis.RedundantSites,
        static_cast<unsigned long long>(Analysis.Policy.fingerprint()));

    TableFormatter Table("Per-variable verdicts");
    Table.addRow({"Variable", "Verdict", "Sites Elided", "Justification"});
    for (const VarVerdict &V : Analysis.Vars)
      Table.addRow({Model.varName(V.Var), verdictName(V.Kind),
                    std::to_string(V.SitesElided), V.Why});
    Table.print();

    if (!Analysis.Policy.empty()) {
      std::printf("\nelidable sites:\n");
      for (Pc Site : Analysis.Policy.elidableSites()) {
        ElisionClass Class = Analysis.Policy.elisionClass(Site);
        std::printf("  %s%s\n", pcLabel(Reg, Site).c_str(),
                    Class == ElisionClass::Redundant ? " (redundant)" : "");
      }
    }
  }

  int ExitCode = 0;

  if (Audit) {
    // ---- Soundness audit: full log once, elide offline, compare the
    // detected seeded families on the identical interleaving.
    if (!Quiet)
      std::printf("\nrunning soundness audit (full log at scale %.2f)...\n",
                  Params.Scale);
    W->run(RT, Params);
    Trace Full = Sink.takeTrace();

    RaceReport FullReport, FilteredReport;
    bool Consistent = detectRaces(Full, FullReport);
    Trace Filtered = filterTrace(Full, Analysis.Policy);
    Consistent &= detectRaces(Filtered, FilteredReport);

    const std::vector<SeededRaceSpec> Manifest = W->seededRaces();
    std::set<std::string> InFull = familiesDetected(FullReport, Manifest);
    std::set<std::string> InFiltered =
        familiesDetected(FilteredReport, Manifest);

    size_t MemFull = Full.memoryOps(), MemFiltered = Filtered.memoryOps();
    if (!Quiet) {
      std::printf("full log: %zu memory records, %zu/%zu seeded families "
                  "detected\n",
                  MemFull, InFull.size(), Manifest.size());
      std::printf("after elision: %zu memory records (-%.1f%%), %zu/%zu "
                  "seeded families detected\n",
                  MemFiltered,
                  MemFull ? 100.0 *
                                static_cast<double>(MemFull - MemFiltered) /
                                static_cast<double>(MemFull)
                          : 0.0,
                  InFiltered.size(), Manifest.size());
    }

    bool Lost = false;
    for (const std::string &Label : InFull)
      if (!InFiltered.count(Label)) {
        if (!Quiet)
          std::printf("LOST: %s\n", Label.c_str());
        State.Lost.push_back(Label);
        Lost = true;
      }

    // ---- Per-pass differential audit on the same trace: disable each
    // enabled pass in turn, credit it with the sites and log-reduction
    // points only it proves, and re-audit the ablated policy so no pass
    // can hide a soundness bug behind another pass's proof.
    if (!Quiet)
      std::printf("\nper-pass differential audit:\n");
    for (size_t PI = 0; PI != kNumAnalysisPasses; ++PI) {
      AnalysisPass Pass = static_cast<AnalysisPass>(PI);
      if (!Opts.enabled(Pass))
        continue;
      std::vector<Pc> Attributed = passAttribution(Model, Pass);
      std::set<Pc> AttrSet(Attributed.begin(), Attributed.end());
      uint64_t Records = 0;
      for (const std::vector<EventRecord> &Stream : Full.PerThread)
        for (const EventRecord &R : Stream)
          if (isMemoryKind(R.Kind) && AttrSet.count(R.Pc))
            ++Records;
      double Points =
          MemFull ? static_cast<double>(Records) /
                        static_cast<double>(MemFull)
                  : 0.0;

      AnalysisResult Ablated =
          analyzeAccessModel(Model, AnalysisOptions::allExcept(Pass));
      RaceReport AblatedReport;
      bool PassSound =
          detectRaces(filterTrace(Full, Ablated.Policy), AblatedReport);
      std::set<std::string> InAblated =
          familiesDetected(AblatedReport, Manifest);
      for (const std::string &Label : InFull)
        if (!InAblated.count(Label))
          PassSound = false;
      if (!PassSound)
        Lost = true;

      if (!Quiet)
        std::printf("  %-13s %2zu sites, %8llu records (%5.1f pts), "
                    "ablated audit %s\n",
                    passName(Pass), AttrSet.size(),
                    static_cast<unsigned long long>(Records), 100.0 * Points,
                    PassSound ? "sound" : "RACE LOST");
      State.Passes.push_back({passName(Pass), AttrSet.size(), Records,
                              Points, PassSound});
    }

    State.AuditRan = true;
    State.MemFull = MemFull;
    State.MemFiltered = MemFiltered;
    State.FamiliesTotal = Manifest.size();
    State.FamiliesFull = InFull.size();
    State.FamiliesFiltered = InFiltered.size();
    State.AuditPassed = Consistent && !Lost;
    if (!Consistent) {
      if (!Quiet)
        std::printf("audit FAILED: replay found the log inconsistent\n");
      ExitCode = 4;
    } else if (Lost) {
      if (!Quiet)
        std::printf("audit FAILED: elision hid seeded races\n");
      ExitCode = 4;
    } else if (!Quiet) {
      std::printf("audit passed: elision hides no seeded race in any "
                  "configuration\n");
    }
  }

  if (Fuzz) {
    State.Fuzz = fuzzModelConservatism(Model);
    State.FuzzRan = true;
    if (!Quiet)
      std::printf("\nconservatism fuzzer: %zu trials, %zu mutations, %zu "
                  "violations\n",
                  State.Fuzz.Trials, State.Fuzz.MutationsApplied,
                  State.Fuzz.Violations);
    if (!State.Fuzz.passed()) {
      if (!Quiet)
        std::printf("fuzzer FAILED: %s\n",
                    State.Fuzz.FirstViolation.c_str());
      if (ExitCode == 0)
        ExitCode = 5;
    } else if (!Quiet) {
      std::printf("fuzzer passed: no weakening increased elision\n");
    }
  }

  if (Json) {
    std::FILE *Out = stdout;
    if (!JsonPath.empty()) {
      Out = std::fopen(JsonPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
        return 2;
      }
    }
    writeJson(Out, Argv[1], Opts, Model, Analysis, Reg, State);
    if (Out != stdout)
      std::fclose(Out);
  }
  return ExitCode;
}
