//===-- tools/literace-analyze.cpp - Static-analysis inspector --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Runs the pre-execution static analysis over a workload's declared access
// model and prints the resulting elision policy with per-variable
// justification: which analysis (thread-escape, read-only, lockset) proved
// each variable race-free, and which sites therefore skip logging. With
// --audit it additionally executes the workload fully logged, applies the
// policy offline, and verifies that detection still finds every seeded
// race family found on the full trace.
//
// Usage:
//   literace-analyze <workload> [--audit] [--scale <x>] [--seed <n>]
//
// Exit codes: 0 ok, 2 usage error, 4 audit failed (a seeded race family
// detected on the full trace disappeared after elision).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "detector/HBDetector.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>

using namespace literace;

namespace {

std::optional<WorkloadKind> parseWorkload(const std::string &Name) {
  if (Name == "channel-stdlib")
    return WorkloadKind::ChannelWithStdLib;
  if (Name == "channel")
    return WorkloadKind::Channel;
  if (Name == "concrt-messaging")
    return WorkloadKind::ConcRTMessaging;
  if (Name == "concrt-scheduling")
    return WorkloadKind::ConcRTScheduling;
  if (Name == "httpd-1")
    return WorkloadKind::Httpd1;
  if (Name == "httpd-2")
    return WorkloadKind::Httpd2;
  if (Name == "browser-start")
    return WorkloadKind::BrowserStart;
  if (Name == "browser-render")
    return WorkloadKind::BrowserRender;
  if (Name == "lkrhash")
    return WorkloadKind::LKRHash;
  if (Name == "lflist")
    return WorkloadKind::LFList;
  if (Name == "scicompute")
    return WorkloadKind::SciComputeFn;
  return std::nullopt;
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <workload> [--audit] [--scale <x>] [--seed <n>]\n"
      "workloads: channel-stdlib channel concrt-messaging\n"
      "           concrt-scheduling httpd-1 httpd-2 browser-start\n"
      "           browser-render lkrhash lflist scicompute\n",
      Argv0);
  return 2;
}

std::string pcLabel(const FunctionRegistry &Reg, Pc Site) {
  return Reg.name(pcFunction(Site)) + ":" + std::to_string(pcSite(Site));
}

/// Labels of the seeded families \p Report detects, per \p Manifest.
std::set<std::string>
familiesDetected(const RaceReport &Report,
                 const std::vector<SeededRaceSpec> &Manifest) {
  std::vector<StaticRace> Races = Report.staticRaces();
  std::set<std::string> Found;
  for (const SeededRaceSpec &Spec : Manifest) {
    std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
    for (const StaticRace &Race : Races)
      if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second)) {
        Found.insert(Spec.Label);
        break;
      }
  }
  return Found;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  auto Kind = parseWorkload(Argv[1]);
  if (!Kind) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Argv[1]);
    return usage(Argv[0]);
  }
  bool Audit = false;
  WorkloadParams Params;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--audit") {
      Audit = true;
    } else if (Arg == "--scale" && I + 1 < Argc) {
      Params.Scale = std::atof(Argv[++I]);
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Params.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  // Bind only: registers functions and declares the access model without
  // running a single workload thread — the point of a PRE-execution pass.
  std::unique_ptr<Workload> W = makeWorkload(*Kind);
  MemorySink Sink(/*NumTimestampCounters=*/128);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.Seed = Params.Seed;
  Runtime RT(Config, &Sink);
  W->bind(RT);

  const AccessModel &Model = RT.accessModel();
  AnalysisResult Analysis = analyzeAccessModel(Model);
  const FunctionRegistry &Reg = RT.registry();

  std::printf("%s: %zu vars, %zu locks, %zu roles, %zu declared sites\n",
              W->name().c_str(), Model.numVars(), Model.numLocks(),
              Model.numRoles(), Analysis.DeclaredSites);
  std::printf("policy: %zu/%zu sites elidable, fingerprint %016llx\n\n",
              Analysis.ElidableSites, Analysis.DeclaredSites,
              static_cast<unsigned long long>(Analysis.Policy.fingerprint()));

  TableFormatter Table("Per-variable verdicts");
  Table.addRow({"Variable", "Verdict", "Sites Elided", "Justification"});
  for (const VarVerdict &V : Analysis.Vars)
    Table.addRow({Model.varName(V.Var), verdictName(V.Kind),
                  std::to_string(V.SitesElided), V.Why});
  Table.print();

  if (!Analysis.Policy.empty()) {
    std::printf("\nelidable sites:\n");
    for (Pc Site : Analysis.Policy.elidableSites())
      std::printf("  %s\n", pcLabel(Reg, Site).c_str());
  }

  if (!Audit)
    return 0;

  // ---- Soundness audit: full log once, elide offline, compare the
  // detected seeded families on the identical interleaving.
  std::printf("\nrunning soundness audit (full log at scale %.2f)...\n",
              Params.Scale);
  W->run(RT, Params);
  Trace Full = Sink.takeTrace();

  RaceReport FullReport, FilteredReport;
  bool Consistent = detectRaces(Full, FullReport);
  Trace Filtered = filterTrace(Full, Analysis.Policy);
  Consistent &= detectRaces(Filtered, FilteredReport);

  const std::vector<SeededRaceSpec> Manifest = W->seededRaces();
  std::set<std::string> InFull = familiesDetected(FullReport, Manifest);
  std::set<std::string> InFiltered = familiesDetected(FilteredReport, Manifest);

  size_t MemFull = Full.memoryOps(), MemFiltered = Filtered.memoryOps();
  std::printf("full log: %zu memory records, %zu/%zu seeded families "
              "detected\n",
              MemFull, InFull.size(), Manifest.size());
  std::printf("after elision: %zu memory records (-%.1f%%), %zu/%zu seeded "
              "families detected\n",
              MemFiltered,
              MemFull ? 100.0 * static_cast<double>(MemFull - MemFiltered) /
                            static_cast<double>(MemFull)
                      : 0.0,
              InFiltered.size(), Manifest.size());

  bool Lost = false;
  for (const std::string &Label : InFull)
    if (!InFiltered.count(Label)) {
      std::printf("LOST: %s\n", Label.c_str());
      Lost = true;
    }
  if (!Consistent) {
    std::printf("audit FAILED: replay found the log inconsistent\n");
    return 4;
  }
  if (Lost) {
    std::printf("audit FAILED: elision hid seeded races\n");
    return 4;
  }
  std::printf("audit passed: elision hides no seeded race\n");
  return 0;
}
