//===-- examples/quickstart.cpp - LiteRace in 80 lines ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The smallest end-to-end use of the library:
//   1. create a Runtime in LiteRace mode (sampled memory logging, every
//      synchronization operation logged),
//   2. run two threads through the instrumentation API — one shared
//      counter properly protected by a Mutex, one updated bare,
//   3. replay the log through the happens-before detector,
//   4. print the races: the bare counter is reported, the locked one not.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "runtime/Runtime.h"
#include "sync/Primitives.h"

#include <cstdio>

using namespace literace;

int main() {
  // A MemorySink collects the log in-process; use FileSink to write the
  // paper's on-disk format instead.
  MemorySink Sink;
  RuntimeConfig Config;
  Config.Mode = RunMode::LiteRace; // The paper's deployment configuration.
  Runtime RT(Config, &Sink);

  // Every instrumented code region registers once, like the Phoenix
  // rewriter enumerating functions in the binary.
  FunctionId Worker = RT.registry().registerFunction("worker.step");

  uint64_t BareCounter = 0;    // Updated without synchronization: a bug.
  uint64_t LockedCounter = 0;  // Properly protected.
  Mutex Lock;

  {
    ThreadContext Main(RT);
    auto WorkerBody = [&](ThreadContext &TC) {
      for (int I = 0; I != 50000; ++I) {
        // The body receives a tracer: LoggingTracer in sampled
        // activations, NullTracer otherwise — the two compiled copies of
        // Figure 3.
        TC.run(Worker, [&](auto &T) {
          // RACE: read-modify-write with no ordering.
          T.store(&BareCounter, T.load(&BareCounter, /*Site=*/1) + 1,
                  /*Site=*/2);
          // Fine: the same pattern under a lock.
          Lock.lock(TC);
          T.store(&LockedCounter, T.load(&LockedCounter, 3) + 1, 4);
          Lock.unlock(TC);
        });
      }
    };
    Thread A(RT, Main, WorkerBody);
    Thread B(RT, Main, WorkerBody);
    A.join(Main);
    B.join(Main);
  }

  // Offline analysis (§4.4): replay the log into the happens-before
  // detector.
  RaceReport Report;
  if (!detectRaces(Sink.takeTrace(), Report)) {
    std::fprintf(stderr, "error: log was inconsistent\n");
    return 1;
  }

  std::printf("%s", Report.describe(&RT.registry()).c_str());
  std::printf("\nLiteRace sampled %llu memory operations and logged %llu "
              "synchronization operations.\n",
              static_cast<unsigned long long>(RT.stats().MemOpsLogged),
              static_cast<unsigned long long>(RT.stats().SyncOps));
  bool FoundBare = Report.contains(makePc(Worker, 1), makePc(Worker, 2)) ||
                   Report.contains(makePc(Worker, 2), makePc(Worker, 2));
  std::printf("bare counter race %s; locked counter %s.\n",
              FoundBare ? "DETECTED" : "missed (increase the run length)",
              Report.contains(makePc(Worker, 3), makePc(Worker, 4))
                  ? "FALSELY reported!"
                  : "correctly silent");
  return FoundBare ? 0 : 1;
}
