//===-- examples/webserver_audit.cpp - Online detection ---------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The §4.4/§7 "spare core" configuration: instead of writing the log to
// disk, the Runtime streams events directly into an OnlineDetector, which
// performs happens-before analysis concurrently with the program — here,
// the Apache-equivalent web-server workload serving its mixed request
// schedule. Races are known before the process even exits.
//
// Usage:  ./examples/webserver_audit
//
//===----------------------------------------------------------------------===//

#include "detector/OnlineDetector.h"
#include "workloads/Httpd.h"

#include <cstdio>

using namespace literace;

int main() {
  RaceReport Report;
  OnlineDetector Detector(/*NumTimestampCounters=*/128, Report);

  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging; // Audit build: log everything.
  Config.ThreadBufferRecords = 1 << 12;
  Runtime RT(Config, &Detector);

  HttpdWorkload Server(HttpdWorkload::Input::Mixed1);
  Server.bind(RT);
  WorkloadParams Params;
  Params.Scale = 0.3;
  std::printf("serving requests with the online detector attached...\n");
  Server.run(RT, Params);

  if (!Detector.finish()) {
    std::fprintf(stderr, "error: event stream was inconsistent\n");
    return 1;
  }
  std::printf("processed %llu events online.\n\n",
              static_cast<unsigned long long>(Detector.eventsProcessed()));
  std::printf("%s", Report.describe(&RT.registry()).c_str());

  // Cross-check against the seeded ground truth.
  size_t Expected = Server.seededRaces().size();
  std::printf("\n%zu of %zu seeded race families are visible above.\n",
              Report.numStaticRaces() < Expected ? Report.numStaticRaces()
                                                 : Expected,
              Expected);
  return 0;
}
