//===-- examples/sampler_tuning.cpp - The coverage/overhead knob ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The paper's closing argument (§8) is that sampling gives users a KNOB:
// pay more logging for more coverage. This example turns that knob on the
// Dryad-channel workload: it runs one execution in Experiment mode with
// a family of thread-local adaptive samplers whose floor rates differ,
// then reports, for each setting, the effective sampling rate (cost) and
// the fraction of the execution's races detected (coverage).
//
// Usage:  ./examples/sampler_tuning
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <memory>

using namespace literace;

int main() {
  MemorySink Sink(128);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Runtime RT(Config, &Sink);

  // One sampler per knob position: floor rates from 10% down to 0.01%.
  const double Floors[] = {0.1, 0.01, 0.001, 0.0001};
  for (double Floor : Floors) {
    AdaptiveSchedule Sched;
    Sched.Rates.clear();
    for (double Rate = 1.0; Rate > Floor; Rate /= 10.0)
      Sched.Rates.push_back(Rate);
    Sched.Rates.push_back(Floor);
    char Name[32];
    std::snprintf(Name, sizeof(Name), "floor=%.2f%%", Floor * 100.0);
    RT.addSampler(
        std::make_unique<ThreadLocalBurstySampler>(Name, Name, Sched));
  }

  auto W = makeWorkload(WorkloadKind::ChannelWithStdLib);
  W->bind(RT);
  WorkloadParams Params;
  W->run(RT, Params);

  Trace T = Sink.takeTrace();
  RaceReport Full;
  if (!detectRaces(T, Full)) {
    std::fprintf(stderr, "error: inconsistent log\n");
    return 1;
  }
  auto FullKeys = Full.keys();

  TableFormatter Table("The sampling knob on Dryad Channel + stdlib: coverage "
                       "bought per logging budget");
  Table.addRow({"Sampler floor", "Memory ops logged", "ESR",
                "Races detected"});
  RuntimeStats Stats = RT.stats();
  for (unsigned Slot = 0; Slot != RT.numSamplers(); ++Slot) {
    RaceReport Sampled;
    ReplayOptions Options;
    Options.SamplerSlot = static_cast<int>(Slot);
    detectRaces(T, Sampled, Options);
    size_t Hit = 0;
    for (const StaticRaceKey &Key : Sampled.keys())
      Hit += FullKeys.count(Key);
    Table.addRow(
        {RT.sampler(Slot).shortName(),
         std::to_string(Stats.MemOpsPerSlot[Slot]),
         TableFormatter::percent(Stats.effectiveSamplingRate(Slot)),
         std::to_string(Hit) + "/" + std::to_string(FullKeys.size())});
  }
  Table.print();
  return 0;
}
