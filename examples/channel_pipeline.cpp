//===-- examples/channel_pipeline.cpp - Offline log analysis ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The paper's deployment workflow on the Dryad-channel benchmark:
//   1. run the instrumented application in LiteRace mode, streaming the
//      sampled log to disk (the profiler side),
//   2. later, read the log back and run happens-before detection offline
//      (the analyzer side, §4.4),
//   3. compare what the sampler caught against a full-logging run of the
//      same workload.
//
// Usage:  ./examples/channel_pipeline [log-path]
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "workloads/Channel.h"

#include <cstdio>

using namespace literace;

namespace {

/// Runs the channel workload in \p Mode, logging to \p Path. Returns the
/// races detected from the on-disk log and the function registry size.
size_t runAndDetect(RunMode Mode, const std::string &Path,
                    RaceReport &Report) {
  FileSink Sink(Path, /*NumTimestampCounters=*/128);
  if (!Sink.ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return 0;
  }
  RuntimeConfig Config;
  Config.Mode = Mode;
  Runtime RT(Config, &Sink);
  ChannelWorkload Workload(/*WithStdLib=*/true);
  Workload.bind(RT);
  WorkloadParams Params;
  Params.Scale = 0.5;
  Workload.run(RT, Params);
  Sink.close();

  auto T = readTraceFile(Path);
  if (!T) {
    std::fprintf(stderr, "error: cannot read back %s\n", Path.c_str());
    return 0;
  }
  if (!detectRaces(*T, Report))
    std::fprintf(stderr, "warning: log inconsistent\n");
  std::printf("[%s] %zu events on disk (%.1f MB), %zu static races\n",
              runModeName(Mode), T->totalEvents(),
              static_cast<double>(Sink.bytesWritten()) / 1e6,
              Report.numStaticRaces());
  return Report.numStaticRaces();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Base = Argc > 1 ? Argv[1] : "/tmp/literace_channel";

  RaceReport Sampled, Full;
  size_t SampledRaces =
      runAndDetect(RunMode::LiteRace, Base + ".literace.bin", Sampled);
  size_t FullRaces =
      runAndDetect(RunMode::FullLogging, Base + ".full.bin", Full);

  std::printf("\nRaces in the sampled (LiteRace) log:\n%s",
              Sampled.describe().c_str());
  if (FullRaces)
    std::printf("\nLiteRace found %zu of %zu races this full-logging run "
                "saw (different executions, so counts vary run to run).\n",
                SampledRaces, FullRaces);
  std::remove((Base + ".literace.bin").c_str());
  std::remove((Base + ".full.bin").c_str());
  return 0;
}
