# Empty dependencies file for LoopExtensionTest.
# This may be replaced when dependencies are built.
