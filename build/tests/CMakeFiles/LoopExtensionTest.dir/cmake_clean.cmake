file(REMOVE_RECURSE
  "CMakeFiles/LoopExtensionTest.dir/LoopExtensionTest.cpp.o"
  "CMakeFiles/LoopExtensionTest.dir/LoopExtensionTest.cpp.o.d"
  "LoopExtensionTest"
  "LoopExtensionTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LoopExtensionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
