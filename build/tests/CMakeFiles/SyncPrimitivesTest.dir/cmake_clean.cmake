file(REMOVE_RECURSE
  "CMakeFiles/SyncPrimitivesTest.dir/SyncPrimitivesTest.cpp.o"
  "CMakeFiles/SyncPrimitivesTest.dir/SyncPrimitivesTest.cpp.o.d"
  "SyncPrimitivesTest"
  "SyncPrimitivesTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SyncPrimitivesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
