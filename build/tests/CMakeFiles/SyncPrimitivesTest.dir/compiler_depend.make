# Empty compiler generated dependencies file for SyncPrimitivesTest.
# This may be replaced when dependencies are built.
