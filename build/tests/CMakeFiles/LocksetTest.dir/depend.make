# Empty dependencies file for LocksetTest.
# This may be replaced when dependencies are built.
