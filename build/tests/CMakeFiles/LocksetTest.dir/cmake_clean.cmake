file(REMOVE_RECURSE
  "CMakeFiles/LocksetTest.dir/LocksetTest.cpp.o"
  "CMakeFiles/LocksetTest.dir/LocksetTest.cpp.o.d"
  "LocksetTest"
  "LocksetTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LocksetTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
