# Empty compiler generated dependencies file for OnlineDetectorTest.
# This may be replaced when dependencies are built.
