file(REMOVE_RECURSE
  "CMakeFiles/OnlineDetectorTest.dir/OnlineDetectorTest.cpp.o"
  "CMakeFiles/OnlineDetectorTest.dir/OnlineDetectorTest.cpp.o.d"
  "OnlineDetectorTest"
  "OnlineDetectorTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OnlineDetectorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
