file(REMOVE_RECURSE
  "CMakeFiles/ReplayFuzzTest.dir/ReplayFuzzTest.cpp.o"
  "CMakeFiles/ReplayFuzzTest.dir/ReplayFuzzTest.cpp.o.d"
  "ReplayFuzzTest"
  "ReplayFuzzTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ReplayFuzzTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
