# Empty compiler generated dependencies file for ReplayFuzzTest.
# This may be replaced when dependencies are built.
