# Empty dependencies file for HBDetectorTest.
# This may be replaced when dependencies are built.
