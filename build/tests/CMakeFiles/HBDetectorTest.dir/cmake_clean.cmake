file(REMOVE_RECURSE
  "CMakeFiles/HBDetectorTest.dir/HBDetectorTest.cpp.o"
  "CMakeFiles/HBDetectorTest.dir/HBDetectorTest.cpp.o.d"
  "HBDetectorTest"
  "HBDetectorTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/HBDetectorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
