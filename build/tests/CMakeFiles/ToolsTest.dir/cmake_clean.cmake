file(REMOVE_RECURSE
  "CMakeFiles/ToolsTest.dir/ToolsTest.cpp.o"
  "CMakeFiles/ToolsTest.dir/ToolsTest.cpp.o.d"
  "ToolsTest"
  "ToolsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ToolsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
