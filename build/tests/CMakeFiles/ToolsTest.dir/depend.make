# Empty dependencies file for ToolsTest.
# This may be replaced when dependencies are built.
