file(REMOVE_RECURSE
  "CMakeFiles/TimestampTest.dir/TimestampTest.cpp.o"
  "CMakeFiles/TimestampTest.dir/TimestampTest.cpp.o.d"
  "TimestampTest"
  "TimestampTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TimestampTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
