# Empty dependencies file for TimestampTest.
# This may be replaced when dependencies are built.
