file(REMOVE_RECURSE
  "CMakeFiles/CompressedLogTest.dir/CompressedLogTest.cpp.o"
  "CMakeFiles/CompressedLogTest.dir/CompressedLogTest.cpp.o.d"
  "CompressedLogTest"
  "CompressedLogTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CompressedLogTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
