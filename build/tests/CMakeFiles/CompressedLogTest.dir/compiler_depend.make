# Empty compiler generated dependencies file for CompressedLogTest.
# This may be replaced when dependencies are built.
