file(REMOVE_RECURSE
  "CMakeFiles/ReplayTest.dir/ReplayTest.cpp.o"
  "CMakeFiles/ReplayTest.dir/ReplayTest.cpp.o.d"
  "ReplayTest"
  "ReplayTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ReplayTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
