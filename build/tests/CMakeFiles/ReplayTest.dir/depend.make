# Empty dependencies file for ReplayTest.
# This may be replaced when dependencies are built.
