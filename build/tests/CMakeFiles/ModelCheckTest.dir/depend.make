# Empty dependencies file for ModelCheckTest.
# This may be replaced when dependencies are built.
