file(REMOVE_RECURSE
  "CMakeFiles/ModelCheckTest.dir/ModelCheckTest.cpp.o"
  "CMakeFiles/ModelCheckTest.dir/ModelCheckTest.cpp.o.d"
  "ModelCheckTest"
  "ModelCheckTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ModelCheckTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
