# Empty compiler generated dependencies file for StdLibTest.
# This may be replaced when dependencies are built.
