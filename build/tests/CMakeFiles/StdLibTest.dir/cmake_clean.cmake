file(REMOVE_RECURSE
  "CMakeFiles/StdLibTest.dir/StdLibTest.cpp.o"
  "CMakeFiles/StdLibTest.dir/StdLibTest.cpp.o.d"
  "StdLibTest"
  "StdLibTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StdLibTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
