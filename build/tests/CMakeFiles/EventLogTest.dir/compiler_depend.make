# Empty compiler generated dependencies file for EventLogTest.
# This may be replaced when dependencies are built.
