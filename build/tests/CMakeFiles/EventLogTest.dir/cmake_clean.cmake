file(REMOVE_RECURSE
  "CMakeFiles/EventLogTest.dir/EventLogTest.cpp.o"
  "CMakeFiles/EventLogTest.dir/EventLogTest.cpp.o.d"
  "EventLogTest"
  "EventLogTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EventLogTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
