# Empty compiler generated dependencies file for SyncSemanticsTest.
# This may be replaced when dependencies are built.
