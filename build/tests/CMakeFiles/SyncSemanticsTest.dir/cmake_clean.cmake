file(REMOVE_RECURSE
  "CMakeFiles/SyncSemanticsTest.dir/SyncSemanticsTest.cpp.o"
  "CMakeFiles/SyncSemanticsTest.dir/SyncSemanticsTest.cpp.o.d"
  "SyncSemanticsTest"
  "SyncSemanticsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SyncSemanticsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
