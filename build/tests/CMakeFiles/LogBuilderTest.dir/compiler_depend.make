# Empty compiler generated dependencies file for LogBuilderTest.
# This may be replaced when dependencies are built.
