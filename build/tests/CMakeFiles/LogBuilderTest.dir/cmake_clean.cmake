file(REMOVE_RECURSE
  "CMakeFiles/LogBuilderTest.dir/LogBuilderTest.cpp.o"
  "CMakeFiles/LogBuilderTest.dir/LogBuilderTest.cpp.o.d"
  "LogBuilderTest"
  "LogBuilderTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LogBuilderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
