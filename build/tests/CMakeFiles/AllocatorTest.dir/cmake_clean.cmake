file(REMOVE_RECURSE
  "AllocatorTest"
  "AllocatorTest.pdb"
  "CMakeFiles/AllocatorTest.dir/AllocatorTest.cpp.o"
  "CMakeFiles/AllocatorTest.dir/AllocatorTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AllocatorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
