# Empty compiler generated dependencies file for AllocatorTest.
# This may be replaced when dependencies are built.
