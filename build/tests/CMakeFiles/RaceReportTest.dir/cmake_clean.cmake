file(REMOVE_RECURSE
  "CMakeFiles/RaceReportTest.dir/RaceReportTest.cpp.o"
  "CMakeFiles/RaceReportTest.dir/RaceReportTest.cpp.o.d"
  "RaceReportTest"
  "RaceReportTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RaceReportTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
