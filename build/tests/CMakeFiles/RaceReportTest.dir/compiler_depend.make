# Empty compiler generated dependencies file for RaceReportTest.
# This may be replaced when dependencies are built.
