file(REMOVE_RECURSE
  "CMakeFiles/TraceStatsTest.dir/TraceStatsTest.cpp.o"
  "CMakeFiles/TraceStatsTest.dir/TraceStatsTest.cpp.o.d"
  "TraceStatsTest"
  "TraceStatsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TraceStatsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
