# Empty compiler generated dependencies file for TraceStatsTest.
# This may be replaced when dependencies are built.
