file(REMOVE_RECURSE
  "CMakeFiles/SamplerTest.dir/SamplerTest.cpp.o"
  "CMakeFiles/SamplerTest.dir/SamplerTest.cpp.o.d"
  "SamplerTest"
  "SamplerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SamplerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
