# Empty compiler generated dependencies file for SamplerTest.
# This may be replaced when dependencies are built.
