file(REMOVE_RECURSE
  "CMakeFiles/FastTrackTest.dir/FastTrackTest.cpp.o"
  "CMakeFiles/FastTrackTest.dir/FastTrackTest.cpp.o.d"
  "FastTrackTest"
  "FastTrackTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FastTrackTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
