# Empty dependencies file for FastTrackTest.
# This may be replaced when dependencies are built.
