# Empty compiler generated dependencies file for VectorClockTest.
# This may be replaced when dependencies are built.
