file(REMOVE_RECURSE
  "CMakeFiles/VectorClockTest.dir/VectorClockTest.cpp.o"
  "CMakeFiles/VectorClockTest.dir/VectorClockTest.cpp.o.d"
  "VectorClockTest"
  "VectorClockTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/VectorClockTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
