# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_channel_pipeline "/root/repo/build/examples/channel_pipeline")
set_tests_properties(example_channel_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_webserver_audit "/root/repo/build/examples/webserver_audit")
set_tests_properties(example_webserver_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sampler_tuning "/root/repo/build/examples/sampler_tuning")
set_tests_properties(example_sampler_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
