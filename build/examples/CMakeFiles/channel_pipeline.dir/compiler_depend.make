# Empty compiler generated dependencies file for channel_pipeline.
# This may be replaced when dependencies are built.
