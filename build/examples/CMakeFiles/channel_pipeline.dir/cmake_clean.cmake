file(REMOVE_RECURSE
  "CMakeFiles/channel_pipeline.dir/channel_pipeline.cpp.o"
  "CMakeFiles/channel_pipeline.dir/channel_pipeline.cpp.o.d"
  "channel_pipeline"
  "channel_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
