# Empty dependencies file for sampler_tuning.
# This may be replaced when dependencies are built.
