file(REMOVE_RECURSE
  "CMakeFiles/sampler_tuning.dir/sampler_tuning.cpp.o"
  "CMakeFiles/sampler_tuning.dir/sampler_tuning.cpp.o.d"
  "sampler_tuning"
  "sampler_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
