# Empty dependencies file for webserver_audit.
# This may be replaced when dependencies are built.
