file(REMOVE_RECURSE
  "CMakeFiles/webserver_audit.dir/webserver_audit.cpp.o"
  "CMakeFiles/webserver_audit.dir/webserver_audit.cpp.o.d"
  "webserver_audit"
  "webserver_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
