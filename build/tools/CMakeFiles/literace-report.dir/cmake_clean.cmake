file(REMOVE_RECURSE
  "CMakeFiles/literace-report.dir/literace-report.cpp.o"
  "CMakeFiles/literace-report.dir/literace-report.cpp.o.d"
  "literace-report"
  "literace-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literace-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
