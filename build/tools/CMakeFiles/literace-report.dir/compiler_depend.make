# Empty compiler generated dependencies file for literace-report.
# This may be replaced when dependencies are built.
