file(REMOVE_RECURSE
  "CMakeFiles/literace-run.dir/literace-run.cpp.o"
  "CMakeFiles/literace-run.dir/literace-run.cpp.o.d"
  "literace-run"
  "literace-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literace-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
