# Empty dependencies file for literace-run.
# This may be replaced when dependencies are built.
