
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Browser.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/Browser.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/Browser.cpp.o.d"
  "/root/repo/src/workloads/Channel.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/Channel.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/Channel.cpp.o.d"
  "/root/repo/src/workloads/ConcRT.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/ConcRT.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/ConcRT.cpp.o.d"
  "/root/repo/src/workloads/Httpd.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/Httpd.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/Httpd.cpp.o.d"
  "/root/repo/src/workloads/LFList.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/LFList.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/LFList.cpp.o.d"
  "/root/repo/src/workloads/LKRHash.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/LKRHash.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/LKRHash.cpp.o.d"
  "/root/repo/src/workloads/SciCompute.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/SciCompute.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/SciCompute.cpp.o.d"
  "/root/repo/src/workloads/StdLib.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/StdLib.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/StdLib.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/CMakeFiles/literace_workloads.dir/workloads/Workload.cpp.o" "gcc" "src/CMakeFiles/literace_workloads.dir/workloads/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/literace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
