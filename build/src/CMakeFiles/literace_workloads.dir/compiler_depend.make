# Empty compiler generated dependencies file for literace_workloads.
# This may be replaced when dependencies are built.
