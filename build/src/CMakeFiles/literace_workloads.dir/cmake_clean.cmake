file(REMOVE_RECURSE
  "CMakeFiles/literace_workloads.dir/workloads/Browser.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/Browser.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/Channel.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/Channel.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/ConcRT.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/ConcRT.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/Httpd.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/Httpd.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/LFList.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/LFList.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/LKRHash.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/LKRHash.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/SciCompute.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/SciCompute.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/StdLib.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/StdLib.cpp.o.d"
  "CMakeFiles/literace_workloads.dir/workloads/Workload.cpp.o"
  "CMakeFiles/literace_workloads.dir/workloads/Workload.cpp.o.d"
  "libliterace_workloads.a"
  "libliterace_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literace_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
