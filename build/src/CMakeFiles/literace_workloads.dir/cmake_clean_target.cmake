file(REMOVE_RECURSE
  "libliterace_workloads.a"
)
