file(REMOVE_RECURSE
  "libliterace_harness.a"
)
