# Empty compiler generated dependencies file for literace_harness.
# This may be replaced when dependencies are built.
