file(REMOVE_RECURSE
  "CMakeFiles/literace_harness.dir/harness/DetectionExperiment.cpp.o"
  "CMakeFiles/literace_harness.dir/harness/DetectionExperiment.cpp.o.d"
  "CMakeFiles/literace_harness.dir/harness/OverheadExperiment.cpp.o"
  "CMakeFiles/literace_harness.dir/harness/OverheadExperiment.cpp.o.d"
  "CMakeFiles/literace_harness.dir/harness/Tables.cpp.o"
  "CMakeFiles/literace_harness.dir/harness/Tables.cpp.o.d"
  "libliterace_harness.a"
  "libliterace_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literace_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
