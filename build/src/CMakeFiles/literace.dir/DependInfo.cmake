
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detector/FastTrackDetector.cpp" "src/CMakeFiles/literace.dir/detector/FastTrackDetector.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/FastTrackDetector.cpp.o.d"
  "/root/repo/src/detector/HBDetector.cpp" "src/CMakeFiles/literace.dir/detector/HBDetector.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/HBDetector.cpp.o.d"
  "/root/repo/src/detector/LocksetDetector.cpp" "src/CMakeFiles/literace.dir/detector/LocksetDetector.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/LocksetDetector.cpp.o.d"
  "/root/repo/src/detector/LogBuilder.cpp" "src/CMakeFiles/literace.dir/detector/LogBuilder.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/LogBuilder.cpp.o.d"
  "/root/repo/src/detector/OnlineDetector.cpp" "src/CMakeFiles/literace.dir/detector/OnlineDetector.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/OnlineDetector.cpp.o.d"
  "/root/repo/src/detector/RaceReport.cpp" "src/CMakeFiles/literace.dir/detector/RaceReport.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/RaceReport.cpp.o.d"
  "/root/repo/src/detector/ReferenceDetector.cpp" "src/CMakeFiles/literace.dir/detector/ReferenceDetector.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/ReferenceDetector.cpp.o.d"
  "/root/repo/src/detector/Replay.cpp" "src/CMakeFiles/literace.dir/detector/Replay.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/Replay.cpp.o.d"
  "/root/repo/src/detector/VectorClock.cpp" "src/CMakeFiles/literace.dir/detector/VectorClock.cpp.o" "gcc" "src/CMakeFiles/literace.dir/detector/VectorClock.cpp.o.d"
  "/root/repo/src/runtime/CompressedLog.cpp" "src/CMakeFiles/literace.dir/runtime/CompressedLog.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/CompressedLog.cpp.o.d"
  "/root/repo/src/runtime/EventLog.cpp" "src/CMakeFiles/literace.dir/runtime/EventLog.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/EventLog.cpp.o.d"
  "/root/repo/src/runtime/FunctionRegistry.cpp" "src/CMakeFiles/literace.dir/runtime/FunctionRegistry.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/FunctionRegistry.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/CMakeFiles/literace.dir/runtime/Runtime.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/Runtime.cpp.o.d"
  "/root/repo/src/runtime/Samplers.cpp" "src/CMakeFiles/literace.dir/runtime/Samplers.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/Samplers.cpp.o.d"
  "/root/repo/src/runtime/ThreadContext.cpp" "src/CMakeFiles/literace.dir/runtime/ThreadContext.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/ThreadContext.cpp.o.d"
  "/root/repo/src/runtime/TraceStats.cpp" "src/CMakeFiles/literace.dir/runtime/TraceStats.cpp.o" "gcc" "src/CMakeFiles/literace.dir/runtime/TraceStats.cpp.o.d"
  "/root/repo/src/support/TableFormatter.cpp" "src/CMakeFiles/literace.dir/support/TableFormatter.cpp.o" "gcc" "src/CMakeFiles/literace.dir/support/TableFormatter.cpp.o.d"
  "/root/repo/src/sync/MonitoredAllocator.cpp" "src/CMakeFiles/literace.dir/sync/MonitoredAllocator.cpp.o" "gcc" "src/CMakeFiles/literace.dir/sync/MonitoredAllocator.cpp.o.d"
  "/root/repo/src/sync/Primitives.cpp" "src/CMakeFiles/literace.dir/sync/Primitives.cpp.o" "gcc" "src/CMakeFiles/literace.dir/sync/Primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
