# Empty compiler generated dependencies file for literace.
# This may be replaced when dependencies are built.
