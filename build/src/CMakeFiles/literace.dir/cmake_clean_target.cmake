file(REMOVE_RECURSE
  "libliterace.a"
)
