file(REMOVE_RECURSE
  "CMakeFiles/fig5_rare_frequent.dir/fig5_rare_frequent.cpp.o"
  "CMakeFiles/fig5_rare_frequent.dir/fig5_rare_frequent.cpp.o.d"
  "fig5_rare_frequent"
  "fig5_rare_frequent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rare_frequent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
