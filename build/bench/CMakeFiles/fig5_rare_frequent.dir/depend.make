# Empty dependencies file for fig5_rare_frequent.
# This may be replaced when dependencies are built.
