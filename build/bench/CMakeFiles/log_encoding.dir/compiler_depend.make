# Empty compiler generated dependencies file for log_encoding.
# This may be replaced when dependencies are built.
