file(REMOVE_RECURSE
  "CMakeFiles/log_encoding.dir/log_encoding.cpp.o"
  "CMakeFiles/log_encoding.dir/log_encoding.cpp.o.d"
  "log_encoding"
  "log_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
