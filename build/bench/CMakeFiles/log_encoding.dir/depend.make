# Empty dependencies file for log_encoding.
# This may be replaced when dependencies are built.
