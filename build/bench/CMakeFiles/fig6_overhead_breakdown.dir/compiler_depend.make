# Empty compiler generated dependencies file for fig6_overhead_breakdown.
# This may be replaced when dependencies are built.
