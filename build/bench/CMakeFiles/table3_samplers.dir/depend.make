# Empty dependencies file for table3_samplers.
# This may be replaced when dependencies are built.
