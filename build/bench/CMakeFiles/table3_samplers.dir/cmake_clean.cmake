file(REMOVE_RECURSE
  "CMakeFiles/table3_samplers.dir/table3_samplers.cpp.o"
  "CMakeFiles/table3_samplers.dir/table3_samplers.cpp.o.d"
  "table3_samplers"
  "table3_samplers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
