file(REMOVE_RECURSE
  "CMakeFiles/ablation_loopgrain.dir/ablation_loopgrain.cpp.o"
  "CMakeFiles/ablation_loopgrain.dir/ablation_loopgrain.cpp.o.d"
  "ablation_loopgrain"
  "ablation_loopgrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loopgrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
