# Empty compiler generated dependencies file for ablation_loopgrain.
# This may be replaced when dependencies are built.
