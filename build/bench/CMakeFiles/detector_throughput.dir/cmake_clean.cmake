file(REMOVE_RECURSE
  "CMakeFiles/detector_throughput.dir/detector_throughput.cpp.o"
  "CMakeFiles/detector_throughput.dir/detector_throughput.cpp.o.d"
  "detector_throughput"
  "detector_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
