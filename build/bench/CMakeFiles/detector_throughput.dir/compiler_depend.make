# Empty compiler generated dependencies file for detector_throughput.
# This may be replaced when dependencies are built.
