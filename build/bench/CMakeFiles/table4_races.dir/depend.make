# Empty dependencies file for table4_races.
# This may be replaced when dependencies are built.
