file(REMOVE_RECURSE
  "CMakeFiles/table4_races.dir/table4_races.cpp.o"
  "CMakeFiles/table4_races.dir/table4_races.cpp.o.d"
  "table4_races"
  "table4_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
