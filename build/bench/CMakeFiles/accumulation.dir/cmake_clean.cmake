file(REMOVE_RECURSE
  "CMakeFiles/accumulation.dir/accumulation.cpp.o"
  "CMakeFiles/accumulation.dir/accumulation.cpp.o.d"
  "accumulation"
  "accumulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
