# Empty compiler generated dependencies file for accumulation.
# This may be replaced when dependencies are built.
