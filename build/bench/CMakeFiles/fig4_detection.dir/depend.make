# Empty dependencies file for fig4_detection.
# This may be replaced when dependencies are built.
