file(REMOVE_RECURSE
  "CMakeFiles/fig4_detection.dir/fig4_detection.cpp.o"
  "CMakeFiles/fig4_detection.dir/fig4_detection.cpp.o.d"
  "fig4_detection"
  "fig4_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
