//===-- bench/fig5_rare_frequent.cpp - Paper Figure 5 -----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Figure 5: per-sampler detection rates split into rare and
// frequent static races (§5.3.1), over the six non-ConcRT pairs.
//
//===----------------------------------------------------------------------===//

#include "DetectionSuiteCommon.h"

using namespace literace;

int main() {
  auto Results = runDetectionSuite(rareFrequentSuiteKinds(),
                                   /*DefaultRepeats=*/3);
  printFigure5(Results);
  return 0;
}
