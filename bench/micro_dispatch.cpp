//===-- bench/micro_dispatch.cpp - Dispatch-check micro-cost ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Measures the per-call cost of the function-entry dispatch check (§4.1:
// the paper's inlined version is 8 instructions with 3 memory references)
// by comparing a function body under Baseline (no dispatch), DispatchOnly
// (counters updated, nothing logged), LiteRace (sampled logging), and
// FullLogging (every access logged).
//
// The telemetry arms measure the same DispatchOnly check with the metrics
// registry off vs. on. With --check-telemetry-overhead the bench takes
// paired min-of-N measurements and FAILS (exit 1) if telemetry adds more
// than LITERACE_TELEMETRY_BUDGET_PCT percent (default 5) to the dispatch
// check — the guard for docs/TELEMETRY.md's cost contract.
//
// With --check-async-flush the bench verifies the async flush pipeline's
// acceptance criterion instead: application threads logging through an
// AsyncLogSink must make ZERO writeChunk() calls into the durable sink
// (all durable writes happen on the flusher thread), checked via the
// sink.writes.* telemetry rather than assumed. Exit 1 on violation.
//
// With --json[=PATH] (default BENCH_micro_dispatch.json) a min-of-N
// ns/call sweep over the four run modes is written as a snapshot JSON so
// successive PRs can track the dispatch cost (tools/bench-compare).
//
//===----------------------------------------------------------------------===//

#include "runtime/AsyncSink.h"
#include "runtime/ThreadContext.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace literace;

namespace {

/// One instrumented call performing four memory operations.
template <typename TracerT>
void body(TracerT &T, uint64_t *Cells, uint64_t I) {
  T.store(&Cells[0], I, 1);
  T.store(&Cells[1], T.load(&Cells[0], 2) + 1, 3);
  benchmark::DoNotOptimize(T.load(&Cells[1], 4));
}

void dispatchMode(benchmark::State &State) {
  RunMode Mode = static_cast<RunMode>(State.range(0));
  NullSink Sink;
  RuntimeConfig Config;
  Config.Mode = Mode;
  Runtime RT(Config, Mode >= RunMode::SyncLogging ? &Sink : nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  for (auto _ : State) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  State.SetLabel(runModeName(Mode));
  State.SetItemsProcessed(State.iterations());
}

/// The DispatchOnly check with telemetry forced off (Arg 0) or routed to
/// a private registry (Arg 1), independent of LITERACE_TELEMETRY.
void dispatchTelemetry(benchmark::State &State) {
  const bool TelemetryOn = State.range(0) != 0;
  static telemetry::MetricsRegistry BenchRegistry;
  RuntimeConfig Config;
  Config.Mode = RunMode::DispatchOnly;
  Config.DisableTelemetry = !TelemetryOn;
  if (TelemetryOn)
    Config.Metrics = &BenchRegistry;
  Runtime RT(Config, nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  for (auto _ : State) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  State.SetLabel(TelemetryOn ? "telemetry-on" : "telemetry-off");
  State.SetItemsProcessed(State.iterations());
}

/// One timing sample: ns/call of the instrumented body under \p Mode.
double measureModeNs(RunMode Mode) {
  NullSink Sink;
  RuntimeConfig Config;
  Config.Mode = Mode;
  Runtime RT(Config, Mode >= RunMode::SyncLogging ? &Sink : nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  constexpr uint64_t Calls = 2000000;
  WallTimer Timer;
  for (uint64_t K = 0; K != Calls; ++K) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  return static_cast<double>(Timer.nanoseconds()) /
         static_cast<double>(Calls);
}

/// --json[=PATH]: min-of-N ns/call per run mode, written as a snapshot
/// JSON (same shape as the other bench tools) instead of the gbench run.
int writeJsonSweep(const std::string &Path) {
  const RunMode Modes[] = {RunMode::Baseline, RunMode::DispatchOnly,
                           RunMode::LiteRace, RunMode::FullLogging};
  constexpr unsigned Trials = 5;
  double Min[4] = {};
  for (unsigned M = 0; M != 4; ++M)
    (void)measureModeNs(Modes[M]); // Warm-up.
  // Interleaved trials so frequency drift hits every arm equally.
  for (unsigned T = 0; T != Trials; ++T)
    for (unsigned M = 0; M != 4; ++M) {
      const double Ns = measureModeNs(Modes[M]);
      Min[M] = T == 0 ? Ns : std::min(Min[M], Ns);
    }
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  std::fprintf(File, "{\n  \"benchmark\": \"micro_dispatch\",\n"
                     "  \"unit\": \"ns_per_call\",\n  \"modes\": [\n");
  for (unsigned M = 0; M != 4; ++M)
    std::fprintf(File, "    {\"mode\": \"%s\", \"ns_per_call\": %.3f}%s\n",
                 runModeName(Modes[M]), Min[M], M == 3 ? "" : ",");
  std::fprintf(File, "  ]\n}\n");
  std::fclose(File);
  std::printf("wrote %s\n", Path.c_str());
  return 0;
}

/// One timing sample: ns/call of the DispatchOnly check.
double measureDispatchNs(bool TelemetryOn,
                         telemetry::MetricsRegistry &Registry) {
  RuntimeConfig Config;
  Config.Mode = RunMode::DispatchOnly;
  Config.DisableTelemetry = !TelemetryOn;
  if (TelemetryOn)
    Config.Metrics = &Registry;
  Runtime RT(Config, nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  constexpr uint64_t Calls = 4000000;
  WallTimer Timer;
  for (uint64_t K = 0; K != Calls; ++K) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  return static_cast<double>(Timer.nanoseconds()) /
         static_cast<double>(Calls);
}

/// Paired min-of-N guard: telemetry-on must stay within the budget of
/// telemetry-off. Interleaved trials so frequency drift hits both arms.
int checkTelemetryOverhead() {
  double BudgetPct = 5.0;
  if (const char *Env = std::getenv("LITERACE_TELEMETRY_BUDGET_PCT"))
    BudgetPct = std::atof(Env);
  telemetry::MetricsRegistry Registry;
  constexpr unsigned Trials = 15;
  double MinOff = 0.0;
  double MinOn = 0.0;
  // Warm-up pass per arm, then interleaved timed trials.
  (void)measureDispatchNs(false, Registry);
  (void)measureDispatchNs(true, Registry);
  for (unsigned T = 0; T != Trials; ++T) {
    const double Off = measureDispatchNs(false, Registry);
    const double On = measureDispatchNs(true, Registry);
    MinOff = T == 0 ? Off : std::min(MinOff, Off);
    MinOn = T == 0 ? On : std::min(MinOn, On);
  }
  const double AddedPct = (MinOn / MinOff - 1.0) * 100.0;
  const bool Ok = AddedPct <= BudgetPct;
  std::printf("dispatch check: telemetry-off %.3f ns/call, telemetry-on "
              "%.3f ns/call, added %.2f%% (budget %.1f%%): %s\n",
              MinOff, MinOn, AddedPct, BudgetPct, Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

/// Drives \p NumThreads producers through a SegmentedFileSink (optionally
/// behind an AsyncLogSink) and returns how many durable writeChunk calls
/// landed on application threads vs the flusher thread.
void classifyWrites(bool UseAsync, telemetry::MetricsRegistry &Registry,
                    uint64_t &AppWrites, uint64_t &FlusherWrites) {
  const char *Dir = std::getenv("TMPDIR");
  const std::string Path = std::string(Dir && *Dir ? Dir : "/tmp") +
                           "/literace_micro_async.bin";
  constexpr unsigned NumThreads = 4;
  constexpr size_t ChunksPerThread = 64;
  constexpr size_t EventsPerChunk = 1024;
  {
    SegmentedFileSink::Options SOpts;
    SOpts.Metrics = &Registry;
    SegmentedFileSink Seg(Path, 128, SOpts);
    std::unique_ptr<AsyncLogSink> Async;
    LogSink *Sink = &Seg;
    if (UseAsync) {
      AsyncLogSink::Options AOpts;
      AOpts.Metrics = &Registry;
      Async = std::make_unique<AsyncLogSink>(Seg, AOpts);
      Sink = Async.get();
    }
    std::vector<std::thread> Producers;
    for (unsigned T = 0; T != NumThreads; ++T)
      Producers.emplace_back([&, T] {
        std::vector<EventRecord> Chunk(EventsPerChunk);
        for (size_t C = 0; C != ChunksPerThread; ++C) {
          for (size_t I = 0; I != EventsPerChunk; ++I) {
            Chunk[I].Kind = EventKind::Write;
            Chunk[I].Tid = T;
            Chunk[I].Addr = C * EventsPerChunk + I;
          }
          Sink->writeChunk(T, Chunk.data(), Chunk.size());
        }
      });
    for (std::thread &T : Producers)
      T.join();
    if (Async)
      Async->close();
    AppWrites = Seg.appThreadWrites();
    FlusherWrites = Seg.flusherThreadWrites();
    Seg.close();
  }
  std::remove(Path.c_str());
}

/// The async acceptance criterion: in async mode every durable write
/// happens on the flusher thread; in sync mode they all happen on app
/// threads. Read back through sink.writes.* telemetry.
int checkAsyncFlush() {
  uint64_t SyncApp = 0, SyncFlusher = 0;
  uint64_t AsyncApp = 0, AsyncFlusher = 0;
  telemetry::MetricsRegistry SyncRegistry;
  classifyWrites(/*UseAsync=*/false, SyncRegistry, SyncApp, SyncFlusher);
  telemetry::MetricsRegistry AsyncRegistry;
  classifyWrites(/*UseAsync=*/true, AsyncRegistry, AsyncApp, AsyncFlusher);

  // The registry must agree with the sink's own counters — this is the
  // path CI reads, so it is the path the check trusts.
  const telemetry::MetricsSnapshot Snap = AsyncRegistry.snapshot();
  const uint64_t SnapApp = Snap.counter("sink.writes.app_thread", 0);
  const uint64_t SnapFlusher = Snap.counter("sink.writes.flusher_thread", 0);

  const bool Ok = SyncApp > 0 && SyncFlusher == 0 && AsyncApp == 0 &&
                  AsyncFlusher > 0 && SnapApp == AsyncApp &&
                  SnapFlusher == AsyncFlusher;
  std::printf("durable writeChunk calls: sync app=%llu flusher=%llu | "
              "async app=%llu flusher=%llu (telemetry app=%llu "
              "flusher=%llu): %s\n",
              static_cast<unsigned long long>(SyncApp),
              static_cast<unsigned long long>(SyncFlusher),
              static_cast<unsigned long long>(AsyncApp),
              static_cast<unsigned long long>(AsyncFlusher),
              static_cast<unsigned long long>(SnapApp),
              static_cast<unsigned long long>(SnapFlusher),
              Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

} // namespace

BENCHMARK(dispatchMode)
    ->Arg(static_cast<int>(RunMode::Baseline))
    ->Arg(static_cast<int>(RunMode::DispatchOnly))
    ->Arg(static_cast<int>(RunMode::LiteRace))
    ->Arg(static_cast<int>(RunMode::FullLogging));

BENCHMARK(dispatchTelemetry)->Arg(0)->Arg(1);

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--check-telemetry-overhead") == 0)
      return checkTelemetryOverhead();
    if (std::strcmp(Argv[I], "--check-async-flush") == 0)
      return checkAsyncFlush();
    if (std::strcmp(Argv[I], "--json") == 0)
      return writeJsonSweep("BENCH_micro_dispatch.json");
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      return writeJsonSweep(Argv[I] + 7);
  }
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
