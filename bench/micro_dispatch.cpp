//===-- bench/micro_dispatch.cpp - Dispatch-check micro-cost ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Measures the per-call cost of the function-entry dispatch check (§4.1:
// the paper's inlined version is 8 instructions with 3 memory references)
// by comparing a function body under Baseline (no dispatch), DispatchOnly
// (counters updated, nothing logged), LiteRace (sampled logging), and
// FullLogging (every access logged).
//
// The telemetry arms measure the same DispatchOnly check with the metrics
// registry off vs. on. With --check-telemetry-overhead the bench takes
// paired min-of-N measurements and FAILS (exit 1) if telemetry adds more
// than LITERACE_TELEMETRY_BUDGET_PCT percent (default 5) to the dispatch
// check — the guard for docs/TELEMETRY.md's cost contract.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadContext.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace literace;

namespace {

/// One instrumented call performing four memory operations.
template <typename TracerT>
void body(TracerT &T, uint64_t *Cells, uint64_t I) {
  T.store(&Cells[0], I, 1);
  T.store(&Cells[1], T.load(&Cells[0], 2) + 1, 3);
  benchmark::DoNotOptimize(T.load(&Cells[1], 4));
}

void dispatchMode(benchmark::State &State) {
  RunMode Mode = static_cast<RunMode>(State.range(0));
  NullSink Sink;
  RuntimeConfig Config;
  Config.Mode = Mode;
  Runtime RT(Config, Mode >= RunMode::SyncLogging ? &Sink : nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  for (auto _ : State) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  State.SetLabel(runModeName(Mode));
  State.SetItemsProcessed(State.iterations());
}

/// The DispatchOnly check with telemetry forced off (Arg 0) or routed to
/// a private registry (Arg 1), independent of LITERACE_TELEMETRY.
void dispatchTelemetry(benchmark::State &State) {
  const bool TelemetryOn = State.range(0) != 0;
  static telemetry::MetricsRegistry BenchRegistry;
  RuntimeConfig Config;
  Config.Mode = RunMode::DispatchOnly;
  Config.DisableTelemetry = !TelemetryOn;
  if (TelemetryOn)
    Config.Metrics = &BenchRegistry;
  Runtime RT(Config, nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  for (auto _ : State) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  State.SetLabel(TelemetryOn ? "telemetry-on" : "telemetry-off");
  State.SetItemsProcessed(State.iterations());
}

/// One timing sample: ns/call of the DispatchOnly check.
double measureDispatchNs(bool TelemetryOn,
                         telemetry::MetricsRegistry &Registry) {
  RuntimeConfig Config;
  Config.Mode = RunMode::DispatchOnly;
  Config.DisableTelemetry = !TelemetryOn;
  if (TelemetryOn)
    Config.Metrics = &Registry;
  Runtime RT(Config, nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  constexpr uint64_t Calls = 4000000;
  WallTimer Timer;
  for (uint64_t K = 0; K != Calls; ++K) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  return static_cast<double>(Timer.nanoseconds()) /
         static_cast<double>(Calls);
}

/// Paired min-of-N guard: telemetry-on must stay within the budget of
/// telemetry-off. Interleaved trials so frequency drift hits both arms.
int checkTelemetryOverhead() {
  double BudgetPct = 5.0;
  if (const char *Env = std::getenv("LITERACE_TELEMETRY_BUDGET_PCT"))
    BudgetPct = std::atof(Env);
  telemetry::MetricsRegistry Registry;
  constexpr unsigned Trials = 15;
  double MinOff = 0.0;
  double MinOn = 0.0;
  // Warm-up pass per arm, then interleaved timed trials.
  (void)measureDispatchNs(false, Registry);
  (void)measureDispatchNs(true, Registry);
  for (unsigned T = 0; T != Trials; ++T) {
    const double Off = measureDispatchNs(false, Registry);
    const double On = measureDispatchNs(true, Registry);
    MinOff = T == 0 ? Off : std::min(MinOff, Off);
    MinOn = T == 0 ? On : std::min(MinOn, On);
  }
  const double AddedPct = (MinOn / MinOff - 1.0) * 100.0;
  const bool Ok = AddedPct <= BudgetPct;
  std::printf("dispatch check: telemetry-off %.3f ns/call, telemetry-on "
              "%.3f ns/call, added %.2f%% (budget %.1f%%): %s\n",
              MinOff, MinOn, AddedPct, BudgetPct, Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

} // namespace

BENCHMARK(dispatchMode)
    ->Arg(static_cast<int>(RunMode::Baseline))
    ->Arg(static_cast<int>(RunMode::DispatchOnly))
    ->Arg(static_cast<int>(RunMode::LiteRace))
    ->Arg(static_cast<int>(RunMode::FullLogging));

BENCHMARK(dispatchTelemetry)->Arg(0)->Arg(1);

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--check-telemetry-overhead") == 0)
      return checkTelemetryOverhead();
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
