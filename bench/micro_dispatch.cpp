//===-- bench/micro_dispatch.cpp - Dispatch-check micro-cost ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Measures the per-call cost of the function-entry dispatch check (§4.1:
// the paper's inlined version is 8 instructions with 3 memory references)
// by comparing a function body under Baseline (no dispatch), DispatchOnly
// (counters updated, nothing logged), LiteRace (sampled logging), and
// FullLogging (every access logged).
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadContext.h"

#include <benchmark/benchmark.h>

using namespace literace;

namespace {

/// One instrumented call performing four memory operations.
template <typename TracerT>
void body(TracerT &T, uint64_t *Cells, uint64_t I) {
  T.store(&Cells[0], I, 1);
  T.store(&Cells[1], T.load(&Cells[0], 2) + 1, 3);
  benchmark::DoNotOptimize(T.load(&Cells[1], 4));
}

void dispatchMode(benchmark::State &State) {
  RunMode Mode = static_cast<RunMode>(State.range(0));
  NullSink Sink;
  RuntimeConfig Config;
  Config.Mode = Mode;
  Runtime RT(Config, Mode >= RunMode::SyncLogging ? &Sink : nullptr);
  FunctionId F = RT.registry().registerFunction("hot");
  ThreadContext TC(RT);
  uint64_t Cells[2] = {};
  uint64_t I = 0;
  for (auto _ : State) {
    TC.run(F, [&](auto &T) { body(T, Cells, I); });
    ++I;
  }
  State.SetLabel(runModeName(Mode));
  State.SetItemsProcessed(State.iterations());
}

} // namespace

BENCHMARK(dispatchMode)
    ->Arg(static_cast<int>(RunMode::Baseline))
    ->Arg(static_cast<int>(RunMode::DispatchOnly))
    ->Arg(static_cast<int>(RunMode::LiteRace))
    ->Arg(static_cast<int>(RunMode::FullLogging));

BENCHMARK_MAIN();
