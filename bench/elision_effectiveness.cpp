//===-- bench/elision_effectiveness.cpp - Static-elision study --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Reports what the pre-execution static analysis buys per benchmark: sites
// proven race-free, the full-log memory records they account for, and the
// full-logging wall time saved by eliding them — plus the soundness audit
// (no seeded race detected on the full trace may disappear after elision).
// Exits nonzero if any benchmark fails the audit.
//
//===----------------------------------------------------------------------===//

#include "harness/ElisionExperiment.h"
#include "harness/Tables.h"

#include <cstdio>

using namespace literace;

int main() {
  WorkloadParams Params = paramsFromEnv();
  unsigned Repeats = repeatsFromEnv(2);
  const WorkloadKind Kinds[] = {
      WorkloadKind::ChannelWithStdLib, WorkloadKind::Channel,
      WorkloadKind::ConcRTMessaging,   WorkloadKind::ConcRTScheduling,
      WorkloadKind::Httpd1,            WorkloadKind::Httpd2,
      WorkloadKind::BrowserStart,      WorkloadKind::BrowserRender,
      WorkloadKind::LKRHash,           WorkloadKind::LFList,
      WorkloadKind::SciComputeFn};
  std::vector<ElisionRow> Rows;
  bool AllSound = true;
  for (WorkloadKind Kind : Kinds) {
    Rows.push_back(runElisionExperiment(Kind, Params, Repeats));
    const ElisionRow &Row = Rows.back();
    AllSound &= Row.Sound;
    std::fprintf(stderr,
                 "  [elision] %s done (%zu/%zu sites, %.1f%% of records, "
                 "%s)\n",
                 Row.Benchmark.c_str(), Row.ElidableSites, Row.DeclaredSites,
                 100.0 * Row.logReduction(),
                 Row.Sound ? "sound" : "AUDIT FAILED");
  }
  printElisionTable(Rows);
  if (!AllSound) {
    std::fprintf(stderr, "soundness audit FAILED: elision hid a seeded "
                         "race or corrupted the log\n");
    return 1;
  }
  return 0;
}
