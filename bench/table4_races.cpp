//===-- bench/table4_races.cpp - Paper Table 4 ------------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Table 4: static data races found per benchmark under full
// logging (median over runs; the paper uses three), split rare/frequent
// by the 3-per-million-memory-ops rule, plus our ground-truth columns
// (seeded races found, absence of false positives) which the paper's
// un-seeded benchmarks could not provide.
//
//===----------------------------------------------------------------------===//

#include "DetectionSuiteCommon.h"

using namespace literace;

int main() {
  auto Results = runDetectionSuite(rareFrequentSuiteKinds(),
                                   /*DefaultRepeats=*/3);
  printTable4(Results);
  return 0;
}
