//===-- bench/accumulation.cpp - Coverage across deployments ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The paper's §3.1 argument for accepting sampling's false negatives: a
// low-overhead detector gets deployed on MANY executions, and coverage
// accumulates. This bench runs the Dryad Channel + stdlib pair repeatedly
// (different seeds → different interleavings and sampling decisions) and
// reports, per sampler, the cumulative fraction of the union of full-log
// races found so far. The thread-local adaptive sampler starts near its
// ceiling on the first deployment (its misses are structural: rare races
// deep inside hot code); the random sampler starts low and climbs run by
// run — which is the only way a random sampler ever becomes useful.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "harness/DetectionExperiment.h"
#include "harness/Tables.h"
#include "support/TableFormatter.h"

#include <cstdio>
#include <set>

using namespace literace;

int main() {
  WorkloadParams Base = paramsFromEnv();
  const unsigned Runs = repeatsFromEnv(8);
  // Slots in the standard suite: 0 = TL-Ad, 2 = G-Ad, 4 = Rnd10.
  const struct {
    int Slot;
    const char *Name;
  } Tracked[] = {{0, "TL-Ad"}, {2, "G-Ad"}, {4, "Rnd10"}};

  std::set<StaticRaceKey> FullUnion;
  std::set<StaticRaceKey> SampledUnion[3];

  TableFormatter Table("Coverage accumulation over repeated deployments "
                       "(Dryad Channel + stdlib)");
  Table.addRow({"Run", "Full cumulative", "TL-Ad", "G-Ad", "Rnd10"});

  for (unsigned Run = 0; Run != Runs; ++Run) {
    WorkloadParams Params = Base;
    Params.Seed = Base.Seed + 7919 * Run;
    auto W = makeWorkload(WorkloadKind::ChannelWithStdLib);
    ExperimentRun Exec = executeExperiment(*W, Params);

    RaceReport Full;
    detectRaces(Exec.TraceData, Full);
    auto FullKeys = Full.keys();
    for (const StaticRaceKey &Key : FullKeys)
      FullUnion.insert(Key);

    std::vector<std::string> Row = {std::to_string(Run + 1),
                                    std::to_string(FullUnion.size())};
    for (unsigned I = 0; I != 3; ++I) {
      RaceReport Sampled;
      ReplayOptions Options;
      Options.SamplerSlot = Tracked[I].Slot;
      detectRaces(Exec.TraceData, Sampled, Options);
      for (const StaticRaceKey &Key : Sampled.keys())
        if (FullKeys.count(Key))
          SampledUnion[I].insert(Key);
      size_t Covered = 0;
      for (const StaticRaceKey &Key : SampledUnion[I])
        Covered += FullUnion.count(Key);
      Row.push_back(TableFormatter::percent(
          static_cast<double>(Covered) /
          static_cast<double>(FullUnion.size())));
    }
    Table.addRow(Row);
    std::fprintf(stderr, "  [accumulation] run %u done\n", Run + 1);
  }
  Table.print();
  return 0;
}
