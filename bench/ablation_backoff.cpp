//===-- bench/ablation_backoff.cpp - Back-off schedule ablation -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Ablates the adaptive back-off schedule of §3.4: the floor rate (how far
// the sampler decays) and the decay shape, against the paper's
// 100% → 10% → 1% → 0.1% schedule, on the Apache-1 pair.
//
//===----------------------------------------------------------------------===//

#include "AblationCommon.h"

using namespace literace;

namespace {

std::unique_ptr<Sampler> makeVariant(const char *Name,
                                     std::vector<double> Rates) {
  AdaptiveSchedule Sched;
  Sched.Rates = std::move(Rates);
  Sched.BurstLength = 10;
  return std::make_unique<ThreadLocalBurstySampler>(Name, Name, Sched);
}

} // namespace

int main() {
  WorkloadParams Params = paramsFromEnv();
  std::vector<std::unique_ptr<Sampler>> Samplers;
  Samplers.push_back(
      makeVariant("paper(1,.1,.01,.001)", {1.0, 0.1, 0.01, 0.001}));
  Samplers.push_back(makeVariant("floor=1%", {1.0, 0.1, 0.01}));
  Samplers.push_back(
      makeVariant("floor=0.01%", {1.0, 0.1, 0.01, 0.001, 0.0001}));
  Samplers.push_back(
      makeVariant("steep(1,.001)", {1.0, 0.001}));
  Samplers.push_back(makeVariant(
      "gentle(halving)", AdaptiveSchedule::globalDefault().Rates));
  Samplers.push_back(makeVariant("no-backoff(100%)", {1.0}));
  auto Outcomes =
      runAblation(WorkloadKind::Httpd1, Params, std::move(Samplers));
  printAblation("Ablation: adaptive back-off schedule of the thread-local "
                "sampler (Apache-1)",
                Outcomes);
  return 0;
}
