//===-- bench/AblationCommon.h - Custom-sampler ablation driver -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Driver for ablation benches that compare custom sampler variants (not
/// the standard Table 3 suite) on one benchmark using the §5.3
/// methodology: one Experiment-mode run, detection per filtered view.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_BENCH_ABLATIONCOMMON_H
#define LITERACE_BENCH_ABLATIONCOMMON_H

#include "detector/HBDetector.h"
#include "harness/Tables.h"
#include "support/TableFormatter.h"

#include <memory>
#include <string>
#include <vector>

namespace literace {

struct AblationOutcome {
  std::string Name;
  double EffectiveSamplingRate = 0.0;
  double DetectionRate = 0.0;
  double RareDetectionRate = 0.0;
};

/// Runs \p Kind once in Experiment mode with \p Samplers attached and
/// returns per-sampler ESR + detection rates against the full log.
inline std::vector<AblationOutcome>
runAblation(WorkloadKind Kind, const WorkloadParams &Params,
            std::vector<std::unique_ptr<Sampler>> Samplers) {
  MemorySink Sink(128);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Config.Seed = Params.Seed;
  Runtime RT(Config, &Sink);
  std::vector<std::string> Names;
  for (auto &S : Samplers) {
    Names.push_back(S->shortName());
    RT.addSampler(std::move(S));
  }
  std::unique_ptr<Workload> W = makeWorkload(Kind);
  W->bind(RT);
  W->run(RT, Params);

  Trace T = Sink.takeTrace();
  RuntimeStats Stats = RT.stats();

  RaceReport Full;
  detectRaces(T, Full);
  auto FullKeys = Full.keys();
  auto [RareKeys, FreqKeys] = Full.splitRareFrequent(Stats.MemOpsLogged);
  (void)FreqKeys;

  std::vector<AblationOutcome> Out;
  for (unsigned Slot = 0; Slot != Names.size(); ++Slot) {
    RaceReport Sampled;
    ReplayOptions Options;
    Options.SamplerSlot = static_cast<int>(Slot);
    detectRaces(T, Sampled, Options);
    size_t Hit = 0, RareHit = 0;
    for (const StaticRaceKey &Key : Sampled.keys()) {
      Hit += FullKeys.count(Key);
      RareHit += RareKeys.count(Key);
    }
    AblationOutcome O;
    O.Name = Names[Slot];
    O.EffectiveSamplingRate = Stats.effectiveSamplingRate(Slot);
    O.DetectionRate =
        FullKeys.empty()
            ? 1.0
            : static_cast<double>(Hit) / static_cast<double>(FullKeys.size());
    O.RareDetectionRate =
        RareKeys.empty() ? 1.0
                         : static_cast<double>(RareHit) /
                               static_cast<double>(RareKeys.size());
    Out.push_back(O);
  }
  return Out;
}

inline void printAblation(const char *Title,
                          const std::vector<AblationOutcome> &Outcomes) {
  TableFormatter Table(Title);
  Table.addRow({"Variant", "ESR", "Detection rate", "Rare detection rate"});
  for (const AblationOutcome &O : Outcomes)
    Table.addRow({O.Name, TableFormatter::percent(O.EffectiveSamplingRate),
                  TableFormatter::percent(O.DetectionRate),
                  TableFormatter::percent(O.RareDetectionRate)});
  Table.print();
}

} // namespace literace

#endif // LITERACE_BENCH_ABLATIONCOMMON_H
