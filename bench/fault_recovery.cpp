//===-- bench/fault_recovery.cpp - Salvage under injected faults ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Quantifies the crash-consistency story of the v2 segmented log on a real
// full-logging trace of the Apache-1 benchmark: how many events (and how
// many of the full-trace races) survive salvage when the file is cut at
// increasing fractions of its length, and when random bit flips of
// increasing density corrupt it in flight. Also reports salvage-read
// throughput so the recovery path's cost is visible next to its yield.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "harness/DetectionExperiment.h"
#include "harness/Tables.h"
#include "runtime/EventLog.h"
#include "support/ByteOutput.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace literace;

namespace {

std::string tempPath(const char *Name) {
  const char *Dir = std::getenv("TMPDIR");
  return std::string(Dir ? Dir : "/tmp") + "/" + Name;
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Bytes;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(File);
  return Bytes;
}

void writeFileBytes(const std::string &Path, const uint8_t *Data,
                    size_t Size) {
  FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return;
  std::fwrite(Data, 1, Size, File);
  std::fclose(File);
}

/// Streams \p T through a SegmentedFileSink in bounded chunks, the way the
/// runtime's flush path does, so the file has a realistic frame structure.
bool writeSegmented(const Trace &T, const std::string &Path,
                    size_t ChunkEvents, ByteOutput *Output) {
  SegmentedFileSink::Options Opts;
  Opts.Output = Output;
  SegmentedFileSink Sink(Path, T.NumTimestampCounters, Opts);
  if (!Sink.ok())
    return false;
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
    const std::vector<EventRecord> &Stream = T.PerThread[Tid];
    for (size_t At = 0; At < Stream.size(); At += ChunkEvents)
      Sink.writeChunk(static_cast<ThreadId>(Tid), Stream.data() + At,
                      std::min(ChunkEvents, Stream.size() - At));
  }
  return Sink.close();
}

size_t racesOnSalvagedTrace(const Trace &T) {
  ReplayOptions Replay;
  Replay.AllowTimestampGaps = true;
  RaceReport Report;
  if (!detectRaces(T, Report, Replay))
    return 0;
  return Report.keys().size();
}

} // namespace

int main() {
  WorkloadParams Params = paramsFromEnv();
  auto W = makeWorkload(WorkloadKind::Httpd1);
  std::fprintf(stderr, "producing the trace...\n");
  ExperimentRun Run = executeExperiment(*W, Params);
  const Trace &T = Run.TraceData;
  const size_t Events = T.totalEvents();

  const std::string CleanPath = tempPath("literace_fault_recovery.bin");
  const std::string HurtPath = tempPath("literace_fault_recovery_hurt.bin");
  if (!writeSegmented(T, CleanPath, 4096, nullptr)) {
    std::fprintf(stderr, "error: segmented write failed\n");
    return 1;
  }
  std::vector<uint8_t> Clean = readFileBytes(CleanPath);

  RaceReport FullReport;
  detectRaces(T, FullReport);
  const size_t FullRaces = FullReport.keys().size();

  // Sweep 1: truncation. Cut the file at increasing fractions of its
  // length — the tail a crash at that moment would cost — and salvage.
  TableFormatter Cuts("Salvage after truncation (Apache-1 trace, "
                      "4096-event segments)");
  Cuts.addRow({"Cut at", "Events kept", "% of trace", "Segs kept",
               "Segs dropped", "Races found", "of full"});
  const double Fractions[] = {0.10, 0.25, 0.50, 0.75, 0.90, 1.00};
  for (double F : Fractions) {
    size_t CutBytes = static_cast<size_t>(Clean.size() * F);
    writeFileBytes(HurtPath, Clean.data(), CutBytes);
    TraceReadResult R = readTrace(HurtPath);
    if (!R.readable()) {
      std::fprintf(stderr, "error: salvage failed at cut %.0f%%\n",
                   F * 100);
      return 1;
    }
    Cuts.addRow({TableFormatter::num(F * 100, 0) + "%",
                 TableFormatter::num(R.Stats.EventsRecovered, 0),
                 TableFormatter::num(
                     100.0 * R.Stats.EventsRecovered / Events, 1) +
                     "%",
                 TableFormatter::num(R.Stats.SegmentsRecovered, 0),
                 TableFormatter::num(R.Stats.SegmentsDropped, 0),
                 TableFormatter::num(racesOnSalvagedTrace(R.T), 0),
                 TableFormatter::num(FullRaces, 0)});
  }
  Cuts.print();

  // Sweep 2: bit flips. Rewrite the trace through a FaultySink with
  // rising flip density; every flip must cost at most its own segment.
  TableFormatter Flips("Salvage under bit flips (mean gap between flips)");
  Flips.addRow({"Mean flip gap", "Bits flipped", "Events kept",
                "% of trace", "Segs dropped", "Races found", "of full"});
  const uint64_t FlipEvery[] = {1u << 22, 1u << 20, 1u << 18, 1u << 16};
  for (uint64_t Gap : FlipEvery) {
    FileByteOutput File(HurtPath);
    FaultPlan Plan;
    Plan.BitFlipEveryBytes = Gap;
    Plan.BitFlipSeed = 42;
    FaultySink Faulty(File, Plan);
    // Flipped frames still close cleanly — the writer cannot see silent
    // corruption, so only the reader's checksums pay for it.
    writeSegmented(T, HurtPath, 4096, &Faulty);
    TraceReadResult R = readTrace(HurtPath);
    if (!R.readable()) {
      std::fprintf(stderr, "error: salvage failed at flip gap %llu\n",
                   static_cast<unsigned long long>(Gap));
      return 1;
    }
    Flips.addRow({TableFormatter::num(Gap / 2.0 / 1024, 0) + " KB",
                  TableFormatter::num(Faulty.bitsFlipped(), 0),
                  TableFormatter::num(R.Stats.EventsRecovered, 0),
                  TableFormatter::num(
                      100.0 * R.Stats.EventsRecovered / Events, 1) +
                      "%",
                  TableFormatter::num(R.Stats.SegmentsDropped, 0),
                  TableFormatter::num(racesOnSalvagedTrace(R.T), 0),
                  TableFormatter::num(FullRaces, 0)});
  }
  Flips.print();

  // Salvage-read throughput on the intact file, for scale.
  WallTimer Timer;
  TraceReadResult Whole = readTrace(CleanPath);
  double ReadSec = Timer.seconds();
  std::printf("salvage read of intact file: %zu events in %.3fs "
              "(%.1f M ev/s), status %s\n",
              static_cast<size_t>(Whole.Stats.EventsRecovered), ReadSec,
              Events / 1e6 / ReadSec,
              Whole.Status == TraceReadStatus::Ok ? "clean" : "salvaged");

  std::remove(CleanPath.c_str());
  std::remove(HurtPath.c_str());
  return 0;
}
