//===-- bench/ablation_burst.cpp - Burst-length ablation --------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Ablates the "bursty" design choice of §3.4: the thread-local adaptive
// sampler with burst lengths 1 (not bursty) through 50, on the Dryad
// Channel + stdlib pair. The paper uses bursts of 10 consecutive
// executions; longer bursts buy detection at higher ESR, burst 1 loses
// the correlated before/after pairs that make races detectable.
//
//===----------------------------------------------------------------------===//

#include "AblationCommon.h"

using namespace literace;

int main() {
  WorkloadParams Params = paramsFromEnv();
  std::vector<std::unique_ptr<Sampler>> Samplers;
  for (uint32_t Burst : {1u, 2u, 5u, 10u, 20u, 50u}) {
    AdaptiveSchedule Sched = AdaptiveSchedule::threadLocalDefault();
    Sched.BurstLength = Burst;
    Samplers.push_back(std::make_unique<ThreadLocalBurstySampler>(
        "TL-Ad/burst=" + std::to_string(Burst),
        "thread-local adaptive, burst " + std::to_string(Burst), Sched));
  }
  auto Outcomes = runAblation(WorkloadKind::ChannelWithStdLib, Params,
                              std::move(Samplers));
  printAblation("Ablation: burst length of the thread-local adaptive "
                "sampler (Dryad Channel + stdlib)",
                Outcomes);
  return 0;
}
