//===-- bench/table2_benchmarks.cpp - Paper Table 2 ------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Table 2: the benchmark inventory. The paper reports static
// function counts and binary sizes of the instrumented x86 images; our
// source-level equivalent reports registered instrumented functions,
// thread counts, and runtime event volumes per benchmark-input pair.
//
//===----------------------------------------------------------------------===//

#include "DetectionSuiteCommon.h"

using namespace literace;

int main() {
  auto Results = runDetectionSuite(detectionSuiteKinds());
  printTable2(Results);
  return 0;
}
