//===-- bench/shadow_hash.cpp - Address-hash quality microbench -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the cost of keying address-indexed maps with the identity
/// hash (libstdc++'s std::hash<uint64_t>) versus the splitmix64 mixing
/// hash (support/Hashing.h) that the detectors now use, and versus the
/// flat ShadowMap, over the address shapes detectors actually see:
///
///   stride64      cache-line-aligned accesses (a dense array walk)
///   stride4096    page-aligned accesses (one lock/header per page)
///   highbits      entropy only in bits 38+, low bits constant — the
///                 adversarial shape for any power-of-two bucket mask
///
/// Each configuration inserts the working set once and then measures a
/// hot mixed lookup/update loop. Results back the bench note in
/// docs/DETECTOR.md ("Why a mixing hash").
///
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"
#include "support/ShadowMap.h"
#include "support/SplitMix64.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

using namespace literace;

namespace {

std::vector<uint64_t> makeKeys(const std::string &Shape, size_t Count) {
  SplitMix64 Rng(42);
  std::vector<uint64_t> Keys;
  Keys.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    if (Shape == "stride64")
      Keys.push_back(0x7f0000000000ULL + I * 64);
    else if (Shape == "stride4096")
      Keys.push_back(0x7f0000000000ULL + I * 4096);
    else // highbits: low 38 bits constant, entropy above.
      Keys.push_back((Rng.nextBelow(1u << 20) << 38) | 0x1040);
  }
  return Keys;
}

/// Access sequence over the key set, ~8 hits per key. Sequential mode
/// replays the keys in address order (the page-local run shape the
/// detectors see from real traces); shuffled mode destroys locality.
std::vector<uint64_t> makeProbes(const std::vector<uint64_t> &Keys,
                                 bool Sequential) {
  std::vector<uint64_t> Probes;
  Probes.reserve(Keys.size() * 8);
  if (Sequential) {
    for (int Round = 0; Round != 8; ++Round)
      Probes.insert(Probes.end(), Keys.begin(), Keys.end());
    return Probes;
  }
  SplitMix64 Rng(7);
  for (size_t I = 0; I != Keys.size() * 8; ++I)
    Probes.push_back(Keys[Rng.nextBelow(Keys.size())]);
  return Probes;
}

template <typename MapT>
double timeMap(MapT &Map, const std::vector<uint64_t> &Keys,
               const std::vector<uint64_t> &Probes) {
  for (uint64_t K : Keys)
    Map[K] = K;
  const auto Start = std::chrono::steady_clock::now();
  uint64_t Sink = 0;
  for (uint64_t P : Probes)
    Sink += ++Map[P];
  const auto End = std::chrono::steady_clock::now();
  if (Sink == 0)
    std::puts("");
  return std::chrono::duration<double, std::nano>(End - Start).count() /
         static_cast<double>(Probes.size());
}

/// Minimal power-of-two open-addressed table, the same probing scheme as
/// the ShadowMap page directory (and of most modern flat hash maps).
/// Chained std::unordered_map on libstdc++ reduces hashes modulo a PRIME
/// bucket count, which happens to spread aligned strides even under the
/// identity hash — this table shows what the identity hash does to the
/// power-of-two topology the hot structures actually use.
template <typename HashT> class OpenTable {
public:
  explicit OpenTable(size_t Capacity)
      : Slots(Capacity), Used(Capacity), Mask(Capacity - 1) {}

  uint64_t &operator[](uint64_t K) {
    size_t I = HashT()(K) & Mask;
    while (Used[I] && Slots[I].first != K)
      I = (I + 1) & Mask;
    if (!Used[I]) {
      Used[I] = 1;
      Slots[I] = {K, 0};
    }
    return Slots[I].second;
  }

private:
  std::vector<std::pair<uint64_t, uint64_t>> Slots;
  std::vector<uint8_t> Used;
  size_t Mask;
};

struct IdentityHash {
  size_t operator()(uint64_t X) const { return static_cast<size_t>(X); }
};

double timeShadow(const std::vector<uint64_t> &Keys,
                  const std::vector<uint64_t> &Probes) {
  ShadowMap<uint64_t> Map;
  for (uint64_t K : Keys)
    Map.ref(K) = K;
  const auto Start = std::chrono::steady_clock::now();
  uint64_t Sink = 0;
  for (uint64_t P : Probes)
    Sink += ++Map.ref(P);
  const auto End = std::chrono::steady_clock::now();
  if (Sink == 0)
    std::puts("");
  return std::chrono::duration<double, std::nano>(End - Start).count() /
         static_cast<double>(Probes.size());
}

} // namespace

int main() {
  constexpr size_t WorkingSet = 1 << 13;
  constexpr size_t OpenCapacity = WorkingSet * 4; // 25% load factor.
  for (bool Sequential : {true, false}) {
    std::printf(
        "== %s probes: ns per lookup+increment, %zu keys, 8 probes/key ==\n",
        Sequential ? "sequential (detector run shape)" : "shuffled",
        WorkingSet);
    std::printf("%-12s  %13s  %13s  %13s  %13s  %10s\n", "keys",
                "chained+ident", "chained+mix", "open+ident", "open+mix",
                "ShadowMap");
    for (const char *Shape : {"stride64", "stride4096", "highbits"}) {
      const auto Keys = makeKeys(Shape, WorkingSet);
      const auto Probes = makeProbes(Keys, Sequential);
      double Best[5] = {1e9, 1e9, 1e9, 1e9, 1e9};
      for (int Rep = 0; Rep != 3; ++Rep) {
        std::unordered_map<uint64_t, uint64_t> ChainedId;
        std::unordered_map<uint64_t, uint64_t, Mix64Hash> ChainedMix;
        OpenTable<IdentityHash> OpenId(OpenCapacity);
        OpenTable<Mix64Hash> OpenMix(OpenCapacity);
        Best[0] = std::min(Best[0], timeMap(ChainedId, Keys, Probes));
        Best[1] = std::min(Best[1], timeMap(ChainedMix, Keys, Probes));
        Best[2] = std::min(Best[2], timeMap(OpenId, Keys, Probes));
        Best[3] = std::min(Best[3], timeMap(OpenMix, Keys, Probes));
        Best[4] = std::min(Best[4], timeShadow(Keys, Probes));
      }
      std::printf("%-12s  %13.1f  %13.1f  %13.1f  %13.1f  %10.1f\n",
                  Shape, Best[0], Best[1], Best[2], Best[3], Best[4]);
    }
    std::printf("\n");
  }
  return 0;
}
