//===-- bench/detector_throughput.cpp - Detector backend comparison ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Compares the offline analysis cost of the three detector backends on
// one full-logging trace of the Dryad Channel + stdlib benchmark: the
// vector-clock happens-before detector (the paper's choice), the
// FastTrack-style epoch detector (PLDI 2009's answer to vector-clock
// cost, §6.1's [8]-adjacent line of work), and the Eraser-style lockset
// baseline. Reported as events/second over the identical replay.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "detector/LocksetDetector.h"
#include "harness/DetectionExperiment.h"
#include "harness/Tables.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <cstdio>

using namespace literace;

int main() {
  WorkloadParams Params = paramsFromEnv();
  auto W = makeWorkload(WorkloadKind::ChannelWithStdLib);
  std::fprintf(stderr, "producing the trace...\n");
  ExperimentRun Run = executeExperiment(*W, Params);
  const Trace &T = Run.TraceData;
  std::fprintf(stderr, "trace: %zu events (%zu memory, %zu sync)\n",
               T.totalEvents(), T.memoryOps(), T.syncOps());

  TableFormatter Table("Detector backend throughput on one Dryad Channel "
                       "+ stdlib trace");
  Table.addRow({"Detector", "Races", "Racy addrs", "Time", "M events/s"});
  auto Measure = [&](const char *Name, auto Detect) {
    RaceReport Report;
    WallTimer Timer;
    bool Ok = Detect(T, Report);
    double Seconds = Timer.seconds();
    Table.addRow({Name, std::to_string(Report.numStaticRaces()),
                  std::to_string(Report.racyAddresses().size()),
                  TableFormatter::num(Seconds, 3) + "s",
                  TableFormatter::num(
                      static_cast<double>(T.totalEvents()) / 1e6 / Seconds,
                      1)});
    if (!Ok)
      std::fprintf(stderr, "warning: %s saw an inconsistent log\n", Name);
  };
  Measure("happens-before (vector clocks)",
          [](const Trace &Tr, RaceReport &R) { return detectRaces(Tr, R); });
  Measure("FastTrack (epochs)", [](const Trace &Tr, RaceReport &R) {
    return detectRacesFastTrack(Tr, R);
  });
  Measure("lockset (Eraser; imprecise)",
          [](const Trace &Tr, RaceReport &R) {
            return detectLocksetViolations(Tr, R);
          });
  Table.print();
  return 0;
}
