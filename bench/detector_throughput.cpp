//===-- bench/detector_throughput.cpp - Detector backend comparison ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Compares the offline analysis cost of the three detector backends on
// one full-logging trace of the Dryad Channel + stdlib benchmark: the
// vector-clock happens-before detector (the paper's choice), the
// FastTrack-style epoch detector (PLDI 2009's answer to vector-clock
// cost, §6.1's [8]-adjacent line of work), and the Eraser-style lockset
// baseline. Reported as events/second over the identical replay.
//
// Then sweeps the sharded happens-before pipeline (docs/DETECTOR.md) over
// shards ∈ {1, 2, 4, 8} on the same trace, verifying the merged report is
// byte-identical to the serial one at every width and reporting the
// speedup trajectory. With --json[=PATH] both the backend comparison and
// the shard sweep are written as JSON (default
// BENCH_detector_throughput.json) so successive PRs can track the
// trajectory with tools/bench-compare. LITERACE_REPEATS>1 takes the best
// of N timings per backend and per width.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "detector/LocksetDetector.h"
#include "detector/OnlineDetector.h"
#include "detector/ShardedDetector.h"
#include "harness/DetectionExperiment.h"
#include "harness/Tables.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace literace;

namespace {

/// One backend's best-of-N measurement, for the table and the JSON
/// snapshot. Label is a stable slug (bench-compare keys list entries on
/// it, so renaming one orphans its history).
struct BackendPoint {
  const char *Label = "";
  size_t Races = 0;
  size_t RacyAddrs = 0;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
};

struct SweepPoint {
  unsigned Shards = 1;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
  double Speedup = 1.0;
  size_t StaticRaces = 0;
  /// Pipeline telemetry per shard, from the fastest repeat (empty for
  /// the serial width, which has no queues).
  std::vector<ShardedHBDetector::ShardTelemetry> ShardStats;
};

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      JsonPath = "BENCH_detector_throughput.json";
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
  }

  WorkloadParams Params = paramsFromEnv();
  const unsigned Repeats = repeatsFromEnv(1);
  auto W = makeWorkload(WorkloadKind::ChannelWithStdLib);
  std::fprintf(stderr, "producing the trace...\n");
  ExperimentRun Run = executeExperiment(*W, Params);
  const Trace &T = Run.TraceData;
  std::fprintf(stderr, "trace: %zu events (%zu memory, %zu sync)\n",
               T.totalEvents(), T.memoryOps(), T.syncOps());

  TableFormatter Table("Detector backend throughput on one Dryad Channel "
                       "+ stdlib trace");
  Table.addRow({"Detector", "Races", "Racy addrs", "Time", "M events/s"});
  std::vector<BackendPoint> Backends;
  auto Measure = [&](const char *Name, const char *Label, auto Detect) {
    BackendPoint P;
    P.Label = Label;
    for (unsigned Rep = 0; Rep != (Repeats == 0 ? 1 : Repeats); ++Rep) {
      RaceReport Report;
      WallTimer Timer;
      bool Ok = Detect(T, Report);
      double Seconds = Timer.seconds();
      if (!Ok)
        std::fprintf(stderr, "warning: %s saw an inconsistent log\n", Name);
      if (Rep == 0 || Seconds < P.Seconds)
        P.Seconds = Seconds;
      P.Races = Report.numStaticRaces();
      P.RacyAddrs = Report.racyAddresses().size();
    }
    P.EventsPerSec = static_cast<double>(T.totalEvents()) / P.Seconds;
    Backends.push_back(P);
    Table.addRow({Name, std::to_string(P.Races),
                  std::to_string(P.RacyAddrs),
                  TableFormatter::num(P.Seconds, 3) + "s",
                  TableFormatter::num(P.EventsPerSec / 1e6, 1)});
  };
  Measure("happens-before (vector clocks)", "hb",
          [](const Trace &Tr, RaceReport &R) { return detectRaces(Tr, R); });
  Measure("FastTrack (epochs)", "fasttrack",
          [](const Trace &Tr, RaceReport &R) {
            return detectRacesFastTrack(Tr, R);
          });
  Measure("lockset (Eraser; imprecise)", "lockset",
          [](const Trace &Tr, RaceReport &R) {
            return detectLocksetViolations(Tr, R);
          });
  Measure("online (streaming sink)", "online",
          [](const Trace &Tr, RaceReport &R) {
            OnlineDetector D(Tr.NumTimestampCounters, R);
            for (ThreadId Tid = 0; Tid != Tr.PerThread.size(); ++Tid)
              D.writeChunk(Tid, Tr.PerThread[Tid].data(),
                           Tr.PerThread[Tid].size());
            return D.finish();
          });
  Table.print();

  // --- Sharded HB sweep -------------------------------------------------
  RaceReport SerialReport;
  if (!detectRaces(T, SerialReport))
    std::fprintf(stderr, "warning: serial replay saw an inconsistent log\n");
  const std::string SerialText = SerialReport.describe();

  std::vector<SweepPoint> Sweep;
  double SerialSeconds = 0.0;
  bool Identical = true;
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    DetectorOptions Options;
    Options.Shards = Shards;
    double Best = 0.0;
    size_t Races = 0;
    std::vector<ShardedHBDetector::ShardTelemetry> BestStats;
    for (unsigned Rep = 0; Rep != (Repeats == 0 ? 1 : Repeats); ++Rep) {
      RaceReport Report;
      std::vector<ShardedHBDetector::ShardTelemetry> Stats;
      WallTimer Timer;
      bool Ok;
      if (Shards <= 1) {
        Ok = detectRaces(T, Report, ReplayOptions(), Options);
      } else {
        // Explicit form of the same pipeline detectRaces runs, so the
        // per-shard queue telemetry can be read off afterwards.
        ShardedHBDetector Detector(Options);
        Ok = replayTrace(T, Detector);
        Detector.finish(Report);
        for (unsigned S = 0; S != Detector.numShards(); ++S)
          Stats.push_back(Detector.shardTelemetry(S));
      }
      double Seconds = Timer.seconds();
      if (!Ok)
        std::fprintf(stderr, "warning: %u-shard replay inconsistent\n",
                     Shards);
      if (Report.describe() != SerialText) {
        std::fprintf(stderr,
                     "ERROR: %u-shard report differs from serial output\n",
                     Shards);
        Identical = false;
      }
      Races = Report.numStaticRaces();
      if (Rep == 0 || Seconds < Best) {
        Best = Seconds;
        BestStats = std::move(Stats);
      }
    }
    if (Shards == 1)
      SerialSeconds = Best;
    SweepPoint P;
    P.Shards = Shards;
    P.Seconds = Best;
    P.EventsPerSec = static_cast<double>(T.totalEvents()) / Best;
    P.Speedup = SerialSeconds / Best;
    P.StaticRaces = Races;
    P.ShardStats = std::move(BestStats);
    Sweep.push_back(P);
  }

  TableFormatter Shards("Sharded happens-before sweep (byte-identical "
                        "reports at every width)");
  Shards.addRow({"Shards", "Races", "Time", "M events/s", "Speedup",
                 "Queue HW", "Parks p/c"});
  for (const SweepPoint &P : Sweep) {
    size_t QueueHw = 0;
    uint64_t ProdParks = 0;
    uint64_t ConsParks = 0;
    for (const auto &S : P.ShardStats) {
      QueueHw = std::max(QueueHw, S.QueueDepthHighWater);
      ProdParks += S.ProducerParks;
      ConsParks += S.ConsumerParks;
    }
    Shards.addRow({std::to_string(P.Shards), std::to_string(P.StaticRaces),
                   TableFormatter::num(P.Seconds, 3) + "s",
                   TableFormatter::num(P.EventsPerSec / 1e6, 1),
                   TableFormatter::num(P.Speedup, 2) + "x",
                   P.ShardStats.empty() ? "-" : std::to_string(QueueHw),
                   P.ShardStats.empty()
                       ? "-"
                       : std::to_string(ProdParks) + "/" +
                             std::to_string(ConsParks)});
  }
  Shards.print();
  std::fprintf(stderr, "host cores: %u\n",
               std::thread::hardware_concurrency());

  if (!JsonPath.empty()) {
    std::FILE *File = std::fopen(JsonPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(File,
                 "{\n  \"benchmark\": \"%s\",\n  \"events\": %zu,\n"
                 "  \"mem_ops\": %zu,\n  \"sync_ops\": %zu,\n"
                 "  \"host_cores\": %u,\n  \"identical_reports\": %s,\n",
                 W->name().c_str(), T.totalEvents(), T.memoryOps(),
                 T.syncOps(), std::thread::hardware_concurrency(),
                 Identical ? "true" : "false");
    std::fprintf(File, "  \"backends\": [\n");
    for (size_t I = 0; I != Backends.size(); ++I) {
      const BackendPoint &P = Backends[I];
      std::fprintf(File,
                   "    {\"backend\": \"%s\", \"seconds\": %.6f, "
                   "\"events_per_sec\": %.1f, \"static_races\": %zu, "
                   "\"racy_addrs\": %zu}%s\n",
                   P.Label, P.Seconds, P.EventsPerSec, P.Races, P.RacyAddrs,
                   I + 1 == Backends.size() ? "" : ",");
    }
    std::fprintf(File, "  ],\n  \"sweep\": [\n");
    for (size_t I = 0; I != Sweep.size(); ++I) {
      const SweepPoint &P = Sweep[I];
      std::fprintf(File,
                   "    {\"shards\": %u, \"seconds\": %.6f, "
                   "\"events_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"static_races\": %zu,\n     \"shard_queues\": [",
                   P.Shards, P.Seconds, P.EventsPerSec, P.Speedup,
                   P.StaticRaces);
      for (size_t S = 0; S != P.ShardStats.size(); ++S) {
        const auto &Q = P.ShardStats[S];
        std::fprintf(File,
                     "%s{\"depth_highwater\": %zu, "
                     "\"producer_parks\": %llu, "
                     "\"consumer_parks\": %llu}",
                     S == 0 ? "" : ", ", Q.QueueDepthHighWater,
                     static_cast<unsigned long long>(Q.ProducerParks),
                     static_cast<unsigned long long>(Q.ConsumerParks));
      }
      std::fprintf(File, "]}%s\n", I + 1 == Sweep.size() ? "" : ",");
    }
    std::fprintf(File, "  ]\n}\n");
    std::fclose(File);
    std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());
  }
  return Identical ? 0 : 1;
}
