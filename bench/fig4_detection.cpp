//===-- bench/fig4_detection.cpp - Paper Figure 4 ---------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Figure 4: the proportion of static data races each sampler
// finds per benchmark, on one and the same execution per benchmark (§5.3
// methodology), plus the weighted-average effective sampling rates.
//
//===----------------------------------------------------------------------===//

#include "DetectionSuiteCommon.h"

using namespace literace;

int main() {
  // The paper averages three runs per benchmark.
  auto Results = runDetectionSuite(detectionSuiteKinds(),
                                   /*DefaultRepeats=*/3);
  printFigure4(Results);
  return 0;
}
