//===-- bench/table3_samplers.cpp - Paper Table 3 --------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Table 3: the seven samplers with their average and
// memop-weighted average effective sampling rates over the benchmark
// suite (§5.2).
//
//===----------------------------------------------------------------------===//

#include "DetectionSuiteCommon.h"

using namespace literace;

int main() {
  auto Results = runDetectionSuite(detectionSuiteKinds());
  printTable3(Results);
  return 0;
}
