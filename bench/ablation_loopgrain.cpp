//===-- bench/ablation_loopgrain.cpp - §7 loop-granularity ablation ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Quantifies the paper's §7 future-work proposal on the loop-heavy
// SciCompute kernel. With function-granularity sampling alone, the
// thread-local adaptive sampler's initial bursts cover ten of the ~20
// calls each thread ever makes — so the "sampler" logs about half of all
// memory operations. With the loop-granularity hints, logging inside a
// sampled activation decays after the first 64 loop iterations, cutting
// the log by an order of magnitude; the cost is that in-loop races can
// be missed once decay kicks in (the halo race's detectability is
// reported for both variants).
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"
#include "harness/Tables.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <cstdio>

using namespace literace;

namespace {

struct VariantResult {
  std::string Name;
  double LiteRaceSec = 0.0;
  double BaselineSec = 0.0;
  uint64_t MemOpsLogged = 0;
  uint64_t LogBytes = 0;
  size_t RacesFound = 0;
  size_t SeededFound = 0;
  size_t SeededTotal = 0;
};

VariantResult measure(WorkloadKind Kind, const WorkloadParams &Params) {
  VariantResult Result;
  {
    // Baseline (uninstrumented) time.
    auto W = makeWorkload(Kind);
    RuntimeConfig Config;
    Config.Mode = RunMode::Baseline;
    Runtime RT(Config, nullptr);
    W->bind(RT);
    WallTimer Timer;
    W->run(RT, Params);
    Result.BaselineSec = Timer.seconds();
    Result.Name = W->name();
  }
  // LiteRace mode with an in-memory sink; detect on the sampled log.
  auto W = makeWorkload(Kind);
  MemorySink Sink(128);
  RuntimeConfig Config;
  Config.Mode = RunMode::LiteRace;
  Config.Seed = Params.Seed;
  Runtime RT(Config, &Sink);
  W->bind(RT);
  WallTimer Timer;
  W->run(RT, Params);
  Result.LiteRaceSec = Timer.seconds();
  Result.MemOpsLogged = RT.stats().MemOpsLogged;
  Result.LogBytes = Sink.bytesWritten();

  RaceReport Report;
  Trace T = Sink.takeTrace();
  if (!detectRaces(T, Report))
    std::fprintf(stderr, "warning: inconsistent log for %s\n",
                 Result.Name.c_str());
  Result.RacesFound = Report.numStaticRaces();
  auto Manifest = W->seededRaces();
  Result.SeededTotal = Manifest.size();
  for (const SeededRaceSpec &Spec : Manifest) {
    for (const StaticRace &Race : Report.staticRaces()) {
      bool AIn = false, BIn = false;
      for (Pc Site : Spec.Sites) {
        AIn |= Site == Race.Key.first;
        BIn |= Site == Race.Key.second;
      }
      if (AIn && BIn) {
        ++Result.SeededFound;
        break;
      }
    }
  }
  return Result;
}

} // namespace

int main() {
  WorkloadParams Params = paramsFromEnv();
  VariantResult Fn = measure(WorkloadKind::SciComputeFn, Params);
  VariantResult Loop = measure(WorkloadKind::SciComputeLoop, Params);

  TableFormatter Table("Ablation: §7 loop-granularity sampling on the "
                       "SciCompute kernel (LiteRace mode)");
  Table.addRow({"Variant", "Slowdown", "Mem ops logged", "Log MB",
                "Seeded races found"});
  for (const VariantResult &R : {Fn, Loop})
    Table.addRow({R.Name, TableFormatter::times(R.LiteRaceSec /
                                                R.BaselineSec),
                  std::to_string(R.MemOpsLogged),
                  TableFormatter::num(R.LogBytes / 1e6),
                  std::to_string(R.SeededFound) + "/" +
                      std::to_string(R.SeededTotal)});
  Table.print();
  std::printf("loop hints cut the sampled log %.1fx\n",
              static_cast<double>(Fn.MemOpsLogged) /
                  static_cast<double>(Loop.MemOpsLogged ? Loop.MemOpsLogged
                                                        : 1));
  return 0;
}
