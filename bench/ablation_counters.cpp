//===-- bench/ablation_counters.cpp - Timestamp counter ablation ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Ablates the §4.2 design choice of 128 hashed logical-timestamp
// counters. A single global counter serializes every synchronization
// operation across all threads; hashing SyncVars over a bank of padded
// counters removes that contention. Measured with google-benchmark under
// 1-4 threads drawing timestamps for distinct synchronization objects.
//
//===----------------------------------------------------------------------===//

#include "runtime/TimestampManager.h"

#include <benchmark/benchmark.h>
#include <memory>

using namespace literace;

namespace {

std::unique_ptr<TimestampManager> SharedManager;

void timestampDraw(benchmark::State &State) {
  if (State.thread_index() == 0)
    SharedManager = std::make_unique<TimestampManager>(
        static_cast<unsigned>(State.range(0)));
  // Each thread uses its own synchronization object, as independent
  // mutexes in a real program would; with few counters they collide on
  // the same cache line anyway.
  SyncVar S = makeSyncVar(SyncObjectKind::Mutex,
                          0x1000 + 64 * State.thread_index());
  for (auto _ : State)
    benchmark::DoNotOptimize(SharedManager->draw(S));
  if (State.thread_index() == 0)
    State.SetItemsProcessed(State.iterations() * State.threads());
}

} // namespace

BENCHMARK(timestampDraw)
    ->Arg(1)
    ->Arg(8)
    ->Arg(128)
    ->Arg(1024)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

BENCHMARK_MAIN();
