//===-- bench/fig6_overhead_breakdown.cpp - Paper Figure 6 ------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Figure 6: the stacked overhead of LiteRace's components —
// dispatch checks only, plus synchronization logging, plus sampled memory
// logging — as cumulative slowdowns over the uninstrumented baseline.
//
//===----------------------------------------------------------------------===//

#include "harness/Tables.h"

#include <cstdio>

using namespace literace;

int main() {
  WorkloadParams Params = paramsFromEnv();
  unsigned Repeats = repeatsFromEnv(2);
  const WorkloadKind Kinds[] = {
      WorkloadKind::LKRHash,          WorkloadKind::LFList,
      WorkloadKind::ChannelWithStdLib, WorkloadKind::Channel,
      WorkloadKind::ConcRTMessaging,  WorkloadKind::ConcRTScheduling,
      WorkloadKind::Httpd1,           WorkloadKind::Httpd2,
      WorkloadKind::BrowserStart,     WorkloadKind::BrowserRender};
  std::vector<OverheadRow> Rows;
  for (WorkloadKind Kind : Kinds) {
    Rows.push_back(runOverheadExperiment(Kind, Params, Repeats));
    std::fprintf(stderr, "  [fig6] %s done\n", Rows.back().Benchmark.c_str());
  }
  printFigure6(Rows);
  return 0;
}
