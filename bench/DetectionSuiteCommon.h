//===-- bench/DetectionSuiteCommon.h - Shared bench driver -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the detection-study bench binaries (Tables 2-4,
/// Figures 4-5): runs the §5.3 experiment over a benchmark suite with
/// parameters taken from the environment (LITERACE_SCALE,
/// LITERACE_REPEATS, LITERACE_SEED).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_BENCH_DETECTIONSUITECOMMON_H
#define LITERACE_BENCH_DETECTIONSUITECOMMON_H

#include "harness/Tables.h"

#include <cstdio>
#include <vector>

namespace literace {

/// The eight Fig. 4 benchmark-input pairs, in paper order.
inline std::vector<WorkloadKind> detectionSuiteKinds() {
  return {WorkloadKind::ChannelWithStdLib, WorkloadKind::Channel,
          WorkloadKind::ConcRTMessaging,   WorkloadKind::ConcRTScheduling,
          WorkloadKind::Httpd1,            WorkloadKind::Httpd2,
          WorkloadKind::BrowserStart,      WorkloadKind::BrowserRender};
}

/// The six Table 4 / Fig. 5 pairs (no ConcRT).
inline std::vector<WorkloadKind> rareFrequentSuiteKinds() {
  return {WorkloadKind::ChannelWithStdLib, WorkloadKind::Channel,
          WorkloadKind::Httpd1,            WorkloadKind::Httpd2,
          WorkloadKind::BrowserStart,      WorkloadKind::BrowserRender};
}

/// Runs the detection experiment for each kind, with progress on stderr.
inline std::vector<DetectionResult>
runDetectionSuite(const std::vector<WorkloadKind> &Kinds,
                  unsigned DefaultRepeats = 1) {
  WorkloadParams Params = paramsFromEnv();
  unsigned Repeats = repeatsFromEnv(DefaultRepeats);
  DetectorOptions Detector = detectorOptionsFromEnv();
  std::vector<DetectionResult> Results;
  for (WorkloadKind Kind : Kinds) {
    Results.push_back(runDetectionExperiment(Kind, Params, Repeats, Detector));
    std::fprintf(stderr, "  [detection] %s done (%zu static races)\n",
                 Results.back().Benchmark.c_str(),
                 Results.back().StaticTotal);
  }
  return Results;
}

} // namespace literace

#endif // LITERACE_BENCH_DETECTIONSUITECOMMON_H
