//===-- bench/collector_ingest.cpp - Collector ingest throughput ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The headline for the literace-collectd ingestion path (docs/COLLECTOR.md):
// N concurrent clients stream identical pre-encoded v2 segment streams into
// one in-process CollectorServer over real AF_UNIX sockets, and the run is
// charged until every session has been decoded, detected, and triaged.
// Sweeping the client count {1, 2, 4, 8} shows how the single detection
// thread and the MPSC hand-off queue hold up as ingest concurrency grows:
// aggregate events/second, wall time, queue high-water/parks, and the
// dedup'd race count (which must not depend on the client count).
//
// With --json[=PATH] the results are also written as JSON (default
// BENCH_collector_ingest.json) so successive PRs can track the numbers;
// tools/bench-compare keys the sweep rows by their "clients" label.
// LITERACE_SCALE scales the stream size per client.
//
// A second, fault-injected sweep (docs/ROBUSTNESS.md) crosses the
// disconnect rate with the client spool: every connection is torn at a
// seeded byte offset (0, 4, or 16 tears per client stream), once with
// the plain legacy transport — which drops the tail of the stream at
// the first tear, the pre-spool behavior — and once with
// SpoolingSocketOutput riding through the tears. The spooled rows must
// lose zero bytes and report the same dedup'd race set as the fault-free
// baseline; the legacy rows quantify what each disconnect rate costs in
// lost bytes and missed races. The "fault_sweep" JSON rows are keyed by
// {spool, tears_per_client}.
//
//===----------------------------------------------------------------------===//

#include "collector/Collector.h"
#include "detector/LogBuilder.h"
#include "runtime/EventLog.h"
#include "support/ByteOutput.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace literace;
using namespace literace::collector;

namespace {

struct Result {
  unsigned Clients = 0;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
  uint64_t EventsIngested = 0;
  uint64_t BytesIngested = 0;
  size_t DistinctRaces = 0;
  uint64_t QueueDepthHighWater = 0;
  uint64_t ProducerParks = 0;
};

std::string tempPath(const char *Name) {
  const char *Dir = std::getenv("TMPDIR");
  return std::string(Dir && *Dir ? Dir : "/tmp") + "/" + Name;
}

/// One client's payload: a multi-thread trace with sync traffic, a few
/// races, and enough volume to make the decode/detect path the cost.
Trace buildTrace(size_t Repeats) {
  LogBuilder B(64);
  B.onThread(0).threadStart();
  B.onThread(1).threadStart();
  B.onThread(2).threadStart();
  for (size_t I = 0; I != Repeats; ++I) {
    const uint64_t Base = 0x10000 + (I % 512) * 64;
    B.onThread(0)
        .lock(1)
        .write(Base, makePc(1, 1))
        .read(Base + 8, makePc(1, 2))
        .unlock(1);
    B.onThread(1)
        .lock(1)
        .write(Base, makePc(2, 1))
        .unlock(1)
        .write(0x9000, makePc(2, 7)); // Unsynchronized: races with t2.
    B.onThread(2)
        .write(0x9000, makePc(3, 7))
        .read(Base + 8, makePc(3, 2));
  }
  B.onThread(0).threadEnd();
  B.onThread(1).threadEnd();
  B.onThread(2).threadEnd();
  return B.build();
}

/// Encodes \p T as one on-disk v2 segment stream (what a client sends).
std::vector<uint8_t> encodeTrace(const Trace &T) {
  const std::string Path = tempPath("literace_collector_bench.bin");
  {
    SegmentedFileSink Sink(Path, T.NumTimestampCounters);
    for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
      const std::vector<EventRecord> &Stream = T.PerThread[Tid];
      for (size_t At = 0; At < Stream.size(); At += 2048)
        Sink.writeChunk(static_cast<ThreadId>(Tid), Stream.data() + At,
                        std::min<size_t>(2048, Stream.size() - At));
    }
    Sink.close();
  }
  std::vector<uint8_t> Bytes;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (File) {
    char Buf[65536];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
      Bytes.insert(Bytes.end(), Buf, Buf + N);
    std::fclose(File);
  }
  std::remove(Path.c_str());
  return Bytes;
}

/// Pulls one numeric field out of a /status document by key.
uint64_t jsonU64(const std::string &Json, const std::string &Key) {
  const size_t At = Json.find("\"" + Key + "\": ");
  if (At == std::string::npos)
    return 0;
  return std::strtoull(Json.c_str() + At + Key.size() + 4, nullptr, 10);
}

Result runClients(unsigned Clients, const std::vector<uint8_t> &Bytes,
                  size_t EventsPerClient) {
  const std::string Socket = tempPath("literace_collector_bench.sock");
  Result R;
  R.Clients = Clients;

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = Socket;
  Config.Triage.RatePerSec = 0; // Measure the pipeline, not the limiter.
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    std::exit(1);
  }

  WallTimer Timer;
  std::vector<std::thread> Streams;
  for (unsigned C = 0; C != Clients; ++C)
    Streams.emplace_back([&] {
      SocketByteOutput Out(Socket);
      size_t At = 0;
      while (Out.ok() && At < Bytes.size()) {
        WriteResult W = Out.write(Bytes.data() + At,
                                  std::min<size_t>(65536, Bytes.size() - At));
        At += W.Written;
        if (W.Written == 0 && !W.Transient)
          break;
      }
      Out.close();
    });
  for (std::thread &S : Streams)
    S.join();
  // The clock runs until the last session is fully detected and triaged.
  Server.waitForSessions(Clients);
  R.Seconds = Timer.seconds();
  const std::string Status = Server.statusJson();
  Server.stop();

  const telemetry::MetricsSnapshot Snap = Registry.snapshot();
  R.EventsIngested = Snap.counter("collector.events.ingested");
  R.BytesIngested = Snap.counter("collector.bytes.ingested");
  R.QueueDepthHighWater = jsonU64(Status, "high_water");
  R.ProducerParks = jsonU64(Status, "producer_parks");
  R.DistinctRaces = Server.triage().distinctRaces();
  R.EventsPerSec =
      static_cast<double>(Clients) * static_cast<double>(EventsPerClient) /
      R.Seconds;
  std::remove(Socket.c_str());
  return R;
}

struct FaultResult {
  bool Spool = false;
  unsigned TearsPerClient = 0;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
  uint64_t EventsIngested = 0;
  uint64_t BytesLost = 0;
  uint64_t Reconnects = 0;
  uint64_t ReplayedBytes = 0;
  size_t DistinctRaces = 0;
};

/// One fault-injected run: \p Clients stream \p Bytes each while every
/// connection is torn after Bytes.size()/Tears bytes. With \p Spool the
/// clients ride through on SpoolingSocketOutput (spool + resume); without
/// it they behave like the pre-spool tee and drop the tail at the first
/// tear. Tears == 0 is the fault-free baseline on each transport.
FaultResult runFaulted(bool Spool, unsigned Tears, unsigned Clients,
                       const std::vector<uint8_t> &Bytes,
                       size_t EventsPerClient) {
  const std::string Socket = tempPath("literace_collector_bench.sock");
  FaultResult R;
  R.Spool = Spool;
  R.TearsPerClient = Tears;
  const uint64_t TearEvery =
      Tears == 0 ? 0 : std::max<uint64_t>(Bytes.size() / Tears, 4096);

  telemetry::MetricsRegistry Registry;
  CollectorConfig Config;
  Config.IngestSocketPath = Socket;
  Config.Triage.RatePerSec = 0;
  // Ack often so a tear replays at most 64 KB, not the 1 MB default —
  // otherwise replay amplification, not the fault rate, dominates.
  Config.AckEveryBytes = 64 << 10;
  Config.Metrics = &Registry;
  CollectorServer Server(std::move(Config));
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    std::exit(1);
  }

  std::atomic<uint64_t> Lost{0}, Reconnects{0}, Replayed{0};
  WallTimer Timer;
  std::vector<std::thread> Streams;
  for (unsigned C = 0; C != Clients; ++C)
    Streams.emplace_back([&, C] {
      if (Spool) {
        SpoolingSocketOutput::Options Opts;
        Opts.SocketPath = Socket;
        Opts.SpoolPath = tempPath(
            ("literace_collector_bench_spool" + std::to_string(C)).c_str());
        Opts.BackoffInitialMs = 1;
        Opts.BackoffMaxMs = 4;
        Opts.JitterSeed = C + 1;
        Opts.DrainDeadlineMs = 60000;
        Opts.RunIdHi = 0xBE9C;
        Opts.RunIdLo = C + 1;
        if (TearEvery != 0) {
          FaultPlan Tear;
          Tear.FailAtByte = TearEvery; // Last plan repeats: every
          Opts.SendFaults.push_back(Tear); // connection tears again.
        }
        SpoolingSocketOutput Out(std::move(Opts));
        size_t At = 0;
        while (Out.ok() && At < Bytes.size()) {
          WriteResult W = Out.write(
              Bytes.data() + At, std::min<size_t>(65536, Bytes.size() - At));
          At += W.Written;
          if (W.Written == 0 && !W.Transient)
            break;
        }
        Out.close();
        Lost += Out.bytesLost();
        Reconnects += Out.reconnects();
        Replayed += Out.replayedBytes();
      } else {
        SocketByteOutput Raw(Socket);
        FaultPlan Tear;
        Tear.FailAtByte = TearEvery; // 0 = never tears.
        FaultySink Out(Raw, Tear);
        size_t At = 0;
        while (Out.ok() && At < Bytes.size()) {
          WriteResult W = Out.write(
              Bytes.data() + At, std::min<size_t>(65536, Bytes.size() - At));
          At += W.Written;
          if (W.Written == 0 && !W.Transient)
            break;
        }
        Out.close();
        Lost += Bytes.size() - At; // The tail the legacy tee drops.
      }
    });
  for (std::thread &S : Streams)
    S.join();
  Server.waitForSessions(Clients);
  R.Seconds = Timer.seconds();
  Server.stop();

  const telemetry::MetricsSnapshot Snap = Registry.snapshot();
  R.EventsIngested = Snap.counter("collector.events.ingested");
  R.BytesLost = Lost.load();
  R.Reconnects = Reconnects.load();
  R.ReplayedBytes = Replayed.load();
  R.DistinctRaces = Server.triage().distinctRaces();
  R.EventsPerSec =
      static_cast<double>(Clients) * static_cast<double>(EventsPerClient) /
      R.Seconds;
  std::remove(Socket.c_str());
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      JsonPath = "BENCH_collector_ingest.json";
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]]\n", Argv[0]);
      return 2;
    }
  }

  double Scale = 1.0;
  if (const char *Env = std::getenv("LITERACE_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0.0)
    Scale = 1.0;
  const size_t Repeats = static_cast<size_t>(20000 * Scale) + 1;

  const Trace T = buildTrace(Repeats);
  const std::vector<uint8_t> Bytes = encodeTrace(T);
  const size_t EventsPerClient = T.totalEvents();
  std::fprintf(stderr,
               "per client: %zu events, %.1f MB encoded; sweeping client "
               "counts\n",
               EventsPerClient, static_cast<double>(Bytes.size()) / 1e6);

  std::vector<Result> Results;
  for (unsigned Clients : {1u, 2u, 4u, 8u})
    Results.push_back(runClients(Clients, Bytes, EventsPerClient));

  std::fprintf(stderr,
               "\nCollector ingest throughput (decode + detect + triage, "
               "wall-clocked to last session)\n");
  std::fprintf(stderr, "  %-8s %-9s %-12s %-8s %-10s %-7s\n", "Clients",
               "Time", "M events/s", "Races", "Queue HW", "Parks");
  for (const Result &R : Results)
    std::fprintf(stderr, "  %-8u %-9s %-12.1f %-8zu %-10llu %-7llu\n",
                 R.Clients,
                 (std::to_string(R.Seconds).substr(0, 5) + "s").c_str(),
                 R.EventsPerSec / 1e6, R.DistinctRaces,
                 static_cast<unsigned long long>(R.QueueDepthHighWater),
                 static_cast<unsigned long long>(R.ProducerParks));

  // The dedup invariant: the race set must not grow with the client count.
  for (const Result &R : Results)
    if (R.DistinctRaces != Results.front().DistinctRaces) {
      std::fprintf(stderr,
                   "error: race set varies with client count (%zu vs %zu)\n",
                   R.DistinctRaces, Results.front().DistinctRaces);
      return 1;
    }

  // Fault-injected sweep: disconnect rate x spool on/off, 4 clients.
  const unsigned FaultClients = 4;
  std::vector<FaultResult> Faulted;
  for (unsigned Tears : {0u, 4u, 16u})
    for (bool Spool : {false, true})
      Faulted.push_back(
          runFaulted(Spool, Tears, FaultClients, Bytes, EventsPerClient));

  std::fprintf(stderr,
               "\nFault-injected ingest (%u clients, connection torn "
               "every size/N bytes)\n",
               FaultClients);
  std::fprintf(stderr, "  %-7s %-7s %-9s %-12s %-12s %-7s %-12s %-7s\n",
               "Spool", "Tears", "Time", "M events/s", "Lost bytes",
               "Reconn", "Replayed", "Races");
  for (const FaultResult &R : Faulted)
    std::fprintf(stderr,
                 "  %-7s %-7u %-9s %-12.1f %-12llu %-7llu %-12llu %-7zu\n",
                 R.Spool ? "on" : "off", R.TearsPerClient,
                 (std::to_string(R.Seconds).substr(0, 5) + "s").c_str(),
                 R.EventsPerSec / 1e6,
                 static_cast<unsigned long long>(R.BytesLost),
                 static_cast<unsigned long long>(R.Reconnects),
                 static_cast<unsigned long long>(R.ReplayedBytes),
                 R.DistinctRaces);

  // The durability invariant: with the spool on, no disconnect rate may
  // lose a byte or shrink the dedup'd race set below the baseline.
  for (const FaultResult &R : Faulted)
    if (R.Spool &&
        (R.BytesLost != 0 || R.DistinctRaces != Results.front().DistinctRaces)) {
      std::fprintf(stderr,
                   "error: spooled run at %u tears lost %llu byte(s), "
                   "%zu race(s) vs baseline %zu\n",
                   R.TearsPerClient,
                   static_cast<unsigned long long>(R.BytesLost),
                   R.DistinctRaces, Results.front().DistinctRaces);
      return 1;
    }

  if (!JsonPath.empty()) {
    std::FILE *File = std::fopen(JsonPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(File,
                 "{\n  \"benchmark\": \"collector_ingest\",\n"
                 "  \"events_per_client\": %zu,\n"
                 "  \"encoded_bytes_per_client\": %zu,\n  \"sweep\": [\n",
                 EventsPerClient, Bytes.size());
    for (size_t I = 0; I != Results.size(); ++I) {
      const Result &R = Results[I];
      std::fprintf(
          File,
          "    {\"clients\": %u, \"seconds\": %.6f, "
          "\"events_per_sec\": %.1f, \"events_ingested\": %llu, "
          "\"bytes_ingested\": %llu, \"distinct_races\": %zu, "
          "\"queue_depth_highwater\": %llu, \"producer_parks\": %llu}%s\n",
          R.Clients, R.Seconds, R.EventsPerSec,
          static_cast<unsigned long long>(R.EventsIngested),
          static_cast<unsigned long long>(R.BytesIngested),
          R.DistinctRaces,
          static_cast<unsigned long long>(R.QueueDepthHighWater),
          static_cast<unsigned long long>(R.ProducerParks),
          I + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(File, "  ],\n  \"fault_clients\": %u,\n  \"fault_sweep\": [\n",
                 FaultClients);
    for (size_t I = 0; I != Faulted.size(); ++I) {
      const FaultResult &R = Faulted[I];
      std::fprintf(
          File,
          "    {\"spool\": %s, \"tears_per_client\": %u, "
          "\"seconds\": %.6f, \"events_per_sec\": %.1f, "
          "\"events_ingested\": %llu, \"bytes_lost\": %llu, "
          "\"reconnects\": %llu, \"replayed_bytes\": %llu, "
          "\"distinct_races\": %zu}%s\n",
          R.Spool ? "true" : "false", R.TearsPerClient, R.Seconds,
          R.EventsPerSec, static_cast<unsigned long long>(R.EventsIngested),
          static_cast<unsigned long long>(R.BytesLost),
          static_cast<unsigned long long>(R.Reconnects),
          static_cast<unsigned long long>(R.ReplayedBytes), R.DistinctRaces,
          I + 1 == Faulted.size() ? "" : ",");
    }
    std::fprintf(File, "  ]\n}\n");
    std::fclose(File);
    std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
