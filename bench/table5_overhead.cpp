//===-- bench/table5_overhead.cpp - Paper Table 5 ---------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Regenerates Table 5: baseline execution time, LiteRace and full-logging
// slowdowns, and generated log rates, for the eight application pairs and
// the two synchronization-heavy micro-benchmarks.
//
//===----------------------------------------------------------------------===//

#include "harness/Tables.h"

#include <cstdio>

using namespace literace;

int main() {
  WorkloadParams Params = paramsFromEnv();
  unsigned Repeats = repeatsFromEnv(2);
  const WorkloadKind Kinds[] = {
      WorkloadKind::LKRHash,          WorkloadKind::LFList,
      WorkloadKind::ChannelWithStdLib, WorkloadKind::Channel,
      WorkloadKind::ConcRTMessaging,  WorkloadKind::ConcRTScheduling,
      WorkloadKind::Httpd1,           WorkloadKind::Httpd2,
      WorkloadKind::BrowserStart,     WorkloadKind::BrowserRender};
  std::vector<OverheadRow> Rows;
  for (WorkloadKind Kind : Kinds) {
    Rows.push_back(runOverheadExperiment(Kind, Params, Repeats));
    std::fprintf(stderr, "  [overhead] %s done (baseline %.3fs)\n",
                 Rows.back().Benchmark.c_str(), Rows.back().BaselineSec);
  }
  printTable5(Rows);
  return 0;
}
