//===-- bench/log_encoding.cpp - Log format size/throughput -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// Quantifies the log-volume theme of Table 5 one level deeper: bytes per
// event and encode/decode throughput of the raw 32-byte FileSink format
// versus the delta/varint compressed format, on a real full-logging trace
// of the Apache-1 benchmark.
//
//===----------------------------------------------------------------------===//

#include "harness/DetectionExperiment.h"
#include "harness/Tables.h"
#include "runtime/CompressedLog.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <cstdio>

using namespace literace;

int main() {
  WorkloadParams Params = paramsFromEnv();
  auto W = makeWorkload(WorkloadKind::Httpd1);
  std::fprintf(stderr, "producing the trace...\n");
  ExperimentRun Run = executeExperiment(*W, Params);
  const Trace &T = Run.TraceData;
  const size_t Events = T.totalEvents();
  const uint64_t RawBytes = Events * sizeof(EventRecord);

  WallTimer Timer;
  std::vector<std::vector<uint8_t>> Encoded(T.PerThread.size());
  uint64_t CompressedBytes = 0;
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid)
    CompressedBytes += compressEventStream(T.PerThread[Tid], Encoded[Tid]);
  double EncodeSec = Timer.seconds();

  Timer.restart();
  size_t DecodedEvents = 0;
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
    auto Back = decompressEventStream(Encoded[Tid].data(),
                                      Encoded[Tid].size(),
                                      static_cast<ThreadId>(Tid));
    if (!Back) {
      std::fprintf(stderr, "error: decode failed\n");
      return 1;
    }
    DecodedEvents += Back->size();
  }
  double DecodeSec = Timer.seconds();
  if (DecodedEvents != Events) {
    std::fprintf(stderr, "error: decode dropped events\n");
    return 1;
  }

  TableFormatter Table("Log encodings on one Apache-1 full-logging trace");
  Table.addRow({"Format", "Bytes/event", "Total MB", "Encode M ev/s",
                "Decode M ev/s"});
  Table.addRow({"raw FileSink (32B records)", "32.0",
                TableFormatter::num(RawBytes / 1e6), "-", "-"});
  Table.addRow(
      {"delta/varint compressed",
       TableFormatter::num(static_cast<double>(CompressedBytes) / Events,
                           1),
       TableFormatter::num(CompressedBytes / 1e6),
       TableFormatter::num(Events / 1e6 / EncodeSec),
       TableFormatter::num(Events / 1e6 / DecodeSec)});
  Table.print();
  std::printf("compression ratio: %.2fx\n",
              static_cast<double>(RawBytes) / CompressedBytes);
  return 0;
}
