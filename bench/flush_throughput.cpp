//===-- bench/flush_throughput.cpp - Trace-flush pipeline throughput --------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
// The headline for the async flush pipeline (runtime/AsyncSink.h): N
// producer threads stream event chunks into a v2 segmented log through
// three configurations — sync (every producer pays framing + write(2)
// behind the sink mutex), async-block (lossless hand-off to the flusher
// thread), async-drop (bounded hand-off, loss accounted). Reports wall
// time, events/second, and the producer-side stall profile: the MAX time
// a single writeChunk() call took on any application thread, which is
// exactly the hot-path stall the pipeline exists to remove.
//
// With --json[=PATH] the results are also written as JSON (default
// BENCH_flush_throughput.json) so successive PRs can track the numbers.
// LITERACE_SCALE scales the chunk count per thread.
//
//===----------------------------------------------------------------------===//

#include "runtime/AsyncSink.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace literace;

namespace {

enum class Mode { Sync, AsyncBlock, AsyncDrop };

const char *modeName(Mode M) {
  switch (M) {
  case Mode::Sync:
    return "sync";
  case Mode::AsyncBlock:
    return "async-block";
  case Mode::AsyncDrop:
    return "async-drop";
  }
  return "?";
}

struct Result {
  Mode M = Mode::Sync;
  double Seconds = 0.0;
  double EventsPerSec = 0.0;
  /// Worst single writeChunk() call observed on any producer thread.
  uint64_t MaxProducerStallNs = 0;
  uint64_t EventsDropped = 0;
  uint64_t ChunksEnqueued = 0;
  size_t QueueDepthHighWater = 0;
  uint64_t ProducerParks = 0;
};

std::string tempPath(const char *Name) {
  const char *Dir = std::getenv("TMPDIR");
  return std::string(Dir && *Dir ? Dir : "/tmp") + "/" + Name;
}

Result runMode(Mode M, unsigned NumThreads, size_t ChunksPerThread,
               size_t EventsPerChunk) {
  const std::string Path = tempPath("literace_flush_bench.bin");
  Result R;
  R.M = M;
  {
    SegmentedFileSink Seg(Path, 128);
    if (!Seg.ok()) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      std::exit(1);
    }
    std::unique_ptr<AsyncLogSink> Async;
    LogSink *Sink = &Seg;
    if (M != Mode::Sync) {
      AsyncLogSink::Options Opts;
      Opts.Policy =
          M == Mode::AsyncDrop ? FlushPolicy::Drop : FlushPolicy::Block;
      Async = std::make_unique<AsyncLogSink>(Seg, Opts);
      Sink = Async.get();
    }

    std::vector<uint64_t> MaxStallNs(NumThreads, 0);
    WallTimer Timer;
    std::vector<std::thread> Producers;
    for (unsigned T = 0; T != NumThreads; ++T)
      Producers.emplace_back([&, T] {
        std::vector<EventRecord> Chunk(EventsPerChunk);
        uint64_t Worst = 0;
        for (size_t C = 0; C != ChunksPerThread; ++C) {
          for (size_t I = 0; I != EventsPerChunk; ++I) {
            Chunk[I].Kind = EventKind::Write;
            Chunk[I].Tid = T;
            Chunk[I].Addr = C * EventsPerChunk + I;
            Chunk[I].Pc = 1;
          }
          WallTimer Call;
          Sink->writeChunk(T, Chunk.data(), Chunk.size());
          Worst = std::max(Worst, Call.nanoseconds());
        }
        MaxStallNs[T] = Worst;
      });
    for (std::thread &T : Producers)
      T.join();
    // Producer-side work is done; the drain is the flusher's problem, but
    // the wall clock charges it too (it gates when the file is usable).
    if (Async) {
      Async->close();
      R.EventsDropped = Async->eventsDropped();
      R.ChunksEnqueued = Async->chunksEnqueued();
      R.QueueDepthHighWater = Async->queueStats().DepthHighWater;
      R.ProducerParks = Async->queueStats().ProducerParks;
    }
    Seg.close();
    R.Seconds = Timer.seconds();
    for (uint64_t S : MaxStallNs)
      R.MaxProducerStallNs = std::max(R.MaxProducerStallNs, S);
  }
  const double TotalEvents = static_cast<double>(NumThreads) *
                             static_cast<double>(ChunksPerThread) *
                             static_cast<double>(EventsPerChunk);
  R.EventsPerSec = TotalEvents / R.Seconds;
  std::remove(Path.c_str());
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      JsonPath = "BENCH_flush_throughput.json";
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]]\n", Argv[0]);
      return 2;
    }
  }

  double Scale = 1.0;
  if (const char *Env = std::getenv("LITERACE_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0.0)
    Scale = 1.0;
  const unsigned NumThreads =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  const size_t ChunksPerThread =
      static_cast<size_t>(200 * Scale) + 1;
  const size_t EventsPerChunk = 4096;

  std::fprintf(stderr,
               "%u producers x %zu chunks x %zu events, segmented v2 log\n",
               NumThreads, ChunksPerThread, EventsPerChunk);

  std::vector<Result> Results;
  for (Mode M : {Mode::Sync, Mode::AsyncBlock, Mode::AsyncDrop})
    Results.push_back(runMode(M, NumThreads, ChunksPerThread,
                              EventsPerChunk));

  TableFormatter Table("Trace-flush pipeline throughput (producer stall = "
                       "max single writeChunk on an app thread)");
  Table.addRow({"Mode", "Time", "M events/s", "Max stall", "Dropped",
                "Queue HW", "Parks"});
  for (const Result &R : Results)
    Table.addRow(
        {modeName(R.M), TableFormatter::num(R.Seconds, 3) + "s",
         TableFormatter::num(R.EventsPerSec / 1e6, 1),
         TableFormatter::num(
             static_cast<double>(R.MaxProducerStallNs) / 1e6, 3) +
             "ms",
         std::to_string(R.EventsDropped),
         R.M == Mode::Sync ? "-" : std::to_string(R.QueueDepthHighWater),
         R.M == Mode::Sync ? "-" : std::to_string(R.ProducerParks)});
  Table.print();

  if (!JsonPath.empty()) {
    std::FILE *File = std::fopen(JsonPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(File,
                 "{\n  \"benchmark\": \"flush_throughput\",\n"
                 "  \"threads\": %u,\n  \"chunks_per_thread\": %zu,\n"
                 "  \"events_per_chunk\": %zu,\n  \"modes\": [\n",
                 NumThreads, ChunksPerThread, EventsPerChunk);
    for (size_t I = 0; I != Results.size(); ++I) {
      const Result &R = Results[I];
      std::fprintf(
          File,
          "    {\"mode\": \"%s\", \"seconds\": %.6f, "
          "\"events_per_sec\": %.1f, \"max_producer_stall_ns\": %llu, "
          "\"events_dropped\": %llu, \"chunks_enqueued\": %llu, "
          "\"queue_depth_highwater\": %zu, \"producer_parks\": %llu}%s\n",
          modeName(R.M), R.Seconds, R.EventsPerSec,
          static_cast<unsigned long long>(R.MaxProducerStallNs),
          static_cast<unsigned long long>(R.EventsDropped),
          static_cast<unsigned long long>(R.ChunksEnqueued),
          R.QueueDepthHighWater,
          static_cast<unsigned long long>(R.ProducerParks),
          I + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(File, "  ]\n}\n");
    std::fclose(File);
    std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
